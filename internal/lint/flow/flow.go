// Package flow is the interprocedural layer under soclint's concurrency
// analyzers. Where every analyzer in soc/internal/lint before it reasoned
// about one function at a time, flow builds a module-wide view once —
// a call graph over every loaded package plus a per-function Summary of
// the concurrency-relevant facts (mutexes acquired and released, channels
// sent, received and closed, goroutines spawned, context threading) —
// and lets analyzers query it transitively: "which locks does this call
// eventually take?", "does cancellation ever reach a select in this
// goroutine?", "is this field ever touched outside sync/atomic?".
//
// The package is deliberately stdlib-only (go/ast + go/types), matching
// the rest of the lint framework, and it makes its approximations
// explicit:
//
//   - The call graph records static calls (declared functions and
//     methods), `go` and `defer` sites, function values passed around
//     (candidate callees matched by signature at indirect call sites),
//     and interface-method dispatch (candidate callees from the method
//     sets of module types implementing the interface).
//   - Transitive queries follow only synchronous edges (static calls and
//     defers) by default: a spawned goroutine does not inherit its
//     spawner's locks, and dynamic/interface candidates are available but
//     over-approximate, so analyzers opt into them.
//   - A function literal passed as a call argument is assumed to run
//     synchronously inside the callee (the sync.Once.Do / Bulkhead.Do
//     shape); a literal assigned to a variable is analyzed with no locks
//     held, because its call sites are unknown.
//
// Identity is canonical by declaration position, not by types.Object
// pointer: the same field seen through two typechecking passes (the
// import-resolution check and the test-inclusive analysis check of a
// package) maps to the same class, so cross-package facts stay coherent.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one typechecked package contributed to the graph. Files may
// include _test.go files when the loader was asked to analyze them.
type Package struct {
	// Path is the import path used for scope decisions.
	Path string
	// Files are the parsed sources backing Info.
	Files []*ast.File
	// Info is the type information covering exactly Files.
	Info *types.Info
}

// CallKind classifies a call-graph edge.
type CallKind int

const (
	// Static is a direct call of a declared function or method.
	Static CallKind = iota
	// Deferred is a `defer f()` site; it runs synchronously at return,
	// conservatively treated as running under the locks held at the
	// defer statement.
	Deferred
	// Spawn is a `go f()` site: asynchronous, inherits no locks.
	Spawn
	// Dynamic is a call through a function value; Callee is one
	// signature-compatible candidate whose value was taken somewhere.
	Dynamic
	// Dispatch is a call through an interface method; Callee is one
	// concrete method from a module type implementing the interface.
	Dispatch
)

func (k CallKind) String() string {
	switch k {
	case Static:
		return "static"
	case Deferred:
		return "defer"
	case Spawn:
		return "go"
	case Dynamic:
		return "dynamic"
	case Dispatch:
		return "dispatch"
	}
	return "?"
}

// Call is one edge of the call graph.
type Call struct {
	Caller *Func
	// Callee is the module-local target, nil when the target is outside
	// the graph (stdlib, unresolved).
	Callee *Func
	// Obj is the called *types.Func when statically known (set even for
	// stdlib callees), nil for calls of plain function values.
	Obj  *types.Func
	Kind CallKind
	Pos  token.Pos
}

// Func is one node: a declared function/method or a function literal.
type Func struct {
	// ID is the canonical identity (declaration position based).
	ID string
	// Name is the display name: "pkg.Type.Method", "pkg.Func" or
	// "pkg.Func.func@line" for literals.
	Name string
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Obj  *types.Func   // nil for literals

	Calls   []*Call
	Summary Summary
}

// Body returns the function body, nil for bodiless declarations.
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	if f.Lit != nil {
		return f.Lit.Body
	}
	return nil
}

// Class identifies a mutex, channel or atomic word statically: the
// declared field or variable backing the expression. Two expressions
// share a Class when they denote the same declaration, so `c.mu` in two
// methods is one class while two instances of the same type also share
// it — the distinct-instance blindness analyzers must account for.
type Class struct {
	// Key is the canonical identity: the declaring object's position.
	Key string
	// Name is the display form, e.g. "registry.Registry.mu".
	Name string
	// PkgPath is the import path of the declaring package ("" for
	// objects declared in function scope outside any package clause —
	// does not happen for fields and package vars).
	PkgPath string
}

// Zero reports whether the class is unresolved.
func (c Class) Zero() bool { return c.Key == "" }

// Graph is the module-wide interprocedural view.
type Graph struct {
	Fset     *token.FileSet
	Packages []*Package
	// Funcs maps canonical IDs to nodes; use SortedFuncs for
	// deterministic iteration.
	Funcs map[string]*Func

	funcByPos map[token.Pos]*Func // declared functions by Name position
	sorted    []*Func

	chans map[string]*ChanFacts

	// address-taken declared functions (candidates for Dynamic edges)
	taken map[*Func]bool
	// pending indirect call sites and interface dispatch sites
	dynSites  []dynSite
	dispSites []dispSite

	// memo is scratch space for analyzers that compute module-wide
	// results once (keyed by analyzer-chosen strings).
	memo map[string]any

	acquiresMemo map[*Func]map[string]AcqWitness
	inProgress   map[*Func]bool
}

type dynSite struct {
	caller *Func
	sig    *types.Signature
	pos    token.Pos
}

type dispSite struct {
	caller *Func
	iface  *types.Interface
	method string
	pos    token.Pos
}

// ChanFacts aggregates what the whole module does to one channel class.
type ChanFacts struct {
	Class  Class
	Sends  []token.Pos
	Recvs  []token.Pos
	Closes []token.Pos
	Ranges []token.Pos
	// Buffered is set when some `make(chan T, n)` with constant n > 0
	// is assigned to this class.
	Buffered bool
}

// Memo returns the analyzer scratch value under key, computing and
// caching it on first use.
func (g *Graph) Memo(key string, compute func() any) any {
	if v, ok := g.memo[key]; ok {
		return v
	}
	v := compute()
	g.memo[key] = v
	return v
}

// Chan returns the module-wide facts for a channel class, nil when the
// class was never touched.
func (g *Graph) Chan(key string) *ChanFacts { return g.chans[key] }

// SortedFuncs returns every node ordered by ID for deterministic walks.
func (g *Graph) SortedFuncs() []*Func { return g.sorted }

// FuncAt returns the declared function whose name sits at pos.
func (g *Graph) FuncAt(pos token.Pos) *Func { return g.funcByPos[pos] }

// FuncOf returns the node for a statically known callee, nil for
// functions outside the graph.
func (g *Graph) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return g.funcByPos[obj.Pos()]
}

// Build constructs the graph over the given packages. Packages must share
// one token.FileSet and one loader-coherent type universe (stdlib objects
// are shared; module-local objects are canonicalized by position).
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		Fset:         fset,
		Packages:     pkgs,
		Funcs:        map[string]*Func{},
		funcByPos:    map[token.Pos]*Func{},
		chans:        map[string]*ChanFacts{},
		taken:        map[*Func]bool{},
		memo:         map[string]any{},
		acquiresMemo: map[*Func]map[string]AcqWitness{},
		inProgress:   map[*Func]bool{},
	}
	// Pass 1: index declared functions so call sites anywhere can
	// resolve to nodes.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				f := &Func{
					ID:   "fn@" + g.posKey(fd.Name.Pos()),
					Name: funcDisplay(obj),
					Pkg:  pkg,
					Decl: fd,
					Obj:  obj,
				}
				g.Funcs[f.ID] = f
				g.funcByPos[fd.Name.Pos()] = f
			}
		}
	}
	// Pass 2: scan bodies — summaries, static edges, channel facts,
	// dynamic/dispatch sites, address-taken functions.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				f := g.funcByPos[fd.Name.Pos()]
				if f == nil {
					continue
				}
				s := &scanner{g: g, pkg: pkg, fn: f}
				s.funcHeader(fd.Type, fd.Recv)
				s.block(fd.Body.List, nil)
			}
		}
	}
	// Pass 3: resolve dynamic call sites against address-taken functions
	// and interface dispatch against module method sets.
	g.resolveDynamic()
	g.resolveDispatch()
	for _, f := range g.Funcs {
		g.sorted = append(g.sorted, f)
	}
	sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].ID < g.sorted[j].ID })
	return g
}

func (g *Graph) posKey(pos token.Pos) string {
	p := g.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func funcDisplay(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + obj.Name()
		}
	}
	return pkg + obj.Name()
}

// ClassOfExpr canonicalizes the declared variable behind expr — exported
// for analyzers that walk ASTs themselves (atomicdiscipline's module-wide
// access scan).
func (g *Graph) ClassOfExpr(pkg *Package, expr ast.Expr) Class { return g.classOf(pkg, expr) }

// VarClass canonicalizes a variable object directly.
func (g *Graph) VarClass(v *types.Var, name string) Class { return g.classFor(v, name) }

// classOf canonicalizes the declared object behind expr (a field
// selector, package var or local var) into a Class.
func (g *Graph) classOf(pkg *Package, expr ast.Expr) Class {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return Class{}
		}
		name := v.Name()
		if v.Pkg() != nil {
			name = v.Pkg().Name() + "." + name
		}
		return g.classFor(v, name)
	case *ast.SelectorExpr:
		v, ok := pkg.Info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return Class{}
		}
		owner := ""
		if t := pkg.Info.TypeOf(e.X); t != nil {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				owner = named.Obj().Name() + "."
				if named.Obj().Pkg() != nil {
					owner = named.Obj().Pkg().Name() + "." + owner
				}
			}
		}
		return g.classFor(v, owner+v.Name())
	}
	return Class{}
}

func (g *Graph) classFor(v *types.Var, name string) Class {
	pkgPath := ""
	if v.Pkg() != nil {
		pkgPath = v.Pkg().Path()
	}
	return Class{Key: "var@" + g.posKey(v.Pos()), Name: name, PkgPath: pkgPath}
}

// embeddedLockClass resolves a promoted `x.Lock()` (x's type embeds a
// sync.Mutex/RWMutex) to the embedded field's class.
func (g *Graph) embeddedLockClass(pkg *Package, recv ast.Expr) Class {
	t := pkg.Info.TypeOf(recv)
	if t == nil {
		return Class{}
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return Class{}
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return Class{}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		ft := f.Type()
		if ptr, ok := ft.(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		if n, ok := ft.(*types.Named); ok && n.Obj().Pkg() != nil &&
			n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex") {
			owner := named.Obj().Name()
			if named.Obj().Pkg() != nil {
				owner = named.Obj().Pkg().Name() + "." + owner
			}
			return g.classFor(f, owner+"."+f.Name())
		}
	}
	return Class{}
}

func (g *Graph) chanFactsFor(c Class) *ChanFacts {
	if c.Zero() {
		return nil
	}
	cf := g.chans[c.Key]
	if cf == nil {
		cf = &ChanFacts{Class: c}
		g.chans[c.Key] = cf
	}
	return cf
}

func (g *Graph) resolveDynamic() {
	var candidates []*Func
	for f := range g.taken {
		candidates = append(candidates, f)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID < candidates[j].ID })
	for _, site := range g.dynSites {
		for _, cand := range candidates {
			if cand.Obj == nil {
				continue
			}
			sig, ok := cand.Obj.Type().(*types.Signature)
			if !ok || !compatibleSignatures(site.sig, sig) {
				continue
			}
			site.caller.Calls = append(site.caller.Calls, &Call{
				Caller: site.caller, Callee: cand, Obj: cand.Obj, Kind: Dynamic, Pos: site.pos,
			})
		}
	}
}

// compatibleSignatures is a shallow shape match: same arity both ways.
// Precise assignability would need identical type universes; arity is
// enough to keep the candidate set small and is honestly documented as
// an over-approximation.
func compatibleSignatures(a, b *types.Signature) bool {
	if a == nil || b == nil {
		return false
	}
	return a.Params().Len() == b.Params().Len() &&
		a.Results().Len() == b.Results().Len() &&
		a.Variadic() == b.Variadic()
}

func (g *Graph) resolveDispatch() {
	for _, site := range g.dispSites {
		for _, cand := range g.sortedDecls() {
			if cand.Obj == nil {
				continue
			}
			sig, ok := cand.Obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || cand.Obj.Name() != site.method {
				continue
			}
			rt := sig.Recv().Type()
			if types.Implements(rt, site.iface) ||
				types.Implements(types.NewPointer(rt), site.iface) {
				site.caller.Calls = append(site.caller.Calls, &Call{
					Caller: site.caller, Callee: cand, Obj: cand.Obj, Kind: Dispatch, Pos: site.pos,
				})
			}
		}
	}
}

func (g *Graph) sortedDecls() []*Func {
	if g.sorted != nil {
		return g.sorted
	}
	var out []*Func
	for _, f := range g.Funcs {
		if f.Decl != nil {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// baseExpr renders the receiver/base of a selector chain for
// distinct-instance filtering: "c" for c.mu, "h.cache" for h.cache.mu.
func baseExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return types.ExprString(e.X)
	}
	return strings.TrimSpace(types.ExprString(e))
}
