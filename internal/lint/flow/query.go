package flow

import (
	"go/token"
	"sort"
)

// AcqWitness explains how a lock class is reached from a function: the
// acquisition site plus the synchronous call chain leading to it.
type AcqWitness struct {
	Lock Class
	// Base is the instance expression at the acquisition site.
	Base string
	Pos  token.Pos
	// Via is the call chain (display names) from the queried function
	// exclusive to the acquiring function inclusive; empty for direct
	// acquisitions.
	Via []string
}

// TransitiveAcquires returns every lock class acquired by f or any
// function reachable over synchronous edges (Static and Deferred calls;
// Spawn, Dynamic and Dispatch edges are excluded: a goroutine does not
// inherit its spawner's locks, and the dynamic candidate sets are too
// coarse for ordering), with one witness per class. Results are
// memoized; recursion is cut at in-progress nodes (an under-
// approximation for recursive call cycles, documented in DESIGN).
func (g *Graph) TransitiveAcquires(f *Func) map[string]AcqWitness {
	if f == nil {
		return nil
	}
	if m, ok := g.acquiresMemo[f]; ok {
		return m
	}
	if g.inProgress[f] {
		return nil
	}
	g.inProgress[f] = true
	defer delete(g.inProgress, f)

	out := map[string]AcqWitness{}
	for _, acq := range f.Summary.Acquires {
		if _, ok := out[acq.Lock.Key]; !ok {
			out[acq.Lock.Key] = AcqWitness{Lock: acq.Lock, Base: acq.Base, Pos: acq.Pos}
		}
	}
	for _, call := range f.Calls {
		if call.Kind != Static && call.Kind != Deferred {
			continue
		}
		if call.Callee == nil || call.Callee == f {
			continue
		}
		for key, w := range g.TransitiveAcquires(call.Callee) {
			if _, ok := out[key]; ok {
				continue
			}
			via := make([]string, 0, len(w.Via)+1)
			via = append(via, call.Callee.Name)
			via = append(via, w.Via...)
			out[key] = AcqWitness{Lock: w.Lock, Base: w.Base, Pos: w.Pos, Via: via}
		}
	}
	g.acquiresMemo[f] = out
	return out
}

// LockEdge is one observed acquisition order: From was held when To was
// acquired, either directly or through the recorded call chain.
type LockEdge struct {
	From, To Class
	// HeldAt is where From was acquired, AcqAt where To was acquired.
	HeldAt, AcqAt token.Pos
	// Fn is the function in which the ordering was observed (the one
	// holding From).
	Fn *Func
	// Via is the synchronous call chain from Fn to the function that
	// acquires To; empty when both happen in Fn.
	Via []string
}

// LockOrderEdges computes the global lock-acquisition-order graph
// restricted to lock classes declared in packages satisfying inScope.
// Same-class edges are kept only when the instance bases match (c.mu
// held while calling c.helper() that relocks c.mu is a genuine
// self-deadlock; two Breaker instances locking the one Breaker.mu class
// in sequence is not an ordering fact), because classes cannot separate
// instances.
func (g *Graph) LockOrderEdges(inScope func(pkgPath string) bool) []LockEdge {
	var edges []LockEdge
	seen := map[[2]string]bool{}
	add := func(e LockEdge) {
		if !inScope(e.From.PkgPath) || !inScope(e.To.PkgPath) {
			return
		}
		k := [2]string{e.From.Key, e.To.Key}
		if seen[k] {
			return
		}
		seen[k] = true
		edges = append(edges, e)
	}
	for _, f := range g.SortedFuncs() {
		for _, acq := range f.Summary.Acquires {
			for _, h := range acq.Held {
				if h.Lock.Key == acq.Lock.Key && h.Base != acq.Base {
					continue // distinct instances of one class
				}
				add(LockEdge{From: h.Lock, To: acq.Lock, HeldAt: h.Pos, AcqAt: acq.Pos, Fn: f})
			}
		}
		for _, cu := range f.Summary.CallsUnder {
			if cu.Call.Callee == nil {
				continue
			}
			for _, w := range sortedAcquires(g.TransitiveAcquires(cu.Call.Callee)) {
				for _, h := range cu.Held {
					if h.Lock.Key == w.Lock.Key {
						// Same class through a call: only a real
						// self-cycle when the callee's receiver is the
						// same instance the lock was taken through.
						if cu.RecvBase == "" || h.Base != cu.RecvBase {
							continue
						}
					}
					via := make([]string, 0, len(w.Via)+1)
					via = append(via, cu.Call.Callee.Name)
					via = append(via, w.Via...)
					add(LockEdge{From: h.Lock, To: w.Lock, HeldAt: h.Pos, AcqAt: w.Pos, Fn: f, Via: via})
				}
			}
		}
	}
	return edges
}

// sortedAcquires gives deterministic iteration order over a witness map.
func sortedAcquires(m map[string]AcqWitness) []AcqWitness {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AcqWitness, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// LockCycle is one deadlock-capable cycle in the lock-order graph.
type LockCycle struct {
	// Edges form the cycle: Edges[i].To == Edges[i+1].From, and the
	// last edge closes back to Edges[0].From.
	Edges []LockEdge
}

// LockCycles finds cycles in the order graph: every strongly connected
// component with a cycle contributes its shortest cycle through its
// lexicographically smallest lock, plus each self-loop. Fixing the
// reported cycle and re-running surfaces any remaining ones — reporting
// one witness per component keeps findings readable instead of
// enumerating the exponential cycle space.
func (g *Graph) LockCycles(inScope func(pkgPath string) bool) []LockCycle {
	edges := g.LockOrderEdges(inScope)
	adj := map[string][]LockEdge{}
	nodes := map[string]bool{}
	names := map[string]string{}
	var cycles []LockCycle
	for _, e := range edges {
		names[e.From.Key], names[e.To.Key] = e.From.Name, e.To.Name
		if e.From.Key == e.To.Key {
			cycles = append(cycles, LockCycle{Edges: []LockEdge{e}})
			continue
		}
		adj[e.From.Key] = append(adj[e.From.Key], e)
		nodes[e.From.Key], nodes[e.To.Key] = true, true
	}
	for _, scc := range stronglyConnected(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Start from the display-wise smallest lock so the report reads
		// the same regardless of declaration order in the source.
		start := scc[0]
		for _, n := range scc[1:] {
			if names[n] < names[start] || (names[n] == names[start] && n < start) {
				start = n
			}
		}
		if c := shortestCycle(start, inSCC, adj); c != nil {
			cycles = append(cycles, LockCycle{Edges: c})
		}
	}
	return cycles
}

// stronglyConnected returns the SCCs of the edge-bearing node set, each
// component's nodes sorted, components ordered by first node.
func stronglyConnected(nodes map[string]bool, adj map[string][]LockEdge) [][]string {
	sortedNodes := make([]string, 0, len(nodes))
	for n := range nodes {
		sortedNodes = append(sortedNodes, n)
	}
	sort.Strings(sortedNodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.To.Key
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range sortedNodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// shortestCycle BFSes inside one SCC from start back to start and
// returns the edge list of a shortest cycle.
func shortestCycle(start string, inSCC map[string]bool, adj map[string][]LockEdge) []LockEdge {
	type hop struct {
		node string
		via  *LockEdge
		prev *hop
	}
	queue := []*hop{{node: start}}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for i := range adj[h.node] {
			e := &adj[h.node][i]
			if !inSCC[e.To.Key] {
				continue
			}
			if e.To.Key == start {
				var path []LockEdge
				for cur := (&hop{via: e, prev: h}); cur != nil && cur.via != nil; cur = cur.prev {
					path = append([]LockEdge{*cur.via}, path...)
				}
				return path
			}
			if visited[e.To.Key] {
				continue
			}
			visited[e.To.Key] = true
			queue = append(queue, &hop{node: e.To.Key, via: e, prev: h})
		}
	}
	return nil
}

// ReachesDoneSelect reports whether f (or any function reachable over
// static edges within depth) waits on context cancellation: a select
// case or receive on some ctx.Done().
func (g *Graph) ReachesDoneSelect(f *Func, depth int) bool {
	if f == nil || depth < 0 {
		return false
	}
	if f.Summary.SelectsOnDone {
		return true
	}
	for _, call := range f.Calls {
		if call.Kind != Static && call.Kind != Deferred {
			continue
		}
		if call.Callee != nil && call.Callee != f && g.ReachesDoneSelect(call.Callee, depth-1) {
			return true
		}
	}
	return false
}

// Spawns returns every go statement in the graph, ordered by position.
func (g *Graph) Spawns() []SpawnSite {
	var out []SpawnSite
	for _, f := range g.SortedFuncs() {
		out = append(out, f.Summary.Spawns...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
