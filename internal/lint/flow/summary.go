package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Summary is the per-function digest analyzers query. It is computed
// once at graph build from a lock-aware linear scan of the body: the
// scan tracks which mutex classes are held at every point (the same
// conservative straight-line discipline locksafe uses) and records the
// concurrency-relevant events it passes.
type Summary struct {
	// Acquires are the Lock/RLock sites, each with the lock classes
	// already held there.
	Acquires []LockAcquire
	// Releases are the Unlock/RUnlock sites.
	Releases []LockRelease
	// CallsUnder are call sites executed while at least one lock is
	// held — the raw material of the interprocedural lock-order graph.
	CallsUnder []CallUnder
	// Spawns are the `go` statements of the function (literals spawned
	// inside it included).
	Spawns []SpawnSite
	// Sends, Recvs, Closes are the channel operations, resolved to
	// channel classes where possible.
	Sends, Recvs, Closes []ChanUse
	// SelectsOnDone reports a select statement with a case receiving
	// from a context's Done() channel anywhere in the body (function
	// literals included).
	SelectsOnDone bool
	// InfiniteFor are the positions of condition-free `for { ... }`
	// loops — candidates for running forever unless an escape (ctx.Done
	// select or closed-channel receive) exists in the function.
	InfiniteFor []token.Pos
	// TakesCtx reports a context.Context parameter; ForwardsCtx that a
	// context value is passed on to some call.
	TakesCtx, ForwardsCtx bool
}

// LockAcquire is one Lock/RLock site.
type LockAcquire struct {
	Lock Class
	// Base is the receiver expression the lock was reached through
	// ("c" for c.mu.Lock()), used to separate instances of one class.
	Base   string
	Pos    token.Pos
	Reader bool // RLock
	// Held lists the locks already held at this site, in acquisition
	// order.
	Held []HeldLock
}

// LockRelease is one Unlock/RUnlock site.
type LockRelease struct {
	Lock Class
	Pos  token.Pos
}

// HeldLock is one entry of a held-set: the class plus the instance base
// it was acquired through and where.
type HeldLock struct {
	Lock Class
	Base string
	Pos  token.Pos
}

// CallUnder is a call made while locks are held.
type CallUnder struct {
	Call *Call
	Held []HeldLock
	// RecvBase is the callee's receiver expression for method calls
	// ("c" in c.helper()), "" for plain calls — used to decide whether
	// a same-class reacquisition is genuinely the same instance.
	RecvBase string
}

// SpawnSite is one `go` statement.
type SpawnSite struct {
	Pos token.Pos
	// Target is the spawned function: the literal's node, or the
	// statically resolved callee; nil when the spawned value is opaque
	// (a function variable).
	Target *Func
	// Obj is the statically known callee object (set for stdlib
	// targets too).
	Obj *types.Func
	// In is the function containing the go statement.
	In *Func
	// InLoop reports that the go statement sits inside a for/range of
	// its enclosing function — the unbounded fan-out shape.
	InLoop bool
	Stmt   *ast.GoStmt
}

// ChanUse is one channel operation resolved to a class (Zero class when
// the channel expression is not a named field/variable).
type ChanUse struct {
	Chan Class
	Pos  token.Pos
	// NonBlocking marks operations inside a select with a default case —
	// they cannot block at all.
	NonBlocking bool
	// EscapeChans are the classes of sibling receive cases of the
	// operation's select: the op cannot block forever when one of them is
	// closed somewhere in the module.
	EscapeChans []Class
}

// selectInfo is the scanner's context while inside one select statement.
type selectInfo struct {
	hasDefault bool
	recvs      []Class
}

// scanner walks one declared function, populating fn.Summary, the call
// edges, and the graph-wide channel facts.
type scanner struct {
	g   *Graph
	pkg *Package
	fn  *Func
	// loopDepth tracks enclosing for/range statements of the function
	// currently scanned (not inherited into literals).
	loopDepth int
	// sel is the enclosing select statement's context while scanning its
	// comm clauses, nil elsewhere.
	sel *selectInfo
}

func (s *scanner) funcHeader(ft *ast.FuncType, recv *ast.FieldList) {
	if ft.Params == nil {
		return
	}
	for _, p := range ft.Params.List {
		if t := s.pkg.Info.TypeOf(p.Type); t != nil && isContext(t) {
			s.fn.Summary.TakesCtx = true
		}
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// block scans a statement list with the given held-set, mutating held
// in place for this nesting level and handing copies to branches.
func (s *scanner) block(stmts []ast.Stmt, held []HeldLock) []HeldLock {
	for _, stmt := range stmts {
		held = s.stmt(stmt, held)
	}
	return held
}

func copyHeld(held []HeldLock) []HeldLock {
	return append([]HeldLock(nil), held...)
}

func (s *scanner) stmt(stmt ast.Stmt, held []HeldLock) []HeldLock {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if cls, base, name, ok := s.mutexOp(call); ok {
				switch name {
				case "Lock", "RLock":
					s.fn.Summary.Acquires = append(s.fn.Summary.Acquires, LockAcquire{
						Lock: cls, Base: base, Pos: call.Pos(), Reader: name == "RLock", Held: copyHeld(held),
					})
					return append(held, HeldLock{Lock: cls, Base: base, Pos: call.Pos()})
				case "Unlock", "RUnlock":
					s.fn.Summary.Releases = append(s.fn.Summary.Releases, LockRelease{Lock: cls, Pos: call.Pos()})
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].Lock.Key == cls.Key && held[i].Base == base {
							return append(held[:i:i], held[i+1:]...)
						}
					}
					return held
				}
			}
		}
		s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.markBufferedMake(st.Lhs, rhs)
			s.expr(rhs, held)
		}
		for _, lhs := range st.Lhs {
			s.expr(lhs, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if i < len(vs.Names) {
							s.markBufferedMake([]ast.Expr{vs.Names[i]}, v)
						}
						s.expr(v, held)
					}
				}
			}
		}
	case *ast.GoStmt:
		s.spawn(st, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() intentionally leaves the held-set alone:
		// the lock stays held for the rest of the scan, which is the
		// truth the order graph needs. Other deferred calls run (at
		// latest) under whatever is still held here.
		if _, _, name, ok := s.mutexOp(st.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return held
		}
		s.call(st.Call, held, Deferred)
		s.callArgs(st.Call, held)
	case *ast.SendStmt:
		s.chanSend(st)
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		} else {
			s.fn.Summary.InfiniteFor = append(s.fn.Summary.InfiniteFor, st.Pos())
		}
		s.loopDepth++
		s.block(st.Body.List, copyHeld(held))
		s.loopDepth--
	case *ast.RangeStmt:
		if t := s.pkg.Info.TypeOf(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				cls := s.g.classOf(s.pkg, st.X)
				s.fn.Summary.Recvs = append(s.fn.Summary.Recvs, ChanUse{Chan: cls, Pos: st.X.Pos()})
				if cf := s.g.chanFactsFor(cls); cf != nil {
					cf.Ranges = append(cf.Ranges, st.X.Pos())
				}
			}
		}
		s.expr(st.X, held)
		s.loopDepth++
		s.block(st.Body.List, copyHeld(held))
		s.loopDepth--
	case *ast.SelectStmt:
		info := &selectInfo{}
		var comms []*ast.CommClause
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			comms = append(comms, cc)
			if cc.Comm == nil {
				info.hasDefault = true
				continue
			}
			for _, r := range commRecvExprs(cc.Comm) {
				if cls := s.g.classOf(s.pkg, ast.Unparen(r.X)); !cls.Zero() {
					info.recvs = append(info.recvs, cls)
				}
			}
		}
		prev := s.sel
		s.sel = info
		for _, cc := range comms {
			if cc.Comm != nil {
				s.stmt(cc.Comm, held)
			}
		}
		s.sel = prev
		for _, cc := range comms {
			s.block(cc.Body, copyHeld(held))
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		held = s.block(st.List, held)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held)
		}
	case *ast.LabeledStmt:
		held = s.stmt(st.Stmt, held)
	}
	return held
}

// commRecvExprs extracts the receive expressions of one comm clause.
func commRecvExprs(comm ast.Stmt) []*ast.UnaryExpr {
	var out []*ast.UnaryExpr
	collect := func(e ast.Expr) {
		if recv, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
			out = append(out, recv)
		}
	}
	switch c := comm.(type) {
	case *ast.ExprStmt:
		collect(c.X)
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			collect(rhs)
		}
	}
	return out
}

// expr walks an expression: calls become edges (function literals passed
// as arguments are scanned under the current held-set — the synchronous
// callback assumption), receives become channel facts.
func (s *scanner) expr(e ast.Expr, held []HeldLock) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		s.call(e, held, Static)
		s.callArgs(e, held)
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			s.expr(sel.X, held)
		}
	case *ast.FuncLit:
		// A literal not in call/spawn/argument position: call sites
		// unknown, analyze with nothing held.
		s.scanLit(e, nil)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			s.chanRecv(e)
		}
		s.expr(e.X, held)
	case *ast.BinaryExpr:
		s.expr(e.X, held)
		s.expr(e.Y, held)
	case *ast.ParenExpr:
		s.expr(e.X, held)
	case *ast.SelectorExpr:
		s.markTaken(e.Sel)
		s.expr(e.X, held)
	case *ast.Ident:
		s.markTaken(e)
	case *ast.StarExpr:
		s.expr(e.X, held)
	case *ast.IndexExpr:
		s.expr(e.X, held)
		s.expr(e.Index, held)
	case *ast.SliceExpr:
		s.expr(e.X, held)
		s.expr(e.Low, held)
		s.expr(e.High, held)
		s.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		s.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.expr(kv.Value, held)
				continue
			}
			s.expr(el, held)
		}
	case *ast.KeyValueExpr:
		s.expr(e.Value, held)
	}
}

// callArgs scans call arguments, treating literal arguments as
// synchronously invoked callbacks.
func (s *scanner) callArgs(call *ast.CallExpr, held []HeldLock) {
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			s.scanLit(lit, copyHeld(held))
			continue
		}
		s.expr(a, held)
	}
}

// scanLit gives a function literal its own node and scans its body with
// the given held-set (callback assumption) while attributing summary
// facts to the literal's node.
func (s *scanner) scanLit(lit *ast.FuncLit, held []HeldLock) *Func {
	id := "lit@" + s.g.posKey(lit.Pos())
	if f, ok := s.g.Funcs[id]; ok {
		return f
	}
	pos := s.g.Fset.Position(lit.Pos())
	f := &Func{
		ID:   id,
		Name: fmt.Sprintf("%s.func@%d", s.fn.Name, pos.Line),
		Pkg:  s.pkg,
		Lit:  lit,
	}
	s.g.Funcs[id] = f
	sub := &scanner{g: s.g, pkg: s.pkg, fn: f}
	sub.funcHeader(lit.Type, nil)
	sub.block(lit.Body.List, held)
	// The literal runs on the spawner/callee's schedule, but its
	// summary facts surface through the enclosing function's edges: add
	// a synthetic static edge so transitive queries descend into it.
	s.fn.Calls = append(s.fn.Calls, &Call{Caller: s.fn, Callee: f, Kind: Static, Pos: lit.Pos()})
	if len(held) > 0 {
		s.fn.Summary.CallsUnder = append(s.fn.Summary.CallsUnder, CallUnder{
			Call: s.fn.Calls[len(s.fn.Calls)-1], Held: copyHeld(held),
		})
	}
	if f.Summary.SelectsOnDone {
		s.fn.Summary.SelectsOnDone = true
	}
	return f
}

// spawn records a go statement and scans its target with an empty
// held-set (goroutines do not inherit locks).
func (s *scanner) spawn(st *ast.GoStmt, held []HeldLock) {
	site := SpawnSite{Pos: st.Pos(), In: s.fn, InLoop: s.loopDepth > 0, Stmt: st}
	switch fun := ast.Unparen(st.Call.Fun).(type) {
	case *ast.FuncLit:
		site.Target = s.scanLitSpawned(fun)
	default:
		obj := calleeFunc(s.pkg.Info, st.Call)
		site.Obj = obj
		site.Target = s.g.FuncOf(obj)
	}
	s.fn.Summary.Spawns = append(s.fn.Summary.Spawns, site)
	s.fn.Calls = append(s.fn.Calls, &Call{Caller: s.fn, Callee: site.Target, Obj: site.Obj, Kind: Spawn, Pos: st.Pos()})
	// Argument expressions evaluate now, on the spawner's stack.
	for _, a := range st.Call.Args {
		s.expr(a, held)
	}
}

// scanLitSpawned is scanLit without the synthetic synchronous edge and
// without inheriting held locks or Done-select facts.
func (s *scanner) scanLitSpawned(lit *ast.FuncLit) *Func {
	id := "lit@" + s.g.posKey(lit.Pos())
	if f, ok := s.g.Funcs[id]; ok {
		return f
	}
	pos := s.g.Fset.Position(lit.Pos())
	f := &Func{
		ID:   id,
		Name: fmt.Sprintf("%s.func@%d", s.fn.Name, pos.Line),
		Pkg:  s.pkg,
		Lit:  lit,
	}
	s.g.Funcs[id] = f
	sub := &scanner{g: s.g, pkg: s.pkg, fn: f}
	sub.funcHeader(lit.Type, nil)
	sub.block(lit.Body.List, nil)
	return f
}

// call records one call site: an edge when the callee resolves, a
// dynamic or dispatch site otherwise, plus select-on-Done, context
// forwarding and close() facts.
func (s *scanner) call(call *ast.CallExpr, held []HeldLock, kind CallKind) {
	// close(ch) and IIFEs first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := s.pkg.Info.Uses[id].(*types.Builtin); ok {
			if obj.Name() == "close" && len(call.Args) == 1 {
				cls := s.g.classOf(s.pkg, call.Args[0])
				s.fn.Summary.Closes = append(s.fn.Summary.Closes, ChanUse{Chan: cls, Pos: call.Pos()})
				if cf := s.g.chanFactsFor(cls); cf != nil {
					cf.Closes = append(cf.Closes, call.Pos())
				}
			}
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		s.scanLit(lit, copyHeld(held)) // immediately-invoked: runs here
		return
	}
	for _, a := range call.Args {
		if t := s.pkg.Info.TypeOf(a); t != nil && isContext(t) {
			s.fn.Summary.ForwardsCtx = true
		}
	}
	obj := calleeFunc(s.pkg.Info, call)
	if obj == nil {
		// A call through a function value: dynamic site.
		if t := s.pkg.Info.TypeOf(call.Fun); t != nil {
			if sig, ok := t.Underlying().(*types.Signature); ok {
				s.g.dynSites = append(s.g.dynSites, dynSite{caller: s.fn, sig: sig, pos: call.Pos()})
			}
		}
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				s.g.dispSites = append(s.g.dispSites, dispSite{caller: s.fn, iface: iface, method: obj.Name(), pos: call.Pos()})
			}
			return
		}
	}
	callee := s.g.FuncOf(obj)
	edge := &Call{Caller: s.fn, Callee: callee, Obj: obj, Kind: kind, Pos: call.Pos()}
	s.fn.Calls = append(s.fn.Calls, edge)
	if len(held) > 0 {
		recvBase := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recvBase = baseExpr(sel.X)
		}
		s.fn.Summary.CallsUnder = append(s.fn.Summary.CallsUnder, CallUnder{
			Call: edge, Held: copyHeld(held), RecvBase: recvBase,
		})
	}
}

// chanRecv records one receive, noting Done() receives specially.
func (s *scanner) chanRecv(recv *ast.UnaryExpr) {
	operand := ast.Unparen(recv.X)
	if call, ok := operand.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if t := s.pkg.Info.TypeOf(sel.X); t != nil && isContext(t) {
				s.fn.Summary.SelectsOnDone = true
				return
			}
		}
		return
	}
	cls := s.g.classOf(s.pkg, operand)
	use := ChanUse{Chan: cls, Pos: recv.Pos()}
	s.applySelect(&use)
	s.fn.Summary.Recvs = append(s.fn.Summary.Recvs, use)
	if cf := s.g.chanFactsFor(cls); cf != nil {
		cf.Recvs = append(cf.Recvs, recv.Pos())
	}
}

func (s *scanner) chanSend(st *ast.SendStmt) {
	cls := s.g.classOf(s.pkg, st.Chan)
	use := ChanUse{Chan: cls, Pos: st.Pos()}
	s.applySelect(&use)
	s.fn.Summary.Sends = append(s.fn.Summary.Sends, use)
	if cf := s.g.chanFactsFor(cls); cf != nil {
		cf.Sends = append(cf.Sends, st.Pos())
	}
}

// applySelect attaches the enclosing select's context to one channel op:
// default case means non-blocking, sibling receives are escape hatches.
func (s *scanner) applySelect(use *ChanUse) {
	if s.sel == nil {
		return
	}
	use.NonBlocking = s.sel.hasDefault
	for _, rc := range s.sel.recvs {
		if rc.Key != use.Chan.Key {
			use.EscapeChans = append(use.EscapeChans, rc)
		}
	}
}

// markBufferedMake records `lhs = make(chan T, n)` with constant n > 0.
func (s *scanner) markBufferedMake(lhs []ast.Expr, rhs ast.Expr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if t := s.pkg.Info.TypeOf(call.Args[0]); t == nil {
		return
	} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return
	}
	tv, ok := s.pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return
	}
	if v, ok := constantInt(tv); !ok || v <= 0 {
		return
	}
	for _, l := range lhs {
		if cf := s.g.chanFactsFor(s.g.classOf(s.pkg, l)); cf != nil {
			cf.Buffered = true
		}
	}
}

func constantInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

// markTaken flags declared functions whose value is referenced outside
// call position — candidates for dynamic call edges.
func (s *scanner) markTaken(id *ast.Ident) {
	obj, ok := s.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if f := s.g.FuncOf(obj); f != nil {
		s.g.taken[f] = true
	}
}

// mutexOp resolves call as a Lock/RLock/Unlock/RUnlock on a sync.Mutex
// or sync.RWMutex (including promoted methods via embedding), returning
// the lock class, instance base and method name.
func (s *scanner) mutexOp(call *ast.CallExpr) (cls Class, base, name string, ok bool) {
	fn := calleeFunc(s.pkg.Info, call)
	if fn == nil {
		return Class{}, "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return Class{}, "", "", false
	}
	if !isSyncLockMethod(fn) {
		return Class{}, "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return Class{}, "", "", false
	}
	if isSyncLockType(s.pkg.Info.TypeOf(sel.X)) {
		cls = s.g.classOf(s.pkg, sel.X)
	} else {
		// Promoted method: x.Lock() reaches a mutex embedded in x's
		// type; the lock class is the embedded field, not x itself.
		cls = s.g.embeddedLockClass(s.pkg, sel.X)
	}
	if cls.Zero() {
		return Class{}, "", "", false
	}
	return cls, baseExpr(sel.X), fn.Name(), true
}

func isSyncLockMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isSyncLockType(sig.Recv().Type())
}

func isSyncLockType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// calleeFunc resolves the called function or method, nil for indirect
// calls, conversions and builtins. (Duplicated from lint to keep flow
// dependency-free.)
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
