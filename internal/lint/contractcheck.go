package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soc/internal/core"
	"soc/internal/wsdl"
)

// ContractCheck statically enforces the paper's "standard interface"
// requirement: the operations a service registers in code must match the
// WSDL contract published for it. It recovers core.Service registrations
// from the AST — core.NewService calls plus the AddOperation /
// MustAddOperation calls on the returned value, including the common
// `ops := []core.Operation{...}` + range-loop and shared-parameter-slice
// patterns — and compares operation names, parameter names, types and
// optionality against the golden WSDL documents in Config.ContractsDir
// (regenerated with `make contracts`). A handler that drifts from its
// contract therefore fails the build, not the first client.
//
// Services in Config.ContractBound packages must have a contract; other
// statically visible services (examples, scratch code) are checked only
// when a contract of the same name exists.
var ContractCheck = &Analyzer{
	Name: "contractcheck",
	Doc:  "cross-checks core.Service registrations against their golden WSDL contracts",
	Run:  runContractCheck,
}

// staticParam is one parameter recovered from a core.Param literal.
type staticParam struct {
	name     string
	typ      string // lexical core.Type value: "string", "int", ...
	optional bool
}

// staticOp is one operation recovered from an AddOperation call.
type staticOp struct {
	name     string
	pos      token.Pos
	input    []staticParam
	output   []staticParam
	resolved bool // false when a field could not be statically evaluated
}

// staticService is one statically recovered service registration.
type staticService struct {
	name     string
	pos      token.Pos
	ops      []staticOp
	complete bool // false when some registrations could not be recovered
}

func runContractCheck(pass *Pass) error {
	if pass.Config.ContractsDir == "" {
		return nil
	}
	var services []staticService
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			services = append(services, collectServices(pass, fd.Body)...)
		}
	}
	if len(services) == 0 {
		return nil
	}
	contracts, err := loadContracts(pass.Config.ContractsDir)
	if err != nil {
		return fmt.Errorf("contractcheck: %w", err)
	}
	bound := InScope(pass.Path, pass.Config.ContractBound)
	for _, svc := range services {
		desc, ok := contracts[svc.name]
		if !ok {
			if bound {
				pass.Reportf(svc.pos, "service %q has no contract in %s; run `make contracts` and commit the result", svc.name, pass.Config.ContractsDir)
			}
			continue
		}
		compareContract(pass, svc, desc)
	}
	return nil
}

// loadContracts parses every .wsdl document in dir, keyed by service name.
func loadContracts(dir string) (map[string]*wsdl.Description, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*wsdl.Description{}, nil
		}
		return nil, err
	}
	out := map[string]*wsdl.Description{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wsdl") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		desc, err := wsdl.Parse(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("contract %s: %w", e.Name(), err)
		}
		out[desc.Name] = desc
	}
	return out, nil
}

// compareContract reports every drift between the static registration
// and the golden contract.
func compareContract(pass *Pass, svc staticService, desc *wsdl.Description) {
	contractOps := map[string]wsdl.OpDescription{}
	for _, op := range desc.Ops {
		contractOps[op.Name] = op
	}
	seen := map[string]bool{}
	for _, op := range svc.ops {
		seen[op.name] = true
		cop, ok := contractOps[op.name]
		if !ok {
			pass.Reportf(op.pos, "service %q registers operation %q absent from its contract; run `make contracts` to republish the interface", svc.name, op.name)
			continue
		}
		if !op.resolved {
			continue // cannot compare parameters we could not evaluate
		}
		compareParams(pass, svc.name, op, "input", op.input, cop.Input)
		compareParams(pass, svc.name, op, "output", op.output, cop.Output)
	}
	if !svc.complete {
		return // dynamic registrations may cover the rest
	}
	var missing []string
	for name := range contractOps {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(svc.pos, "contract for service %q declares operation %q that the code no longer registers", svc.name, name)
	}
}

// compareParams checks the recovered parameter list of one direction
// (input or output) against the contract's, in order: WSDL sequences are
// ordered, and registration order is what wsdl.Generate publishes.
func compareParams(pass *Pass, svcName string, op staticOp, dir string, got []staticParam, want []core.Param) {
	if len(got) != len(want) {
		pass.Reportf(op.pos, "service %q operation %q: %s has %d parameter(s) but its contract declares %d; run `make contracts` if the code is right", svcName, op.name, dir, len(got), len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		switch {
		case g.name != w.Name:
			pass.Reportf(op.pos, "service %q operation %q: %s parameter %d is %q in code but %q in the contract", svcName, op.name, dir, i+1, g.name, w.Name)
		case g.typ != string(w.Type):
			pass.Reportf(op.pos, "service %q operation %q: %s parameter %q is %s in code but %s in the contract", svcName, op.name, dir, g.name, g.typ, w.Type)
		case g.optional != w.Optional:
			pass.Reportf(op.pos, "service %q operation %q: %s parameter %q optionality drifted from its contract", svcName, op.name, dir, g.name)
		}
	}
}

// collectServices recovers the service registrations made in one
// function body.
func collectServices(pass *Pass, body *ast.BlockStmt) []staticService {
	// Map the local object created by core.NewService to its service.
	byObj := map[types.Object]*staticService{}
	var order []types.Object
	inspectShallowStmts(body, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		fn := CalleeFunc(pass.Info, call)
		if !IsPkgFunc(fn, "soc/internal/core", "NewService") {
			return
		}
		name, ok := constString(pass, call.Args[0])
		if !ok {
			return
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		byObj[obj] = &staticService{name: name, pos: call.Pos(), complete: true}
		order = append(order, obj)
	})
	if len(byObj) == 0 {
		return nil
	}

	// Walk registrations: svc.AddOperation(...) / svc.MustAddOperation.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeFunc(pass.Info, call)
		if fn == nil || (fn.Name() != "AddOperation" && fn.Name() != "MustAddOperation") {
			return true
		}
		if !IsMethod(fn, "soc/internal/core", "Service", fn.Name()) {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		svc := byObj[pass.Info.Uses[recv]]
		if svc == nil || len(call.Args) != 1 {
			return true
		}
		ops, resolvedAll := resolveOperations(pass, body, call.Args[0])
		if !resolvedAll {
			svc.complete = false
		}
		svc.ops = append(svc.ops, ops...)
		return true
	})

	out := make([]staticService, 0, len(byObj))
	for _, obj := range order {
		out = append(out, *byObj[obj])
	}
	return out
}

// resolveOperations evaluates the argument of an AddOperation call to
// zero or more operation literals. Handled shapes: a core.Operation
// composite literal; an identifier bound (once, locally) to one; and an
// identifier that is the range variable over a local []core.Operation
// literal.
func resolveOperations(pass *Pass, body *ast.BlockStmt, arg ast.Expr) ([]staticOp, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		op, ok := operationFromLit(pass, body, e)
		if !ok {
			return nil, false
		}
		return []staticOp{op}, true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolveOperations(pass, body, e.X)
		}
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return nil, false
		}
		// Single local assignment to a composite literal?
		if lit := localCompositeOf(pass, body, obj); lit != nil {
			op, ok := operationFromLit(pass, body, lit)
			if !ok {
				return nil, false
			}
			return []staticOp{op}, true
		}
		// Range variable over a local []core.Operation literal?
		if lit := rangeSourceLit(pass, body, obj); lit != nil {
			var ops []staticOp
			all := true
			for _, elt := range lit.Elts {
				el, ok := ast.Unparen(elt).(*ast.CompositeLit)
				if !ok {
					all = false
					continue
				}
				op, ok := operationFromLit(pass, body, el)
				if !ok {
					all = false
					continue
				}
				ops = append(ops, op)
			}
			return ops, all
		}
	}
	return nil, false
}

// localCompositeOf finds the unique `obj := <composite literal>`
// assignment in body, requiring that obj is never reassigned.
func localCompositeOf(pass *Pass, body *ast.BlockStmt, obj types.Object) *ast.CompositeLit {
	var lit *ast.CompositeLit
	assigns := 0
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def := pass.Info.Defs[id]
			if def == nil {
				def = pass.Info.Uses[id]
			}
			if def != obj {
				continue
			}
			assigns++
			if l, ok := ast.Unparen(assign.Rhs[i]).(*ast.CompositeLit); ok {
				lit = l
			}
		}
		return true
	})
	if assigns != 1 {
		return nil
	}
	return lit
}

// rangeSourceLit resolves obj as the value variable of a range statement
// whose X is (an identifier for) a slice composite literal.
func rangeSourceLit(pass *Pass, body *ast.BlockStmt, obj types.Object) *ast.CompositeLit {
	var lit *ast.CompositeLit
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.Value == nil {
			return true
		}
		id, ok := rng.Value.(*ast.Ident)
		if !ok || pass.Info.Defs[id] != obj {
			return true
		}
		switch x := ast.Unparen(rng.X).(type) {
		case *ast.CompositeLit:
			lit = x
		case *ast.Ident:
			if src := pass.Info.Uses[x]; src != nil {
				lit = localCompositeOf(pass, body, src)
			}
		}
		return false
	})
	return lit
}

// operationFromLit evaluates a core.Operation composite literal.
func operationFromLit(pass *Pass, body *ast.BlockStmt, lit *ast.CompositeLit) (staticOp, bool) {
	if !IsNamedType(pass.Info.TypeOf(lit), "soc/internal/core", "Operation") {
		return staticOp{}, false
	}
	op := staticOp{pos: lit.Pos(), resolved: true}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return staticOp{}, false // positional Operation literals unsupported
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return staticOp{}, false
		}
		switch key.Name {
		case "Name":
			name, ok := constString(pass, kv.Value)
			if !ok {
				return staticOp{}, false
			}
			op.name = name
		case "Input", "Output":
			params, ok := paramsFromExpr(pass, body, kv.Value)
			if !ok {
				op.resolved = false
				continue
			}
			if key.Name == "Input" {
				op.input = params
			} else {
				op.output = params
			}
		}
	}
	if op.name == "" {
		return staticOp{}, false
	}
	return op, true
}

// paramsFromExpr evaluates a []core.Param expression: a composite
// literal, or an identifier bound locally to one.
func paramsFromExpr(pass *Pass, body *ast.BlockStmt, expr ast.Expr) ([]staticParam, bool) {
	var lit *ast.CompositeLit
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		lit = e
	case *ast.Ident:
		if e.Name == "nil" {
			return nil, true
		}
		if obj := pass.Info.Uses[e]; obj != nil {
			lit = localCompositeOf(pass, body, obj)
		}
	}
	if lit == nil {
		return nil, false
	}
	var params []staticParam
	for _, elt := range lit.Elts {
		el, ok := ast.Unparen(elt).(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		var p staticParam
		p.typ = "string" // core.Param zero value renders as xsd:string
		for _, f := range el.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				return nil, false
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return nil, false
			}
			switch key.Name {
			case "Name":
				name, ok := constString(pass, kv.Value)
				if !ok {
					return nil, false
				}
				p.name = name
			case "Type":
				typ, ok := constString(pass, kv.Value)
				if !ok {
					return nil, false
				}
				p.typ = typ
			case "Optional":
				b, ok := constBool(pass, kv.Value)
				if !ok {
					return nil, false
				}
				p.optional = b
			}
		}
		if p.name == "" {
			return nil, false
		}
		params = append(params, p)
	}
	return params, true
}

func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constBool(pass *Pass, expr ast.Expr) (bool, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// inspectShallowStmts walks body without entering function literals.
func inspectShallowStmts(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
