package lint

import (
	"go/ast"
)

// TracePropagate enforces the call plane's single sanctioned
// construction site for outbound requests: a function that already holds
// a live context must build HTTP requests with callplane.NewRequest, not
// http.NewRequestWithContext. The two are identical except for one line —
// NewRequest injects the caller's trace context into the wire headers —
// so a raw NewRequestWithContext is exactly a hop where distributed
// traces silently break. The callplane package itself (Config.
// CallPlanePath) is exempt: it is the one place the raw constructor is
// supposed to appear. Deliberately untraced egress (health probes, code
// that would import-cycle with callplane) carries an //soclint:ignore
// directive explaining why it lives outside the trace plane.
//
// ctxpropagate already rejects plain http.NewRequest in these functions,
// so this analyzer only patrols the WithContext variant it mandates.
var TracePropagate = &Analyzer{
	Name: "tracepropagate",
	Doc:  "requires callplane.NewRequest (not http.NewRequestWithContext) in functions holding a live context",
	Run:  runTracePropagate,
}

func runTracePropagate(pass *Pass) error {
	if pass.Config.CallPlanePath == "" || pass.Path == pass.Config.CallPlanePath {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkTraceBody(pass, fd.Body, holdsCtx(pass, fd.Type))
			}
		}
	}
	return nil
}

func checkTraceBody(pass *Pass, body ast.Node, held bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkTraceBody(pass, n.Body, held || holdsCtx(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !held {
				return true
			}
			fn := CalleeFunc(pass.Info, n)
			if IsPkgFunc(fn, "net/http", "NewRequestWithContext") {
				pass.Reportf(n.Pos(), "http.NewRequestWithContext bypasses the call plane (no trace context on the wire); use callplane.NewRequest")
			}
		}
		return true
	})
}
