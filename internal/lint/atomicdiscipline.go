package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"soc/internal/lint/flow"
)

// AtomicDiscipline enforces the all-or-nothing rule of sync/atomic: a
// word (struct field or package-level variable) accessed via the atomic
// functions anywhere in the module may never be read or written plainly
// anywhere else — mixed access is a data race the race detector only
// catches when a test happens to hit it. The check is transitive through
// accessor helpers: `&x.f` passed to a function whose pointer parameter
// is used atomically marks x.f atomic, chained to any depth.
//
// Approximations: taking a word's address is not itself an access, so a
// pointer that escapes into code the fixpoint does not follow (stored in
// a struct, returned, passed by value onward through untyped interfaces)
// is not tracked — an under-approximation. Local variables are out of
// scope: the common `var n int64` counter bumped atomically inside
// worker goroutines and read plainly after wg.Wait() is a correct and
// idiomatic pattern that a class-based check cannot separate from the
// racy one. Composite-literal keys and declarations are sanctioned
// (pre-publication initialization). The typed atomic.Int64 family needs
// no checking — its API makes plain access impossible.
var AtomicDiscipline = &Analyzer{
	Name:  "atomicdiscipline",
	Doc:   "a field accessed via sync/atomic anywhere must never be accessed plainly elsewhere",
	Tests: true,
	Flow:  true,
	Run:   runAtomicDiscipline,
}

func runAtomicDiscipline(pass *Pass) error {
	if len(pass.Config.AtomicScope) == 0 {
		return nil
	}
	g := pass.FlowGraph()
	facts := g.Memo("atomicdiscipline.facts", func() any { return collectAtomicFacts(g) }).(*atomicFacts)
	for _, u := range facts.plain {
		if !pass.InFiles(u.Pos) {
			continue // another package's pass owns this access
		}
		if !InScope(u.Class.PkgPath, pass.Config.AtomicScope) {
			continue
		}
		pass.Reportf(u.Pos, "plain access of %s, which is accessed via sync/atomic (%s); mixed access is a data race — use atomic ops or a mutex consistently", u.Class.Name, relPos(g.Fset, u.AtomicAt))
	}
	return nil
}

// atomicUse is one plain access of an atomically-accessed class.
type atomicUse struct {
	Class flow.Class
	Pos   token.Pos
	// AtomicAt is one site where the class is accessed atomically, for
	// the report.
	AtomicAt token.Pos
}

type atomicFacts struct {
	plain []atomicUse
}

// collectAtomicFacts runs the module-wide scan once per graph: find the
// atomic classes (directly and through the pointer-parameter fixpoint),
// then every unsanctioned plain use of them.
func collectAtomicFacts(g *flow.Graph) *atomicFacts {
	type classInfo struct {
		cls flow.Class
		at  token.Pos
	}
	classes := map[string]classInfo{}
	sanctioned := map[token.Pos]bool{}
	// atomicParams maps canonical keys of pointer parameters that are
	// operands of atomic calls to one such call site.
	atomicParams := map[string]token.Pos{}
	// callArg is a candidate edge for the fixpoint: an address-of or
	// pointer-forwarding argument at a statically resolved call.
	type callArg struct {
		pkg     *flow.Package
		callee  *types.Func
		index   int
		operand ast.Expr   // &operand passed; nil when forwarding
		fwd     *types.Var // pointer variable passed by value
		pos     token.Pos
	}
	var pointerArgs []callArg

	sanctionIdents := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				sanctioned[id.Pos()] = true
			}
			return true
		})
	}
	markAtomic := func(pkg *flow.Package, operand ast.Expr, at token.Pos) {
		v := varOf(pkg.Info, operand)
		if v == nil || !sharedWord(v) {
			return
		}
		cls := g.ClassOfExpr(pkg, operand)
		if cls.Zero() {
			return
		}
		if _, ok := classes[cls.Key]; !ok {
			classes[cls.Key] = classInfo{cls: cls, at: at}
		}
	}

	// Pass 1: atomic call sites, address-of sanctioning, composite keys,
	// fixpoint candidates.
	for _, pkg := range g.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								sanctioned[id.Pos()] = true
							}
						}
					}
				case *ast.UnaryExpr:
					// Taking the address is not a read or write of the
					// word; where the pointer goes is tracked (only)
					// through the parameter fixpoint below.
					if n.Op == token.AND {
						sanctionIdents(n.X)
					}
				case *ast.CallExpr:
					fn := CalleeFunc(pkg.Info, n)
					if fn == nil {
						return true
					}
					if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && isAtomicWordFunc(fn) {
						for _, a := range n.Args {
							if operand := addrOperand(a); operand != nil {
								markAtomic(pkg, operand, n.Pos())
								continue
							}
							// atomic.AddInt64(p, 1): p is a pointer
							// variable — seed the parameter fixpoint.
							if id, ok := ast.Unparen(a).(*ast.Ident); ok {
								if v, ok2 := pkg.Info.Uses[id].(*types.Var); ok2 && isPointer(v.Type()) {
									key := g.VarClass(v, v.Name()).Key
									if _, seen := atomicParams[key]; !seen {
										atomicParams[key] = n.Pos()
									}
								}
							}
						}
						return true
					}
					sig, ok := fn.Type().(*types.Signature)
					if !ok {
						return true
					}
					for i, a := range n.Args {
						if i >= sig.Params().Len() {
							break // variadic tail: not followed
						}
						if operand := addrOperand(a); operand != nil {
							pointerArgs = append(pointerArgs, callArg{pkg: pkg, callee: fn, index: i, operand: operand, pos: n.Pos()})
							continue
						}
						if id, ok := ast.Unparen(a).(*ast.Ident); ok {
							if v, ok2 := pkg.Info.Uses[id].(*types.Var); ok2 && isPointer(v.Type()) {
								pointerArgs = append(pointerArgs, callArg{pkg: pkg, callee: fn, index: i, fwd: v, pos: n.Pos()})
							}
						}
					}
				}
				return true
			})
		}
	}

	// Fixpoint: &x.f (or a forwarded pointer) reaching a parameter that
	// is used atomically makes x.f atomic / keeps the chain going.
	for changed := true; changed; {
		changed = false
		for _, ca := range pointerArgs {
			sig, ok := ca.callee.Type().(*types.Signature)
			if !ok || ca.index >= sig.Params().Len() {
				continue
			}
			p := sig.Params().At(ca.index)
			at, isAtomic := atomicParams[g.VarClass(p, p.Name()).Key]
			if !isAtomic {
				continue
			}
			if ca.operand != nil {
				v := varOf(ca.pkg.Info, ca.operand)
				if v == nil || !sharedWord(v) {
					continue
				}
				cls := g.ClassOfExpr(ca.pkg, ca.operand)
				if cls.Zero() {
					continue
				}
				if _, seen := classes[cls.Key]; !seen {
					classes[cls.Key] = classInfo{cls: cls, at: at}
					changed = true
				}
				continue
			}
			key := g.VarClass(ca.fwd, ca.fwd.Name()).Key
			if _, seen := atomicParams[key]; !seen {
				atomicParams[key] = at
				changed = true
			}
		}
	}

	// Pass 2: every unsanctioned plain use of an atomic class.
	facts := &atomicFacts{}
	for _, pkg := range g.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || !sharedWord(v) {
					return true
				}
				info, tracked := classes[g.VarClass(v, v.Name()).Key]
				if !tracked || sanctioned[id.Pos()] {
					return true
				}
				facts.plain = append(facts.plain, atomicUse{Class: info.cls, Pos: id.Pos(), AtomicAt: info.at})
				return true
			})
		}
	}
	sort.Slice(facts.plain, func(i, j int) bool { return facts.plain[i].Pos < facts.plain[j].Pos })
	return facts
}

// varOf resolves expr to the variable it denotes (identifier or field
// selector); nil for anything else.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// sharedWord restricts the discipline to words that outlive a single
// call frame: struct fields and package-level variables.
func sharedWord(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// addrOperand returns x for the expression &x, nil otherwise.
func addrOperand(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return nil
}

// isAtomicWordFunc matches the pointer-taking word functions of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*, And*, Or*).
func isAtomicWordFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}
