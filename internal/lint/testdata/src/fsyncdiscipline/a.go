// Package fsyncdiscipline is the golden fixture for the fsyncdiscipline
// analyzer: fsync-free writes and rename-before-fsync are findings, the
// write → sync → rename sequence is not, and an explained ignore
// directive suppresses.
package fsyncdiscipline

import "os"

func lazyWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile in a durability-scoped package`
}

func renameWithoutSync(tmp, path string) error {
	return os.Rename(tmp, path) // want `os.Rename without a preceding fsync`
}

func publishProperly(path string, data []byte) error {
	f, err := os.CreateTemp(".", "tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // synced above: no finding
}

// syncInHelperCounts: the lexical rule accepts any earlier call whose
// name mentions sync, helpers included.
func syncInHelperCounts(tmp, path string) error {
	if err := fsyncAll(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fsyncAll(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// laterSyncDoesNotCount: a Sync after the rename cannot retroactively
// make the publish safe.
func laterSyncDoesNotCount(tmp, path string, f *os.File) error {
	if err := os.Rename(tmp, path); err != nil { // want `os.Rename without a preceding fsync`
		return err
	}
	return f.Sync()
}

func forwardingAdapter(oldname, newname string) error {
	//soclint:ignore fsyncdiscipline thin adapter fixture: the caller owns the sync sequencing
	return os.Rename(oldname, newname)
}
