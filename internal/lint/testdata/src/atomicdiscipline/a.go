// Package atomicdiscipline is the golden fixture for the
// atomicdiscipline analyzer: words accessed both atomically and plainly
// (directly and through accessor helpers) must be flagged; consistent
// users must stay silent.
package atomicdiscipline

import "sync/atomic"

type Counter struct {
	n    int64
	hits int64
}

// Inc accesses n atomically — from here on every plain access of n is a
// data race.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return c.n // want `plain access of atomicdiscipline\.Counter\.n`
}

// bump is an accessor helper: its parameter is used atomically, so any
// word whose address reaches it is atomic by transitivity.
func bump(p *int64) {
	atomic.AddInt64(p, 1)
}

// forward chains the pointer one level deeper.
func forward(p *int64) {
	bump(p)
}

func (c *Counter) Hit() {
	forward(&c.hits)
}

func (c *Counter) Hits() int64 {
	return c.hits // want `plain access of atomicdiscipline\.Counter\.hits`
}

// Gauge uses atomics consistently: silent.
type Gauge struct{ v int64 }

func (g *Gauge) Set(x int64) { atomic.StoreInt64(&g.v, x) }

func (g *Gauge) Get() int64 { return atomic.LoadInt64(&g.v) }

// Plain never touches atomics: silent.
type Plain struct{ n int64 }

func (p *Plain) Inc() { p.n++ }

// flags is a package-level word accessed atomically here...
var flags uint32

func setFlag(bit uint32) {
	atomic.OrUint32(&flags, bit)
}

// ...and plainly here.
func resetFlags() {
	flags = 0 // want `plain access of atomicdiscipline\.flags`
}
