// Package goleak is the golden fixture for the goleak analyzer: leaky
// spawns that must be flagged and each accepted termination discipline,
// which must stay silent.
package goleak

import (
	"context"
	"sync"
)

// leakySend parks forever: the channel is unbuffered and nothing in the
// module ever receives from it.
func leakySend() {
	ch := make(chan int)
	go func() { // want `send on goleak\.ch can block forever`
		ch <- 1
	}()
}

// leakyRecv parks forever: nothing sends to or closes the channel.
func leakyRecv() {
	go func() { // want `receive on goleak\.ch2 can block forever`
		<-ch2
	}()
}

var ch2 chan int

// spin never terminates and has no escape.
func spin() {
	go func() { // want `loops forever with no ctx\.Done select or closed-channel escape`
		for {
		}
	}()
}

// opaque spawns a function value whose body the analysis cannot see.
func opaque(f func()) {
	go f() // want `opaque function value`
}

// joined is the WaitGroup discipline.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// cancellable is the context discipline: cancellation reaches a select.
func cancellable(ctx context.Context, in chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-in:
			_ = v
		}
	}()
}

// bounded sends into guaranteed capacity and returns.
func bounded() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

// quitLoop ranges a loop with a closed-channel escape.
func quitLoop() {
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
	close(quit)
}

// fanout spawns per loop iteration on the request path without joining —
// the unbounded fan-out shape Bulkhead exists to prevent.
func fanout(items []int) {
	for _, it := range items {
		go func(it int) { // want `request-path loop spawns an unjoined goroutine per iteration`
			_ = it * 2
		}(it)
	}
}

// fanoutJoined is the same loop with a WaitGroup join: fine.
func fanoutJoined(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			_ = it
		}(it)
	}
	wg.Wait()
}

// fanoutDrained joins by draining a result channel: fine.
func fanoutDrained(items []int) int {
	res := make(chan int, 8)
	for _, it := range items {
		go func(it int) {
			res <- it
		}(it)
	}
	total := 0
	for range items {
		total += <-res
	}
	return total
}
