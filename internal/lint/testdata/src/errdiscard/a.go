// Package errdiscard is a golden-file fixture for the errdiscard
// analyzer: service code may not silently drop errors.
package errdiscard

import (
	"fmt"
	"os"
	"strings"
)

func save(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want `result of os.WriteFile includes an error that is silently dropped`
}

func drop(path string) {
	_ = os.Remove(path) // want `error from os.Remove discarded with blank assignment`
}

// Clean cases below: no findings expected.

func report(err error) {
	fmt.Println("failed:", err) // the fmt print family is exempt
}

func build(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p) // strings.Builder never returns an error
	}
	return b.String()
}

func teardown(f *os.File) {
	f.Close() // Close errors on teardown paths are conventionally dropped
}

func handled(path string) error {
	return os.Remove(path)
}

func annotated(path string) {
	//soclint:ignore errdiscard best-effort cleanup exercised by the golden test; the caller cannot act on the error
	_ = os.Remove(path)
}
