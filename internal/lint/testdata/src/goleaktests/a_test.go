package goleaktests

import "testing"

// TestLeaky spawns a goroutine that parks forever on an unbuffered
// channel nothing receives from — the leak the goleak analyzer must
// see inside a _test.go file.
func TestLeaky(t *testing.T) {
	ch := make(chan int)
	go func() {
		ch <- Work()
	}()
}
