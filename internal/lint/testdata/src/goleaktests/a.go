// Package goleaktests is the fixture for analyzing _test.go files: the
// package's source is clean, the leak is in its in-package test file,
// so a finding appears only when the loader and runner let the goleak
// analyzer see test files.
package goleaktests

// Work is here so the directory is a buildable package on its own.
func Work() int { return 42 }
