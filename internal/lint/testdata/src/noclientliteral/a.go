// Package noclientliteral is a golden-file fixture for the
// noclientliteral analyzer: every http.Client literal must bound its
// requests with a Timeout.
package noclientliteral

import (
	"net/http"
	"time"
)

func bare() *http.Client {
	return &http.Client{} // want `http.Client literal without Timeout`
}

func jarOnly(jar http.CookieJar) *http.Client {
	return &http.Client{Jar: jar} // want `http.Client literal without Timeout`
}

func value() http.Client {
	return http.Client{} // want `http.Client literal without Timeout`
}

// Clean cases below: no findings expected.

func bounded() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}

func boundedWithJar(jar http.CookieJar) *http.Client {
	return &http.Client{Jar: jar, Timeout: 30 * time.Second}
}
