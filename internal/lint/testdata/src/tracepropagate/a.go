// Package tracepropagate is a golden-file fixture for the tracepropagate
// analyzer: functions that already hold a context must build outbound
// requests through the call plane, which injects trace context, rather
// than http.NewRequestWithContext, which silently drops it.
package tracepropagate

import (
	"context"
	"net/http"
	"time"
)

func traced(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.org", nil) // want `http.NewRequestWithContext bypasses the call plane`
	if err != nil {
		return err
	}
	_ = req
	return nil
}

func handler(w http.ResponseWriter, r *http.Request) {
	req, _ := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://example.org", nil) // want `http.NewRequestWithContext bypasses the call plane`
	_ = req
	_ = w
}

func closureInherits(ctx context.Context) func() error {
	return func() error {
		_, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.org", nil) // want `http.NewRequestWithContext bypasses the call plane`
		return err
	}
}

// Clean cases below: no findings expected.

func rootCaller() error {
	// No inherited context: this call path starts here, so there is no
	// upstream trace to propagate and the raw constructor is fine.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.org", nil)
	if err != nil {
		return err
	}
	_ = req
	return nil
}

func probe(ctx context.Context) error {
	//soclint:ignore tracepropagate probes are deliberately outside the trace plane; each probe is its own root event
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.org/healthz", nil)
	if err != nil {
		return err
	}
	_ = req
	return nil
}
