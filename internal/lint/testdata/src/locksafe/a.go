// Package locksafe is a golden-file fixture for the locksafe analyzer:
// no copying lock-bearing values, no blocking while a mutex is held.
package locksafe

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) Value() int { // want `receiver passes a lock by value`
	return c.n
}

func byValueParam(c counter) int { // want `parameter passes a lock by value`
	return c.n
}

func assignCopy(c *counter) {
	snapshot := *c // want `assignment copies a lock-bearing value`
	_ = snapshot.n
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want `range clause copies a lock-bearing value`
		total += c.n
	}
	return total
}

func sleepUnderLock(c *counter) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding c.mu`
	c.mu.Unlock()
}

func sendUnderLock(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `channel send while holding c.mu`
}

// Clean cases below: no findings expected.

func sleepAfterUnlock(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func nonBlockingSend(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

func goroutineEscapes(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The goroutine runs on its own stack after this function's locks
	// are no longer the scan's concern.
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

func pointerParam(c *counter) int {
	return c.n
}
