// Package bodyclose is a golden-file fixture for the bodyclose
// analyzer: every http.Response from a client call must be closed or
// handed off within the function that made the call.
package bodyclose

import (
	"io"
	"net/http"
)

func leaks(c *http.Client, req *http.Request) ([]byte, error) {
	resp, err := c.Do(req) // want `response body never closed`
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

func discards(c *http.Client, req *http.Request) {
	_, _ = c.Do(req) // want `response body never closed: result of .* discarded`
}

func bareCall(url string) {
	http.Get(url) // want `response body never closed: result of .* discarded`
}

func leaksGet(url string) error {
	resp, err := http.Get(url) // want `response body never closed`
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}

// Clean cases below: no findings expected.

func deferred(c *http.Client, req *http.Request) ([]byte, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func direct(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

func returned(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

func returnedVar(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func handsOff(c *http.Client, req *http.Request, sink func(*http.Response)) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	sink(resp)
	return nil
}

func closedInDefer(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	return nil
}
