// Package contractcheck is a golden-file fixture for the contractcheck
// analyzer. Its golden contracts live in testdata/contracts (regenerate
// with `go run testdata/gen_contracts.go` from internal/lint): Clock
// matches its contract exactly; Weather drifts from its contract in
// three distinct ways; Orphan has no contract at all.
package contractcheck

import (
	"context"

	"soc/internal/core"
)

func echo(_ context.Context, in core.Values) (core.Values, error) { return in, nil }

// newClock matches Clock.wsdl exactly: the clean case.
func newClock() (*core.Service, error) {
	svc, err := core.NewService("Clock", "http://example.org/clock", "tells the time")
	if err != nil {
		return nil, err
	}
	if err := svc.AddOperation(core.Operation{
		Name:    "Now",
		Output:  []core.Param{{Name: "unix", Type: core.Int}},
		Handler: echo,
	}); err != nil {
		return nil, err
	}
	return svc, nil
}

// newWeather drifts from Weather.wsdl three ways: it registers Forecast
// (absent from the contract), it no longer registers Observe (declared
// by the contract), and Temp's output parameter changed type.
func newWeather() (*core.Service, error) {
	svc, err := core.NewService("Weather", "http://example.org/weather", "forecasts") // want `contract for service "Weather" declares operation "Observe" that the code no longer registers`
	if err != nil {
		return nil, err
	}
	svc.MustAddOperation(core.Operation{ // want `service "Weather" registers operation "Forecast" absent from its contract`
		Name:    "Forecast",
		Input:   []core.Param{{Name: "city"}},
		Output:  []core.Param{{Name: "temp", Type: core.Float}},
		Handler: echo,
	})
	svc.MustAddOperation(core.Operation{ // want `output parameter "celsius" is int in code but float in the contract`
		Name:    "Temp",
		Input:   []core.Param{{Name: "city"}},
		Output:  []core.Param{{Name: "celsius", Type: core.Int}},
		Handler: echo,
	})
	return svc, nil
}

// newOrphan registers a service with no contract on disk; the fixture
// package is contract-bound, so the missing file alone is a finding.
func newOrphan() (*core.Service, error) {
	svc, err := core.NewService("Orphan", "http://example.org/orphan", "unpublished") // want `service "Orphan" has no contract`
	return svc, err
}
