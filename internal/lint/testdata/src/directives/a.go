// Package directives exercises the //soclint:ignore machinery itself;
// lint_test.go asserts its findings in code rather than with want
// comments (a trailing comment would merge into the directive text).
package directives

import "os"

func suppressedSameLine(path string) {
	_ = os.Remove(path) //soclint:ignore errdiscard same-line suppression exercised by lint_test
}

func suppressedLineAbove(path string) {
	//soclint:ignore errdiscard line-above suppression exercised by lint_test
	_ = os.Remove(path)
}

func malformed(path string) {
	//soclint:ignore errdiscard
	_ = os.Remove(path)
}

func wrongAnalyzer(path string) {
	//soclint:ignore bodyclose a directive for another analyzer suppresses nothing here
	_ = os.Remove(path)
}
