// Package lockorder is the golden fixture for the lockorder analyzer:
// an AB/BA inversion across two functions, an interprocedural
// self-deadlock through a helper, and correctly ordered pairs that must
// stay silent.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var a A

var b B

// ab nests b.mu under a.mu — half of the inversion. The cycle is
// reported once, anchored at the first edge's holding acquisition.
func ab() {
	a.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockorder\.A\.mu -> lockorder\.B\.mu -> lockorder\.A\.mu`
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba nests a.mu under b.mu — the other half.
func ba() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// relock calls a helper that re-acquires the mutex the caller already
// holds on the same instance: a guaranteed self-deadlock, found through
// the call graph with the helper named in the witness.
func (c *C) relock() int {
	c.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockorder\.C\.mu -> lockorder\.C\.mu.*via lockorder\.C\.get`
	defer c.mu.Unlock()
	return c.get()
}

type D struct{ mu sync.Mutex }

var d D

// nestedConsistent nests d.mu under a.mu here and everywhere — a
// consistent order is not a cycle and must stay silent.
func nestedConsistent() {
	a.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	a.mu.Unlock()
}

// twoInstances locks two distinct instances of one class in sequence —
// classes cannot separate instances, so this must NOT count as a
// self-cycle (the bases differ).
func twoInstances(x, y *C) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
