// Package poolreset is the golden fixture for the poolreset analyzer.
package poolreset

import "sync"

type msg struct {
	op     string
	params map[string]string
}

func (m *msg) resetForReuse() {
	m.op = ""
	clear(m.params)
}

var (
	bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}
	msgPool = sync.Pool{New: func() any { return &msg{params: map[string]string{}} }}
	mapPool = sync.Pool{New: func() any { return map[string]string{} }}
)

// Truncation through the pointer counts as a reset.
func putBufGood(bp *[]byte) {
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// A guard clause between the reset and the Put is fine.
func putBufGuarded(bp *[]byte) {
	*bp = (*bp)[:0]
	if cap(*bp) > 1<<16 {
		return
	}
	bufPool.Put(bp)
}

func putBufBad(bp *[]byte) {
	bufPool.Put(bp) // want `sync.Pool.Put\(bp\) without resetting bp first`
}

// A reset-named method call on the value counts.
func putMsgGood(m *msg) {
	m.resetForReuse()
	msgPool.Put(m)
}

// The reset may sit in an outer block of the same function.
func putMsgOuterReset(m *msg, ok bool) {
	m.resetForReuse()
	if ok {
		msgPool.Put(m)
	}
}

func putMsgBad(m *msg) {
	m.op = "stale" // touching a field is not a reset
	msgPool.Put(m) // want `sync.Pool.Put\(m\) without resetting m first`
}

// The clear builtin counts.
func putMapGood(v map[string]string) {
	clear(v)
	mapPool.Put(v)
}

// A reset-named helper taking the value counts.
func resetMap(v map[string]string) { clear(v) }

func putMapViaHelper(v map[string]string) {
	resetMap(v)
	mapPool.Put(v)
}

func putMapBad(v map[string]string) {
	mapPool.Put(v) // want `sync.Pool.Put\(v\) without resetting v first`
}

// Freshly constructed values carry no stale state: pre-warming is fine.
func prewarm() {
	b := make([]byte, 0, 64)
	bufPool.Put(&b)
	msgPool.Put(new(msg))
}

// A reset outside the closure does not cover a Put inside it: the
// closure can run long after the value was dirtied again.
func putInClosure(m *msg) func() {
	m.resetForReuse()
	return func() {
		msgPool.Put(m) // want `sync.Pool.Put\(m\) without resetting m first`
	}
}

// Put on anything that is not a sync.Pool is out of scope.
type store map[string]string

func (s store) Put(k, v string) { s[k] = v }

func useStore(s store) {
	s.Put("a", "b")
}
