// Package ctxpropagate is a golden-file fixture for the ctxpropagate
// analyzer: functions that already hold a context must not mint fresh
// root contexts or context-free requests.
package ctxpropagate

import (
	"context"
	"net/http"
	"time"
)

func process(ctx context.Context) error {
	_ = context.Background()                                               // want `context.Background\(\) inside a function that already holds a context`
	_ = context.TODO()                                                     // want `context.TODO\(\) inside a function that already holds a context`
	req, err := http.NewRequest(http.MethodGet, "http://example.org", nil) // want `http.NewRequest drops the caller's context`
	if err != nil {
		return err
	}
	_ = req
	return nil
}

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context.Background\(\) inside a function that already holds a context`
	_ = ctx
	_ = w
}

func closureInherits(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `context.Background\(\) inside a function that already holds a context`
	}
}

// Clean cases below: no findings expected.

func rootCaller() {
	// No inherited context: minting a root here is the correct thing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ctx
}

func detached(ctx context.Context) {
	// The sanctioned detachment: values flow, cancellation does not.
	comp, cancel := context.WithTimeout(context.WithoutCancel(ctx), time.Second)
	defer cancel()
	_ = comp
}

func threaded(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.org", nil)
	if err != nil {
		return err
	}
	_ = req
	return nil
}
