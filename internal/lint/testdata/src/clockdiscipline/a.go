// Package clockdiscipline is the golden fixture for the clockdiscipline
// analyzer: wall-clock reads and waits are findings, pure time
// arithmetic is not, and an explained ignore directive suppresses.
package clockdiscipline

import (
	"context"
	"time"
)

func reads() time.Time {
	return time.Now() // want `wall-clock time.Now in a clock-disciplined package`
}

func waits(ctx context.Context) {
	time.Sleep(time.Millisecond)    // want `wall-clock time.Sleep in a clock-disciplined package`
	t := time.NewTimer(time.Second) // want `wall-clock time.NewTimer in a clock-disciplined package`
	defer t.Stop()
	select {
	case <-t.C:
	case <-time.After(time.Second): // want `wall-clock time.After in a clock-disciplined package`
	case <-ctx.Done():
	}
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time.Since in a clock-disciplined package`
}

// storedValue leaks the wall clock behind a function value — still a
// finding, even though no call happens here.
var storedValue = time.Now // want `wall-clock time.Now in a clock-disciplined package`

type injectable struct {
	now func() time.Time
}

func defaulted() *injectable {
	//soclint:ignore clockdiscipline real-clock default behind an injectable hook, fixture for the sanctioned pattern
	return &injectable{now: time.Now}
}

// arithmetic-only uses of the time package are fine.
func pure() time.Duration {
	d := 3 * time.Second
	epoch := time.Unix(0, 0)
	_ = epoch.Add(d)
	return d.Round(time.Millisecond)
}
