//go:build ignore

// Gen_contracts regenerates the golden WSDL fixtures under
// testdata/contracts used by the contractcheck golden test. Run from
// internal/lint:
//
//	go run testdata/gen_contracts.go
//
// The Weather contract is deliberately different from what
// testdata/src/contractcheck/a.go registers — the drift IS the test —
// so do not regenerate it from the fixture source.
package main

import (
	"context"
	"log"
	"os"
	"path/filepath"

	"soc/internal/core"
	"soc/internal/wsdl"
)

func nop(_ context.Context, in core.Values) (core.Values, error) { return in, nil }

func main() {
	outDir := filepath.Join("testdata", "contracts")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Clock: exactly what the fixture source registers (the clean case).
	clock, err := core.NewService("Clock", "http://example.org/clock", "tells the time")
	if err != nil {
		log.Fatal(err)
	}
	clock.MustAddOperation(core.Operation{
		Name:    "Now",
		Output:  []core.Param{{Name: "unix", Type: core.Int}},
		Handler: nop,
	})

	// Weather: what the CONTRACT declares. The fixture source registers
	// Forecast instead of Observe and types Temp's output as int — three
	// deliberate drifts the golden test expects contractcheck to report.
	weather, err := core.NewService("Weather", "http://example.org/weather", "forecasts")
	if err != nil {
		log.Fatal(err)
	}
	weather.MustAddOperation(core.Operation{
		Name:    "Observe",
		Input:   []core.Param{{Name: "city", Type: core.String}},
		Output:  []core.Param{{Name: "report", Type: core.String}},
		Handler: nop,
	})
	weather.MustAddOperation(core.Operation{
		Name:    "Temp",
		Input:   []core.Param{{Name: "city", Type: core.String}},
		Output:  []core.Param{{Name: "celsius", Type: core.Float}},
		Handler: nop,
	})

	for _, svc := range []*core.Service{clock, weather} {
		doc, err := wsdl.Generate(svc, "http://localhost/services/"+svc.Name+"/soap")
		if err != nil {
			log.Fatalf("generating %s: %v", svc.Name, err)
		}
		path := filepath.Join(outDir, svc.Name+".wsdl")
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
}
