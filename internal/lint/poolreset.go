package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolReset enforces the pooling discipline of the hot-path message plane
// (DESIGN.md "Hot-path message plane"): every sync.Pool.Put site must
// reset the pooled value first, or a request's params can leak into the
// next request that Gets the same object. A reset is any of, in a
// statement preceding the Put within an enclosing block of the same
// function:
//
//   - the clear builtin applied to the value
//   - a method call on the value whose name contains "reset" or "clear"
//     (Reset, resetForReuse, ...)
//   - a function call whose name contains "reset" or "clear" taking the
//     value (or its address) as an argument
//   - an assignment to the value or through its pointer, which covers the
//     truncation idiom *bp = (*bp)[:0]
//
// Puts of non-identifier expressions (freshly constructed values, pool
// pre-warming) carry no stale state and are accepted.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc:  "requires every sync.Pool.Put site to reset the pooled value first",
	Run:  runPoolReset,
}

func runPoolReset(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(pass.Info, call)
			if !IsMethod(fn, "sync", "Pool", "Put") || len(call.Args) != 1 {
				return true
			}
			obj := putTarget(pass.Info, call.Args[0])
			if obj == nil {
				return true // fresh value: nothing retained to reset
			}
			if !resetPrecedes(pass, file, call, obj) {
				pass.Reportf(call.Pos(), "sync.Pool.Put(%s) without resetting %s first: clear/truncate it or call its reset method so stale state cannot leak into the next Get", obj.Name(), obj.Name())
			}
			return true
		})
	}
	return nil
}

// putTarget resolves the Put argument to the variable being pooled: an
// identifier, optionally dereferenced. Anything else — composite
// literals, calls, field selectors, and address-of expressions (the
// pre-warming idiom Put(&fresh)) — is treated as untracked.
func putTarget(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if se, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(se.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// sameObj reports whether e names obj, looking through parens, & and *
// (so resetHelper(&v) counts as touching v).
func sameObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ast.Unparen(ue.X)
	}
	if se, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(se.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// resetPrecedes reports whether some statement before the Put call, in
// any enclosing statement list up to the function boundary, resets obj.
func resetPrecedes(pass *Pass, file *ast.File, call *ast.CallExpr, obj types.Object) bool {
	path := enclosingPath(file, call)
	for i := len(path) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch n := path[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			// A closure may run long after surrounding statements did;
			// only resets inside the same function body count.
			return false
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		for _, st := range list {
			if st.End() <= call.Pos() && resetsObj(pass, st, obj) {
				return true
			}
		}
	}
	return false
}

// enclosingPath returns the chain of nodes from file down to target.
func enclosingPath(file *ast.File, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			path = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return path
}

// resetsObj reports whether st is a recognized reset of obj.
func resetsObj(pass *Pass, st ast.Stmt, obj types.Object) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		return callResets(pass, s.X, obj)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			e := ast.Unparen(lhs)
			if se, ok := e.(*ast.StarExpr); ok {
				e = ast.Unparen(se.X)
			}
			if id, ok := e.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				return true
			}
		}
	}
	return false
}

func callResets(pass *Pass, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "clear" && len(call.Args) == 1 && sameObj(pass.Info, call.Args[0], obj) {
			return true
		}
		if nameSaysReset(fun.Name) {
			for _, a := range call.Args {
				if sameObj(pass.Info, a, obj) {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if nameSaysReset(fun.Sel.Name) && sameObj(pass.Info, fun.X, obj) {
			return true
		}
	}
	return false
}

func nameSaysReset(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "reset") || strings.Contains(l, "clear")
}
