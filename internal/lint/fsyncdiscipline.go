package lint

import (
	"go/ast"
	"strings"
)

// FsyncDiscipline enforces the crash-safety discipline of the durable
// storage engine (DESIGN.md "Crash-safe durable storage"): in packages
// that persist state the stack promises to recover (Config.DurableScope
// — the WAL engine, the XML record store, registry persistence and the
// repository server), a file rename that publishes data must be preceded
// by an fsync, and the fsync-free conveniences are banned outright:
//
//   - os.WriteFile writes without syncing the file or its directory; a
//     crash can leave the path empty, partial or absent even after the
//     call returned. Use wal.WriteFileAtomic.
//   - os.Rename with no lexically preceding Sync call in the same
//     function publishes whatever happens to have reached the disk: the
//     classic rename-before-fsync bug that surfaces as a zero-length
//     file after power loss.
//
// Thin FS adapters that merely forward a rename (the caller owns the
// sync sequencing) carry //soclint:ignore directives explaining why.
var FsyncDiscipline = &Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "requires fsync before publishing renames and bans os.WriteFile in durability-scoped packages",
	Run:  runFsyncDiscipline,
}

func runFsyncDiscipline(pass *Pass) error {
	if !InScope(pass.Path, pass.Config.DurableScope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(pass.Info, call)
			switch {
			case IsPkgFunc(fn, "os", "WriteFile"):
				pass.Reportf(call.Pos(), "os.WriteFile in a durability-scoped package: nothing is fsynced, a crash can lose or tear the file after the call returned; use wal.WriteFileAtomic")
			case IsPkgFunc(fn, "os", "Rename"):
				if !syncPrecedes(file, call) {
					pass.Reportf(call.Pos(), "os.Rename without a preceding fsync: the rename publishes data that may not have reached the disk; Sync the file (and the directory) first, or use wal.WriteFileAtomic")
				}
			}
			return true
		})
	}
	return nil
}

// syncPrecedes reports whether any call to a function or method whose
// name contains "sync" (Sync, SyncDir, fsyncAll, ...) lexically precedes
// the rename inside its enclosing function. The check is deliberately
// lexical, not flow-sensitive: a Sync on any earlier line of the same
// function counts, because the repository idiom is a straight-line
// write → sync → rename sequence and a conditional sync would be its own
// bug.
func syncPrecedes(file *ast.File, rename *ast.CallExpr) bool {
	path := enclosingPath(file, rename)
	var body *ast.BlockStmt
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n.Pos() >= rename.Pos() {
			return false // at or past the rename: nothing here precedes it
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.End() > rename.Pos() {
			return true // not a call, or a call enclosing the rename
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "sync") {
			found = true
		}
		return !found
	})
	return found
}
