package lint

import (
	"go/types"

	"soc/internal/lint/flow"
)

// GoLeak demands a provable termination path for every `go` statement in
// the packages named by Config.GoLeakScope. A goroutine passes if any of
// these disciplines holds:
//
//   - WaitGroup pairing: the body (transitively, over synchronous calls)
//     calls sync.WaitGroup.Done — someone is joining it.
//   - Cancellation: the body transitively selects or receives on some
//     ctx.Done(), so cancelling the context unblocks it.
//   - Bounded body: every channel operation the body can reach is
//     provably non-blocking-forever — sends go to buffered channels or
//     channels something in the module receives from, receives come from
//     channels something sends to or closes, and condition-free loops
//     have a closed-channel escape. Unknown callees (stdlib, other
//     modules) are assumed to return; unresolvable channel expressions
//     are assumed fine. Both are under-approximations, documented in
//     DESIGN, that keep the rule usable without whole-program pointer
//     analysis.
//
// Additionally, inside Config.RequestPathScope, a `go` statement in a
// loop must be joined (WaitGroup pairing) or issued from
// reliability.Bulkhead — per-request unbounded fan-out is how hosts fall
// over under load, which is exactly what the bulkhead exists to prevent.
var GoLeak = &Analyzer{
	Name:  "goleak",
	Doc:   "every spawned goroutine needs a provable termination path; request-path loops must bound their fan-out",
	Tests: true,
	Flow:  true,
	Run:   runGoLeak,
}

func runGoLeak(pass *Pass) error {
	if len(pass.Config.GoLeakScope) == 0 {
		return nil
	}
	g := pass.FlowGraph()
	for _, site := range g.Spawns() {
		if !pass.InFiles(site.Pos) {
			continue // another package's pass owns this site
		}
		if !InScope(site.In.Pkg.Path, pass.Config.GoLeakScope) {
			continue
		}
		v := classifySpawn(g, site)
		if v.reason != "" {
			pass.Reportf(site.Pos, "goroutine has no provable termination path: %s (join it with a WaitGroup, select on ctx.Done, or bound its channel operations)", v.reason)
			continue
		}
		if site.InLoop && InScope(site.In.Pkg.Path, pass.Config.RequestPathScope) &&
			!v.joined && !isBulkheadFunc(site.In) {
			pass.Reportf(site.Pos, "request-path loop spawns an unjoined goroutine per iteration; join with a WaitGroup or route through reliability.Bulkhead")
		}
	}
	return nil
}

// spawnVerdict is the analysis result for one go statement.
type spawnVerdict struct {
	// joined is set when the WaitGroup discipline proved termination —
	// the one discipline that also bounds request-path fan-out.
	joined bool
	// reason is non-empty when no discipline applies.
	reason string
}

func classifySpawn(g *flow.Graph, site flow.SpawnSite) spawnVerdict {
	t := site.Target
	if t == nil {
		if site.Obj != nil {
			// Known callee outside the graph (stdlib or vendored):
			// assumed to return, like any other unknown callee.
			return spawnVerdict{}
		}
		return spawnVerdict{reason: "it runs an opaque function value whose body this analysis cannot see"}
	}
	if callsWGDone(g, t, map[*flow.Func]bool{}, 6) {
		return spawnVerdict{joined: true}
	}
	if channelJoined(t, site.In) {
		return spawnVerdict{joined: true}
	}
	if g.ReachesDoneSelect(t, 8) {
		return spawnVerdict{}
	}
	if reason := unboundedReason(g, t, map[*flow.Func]bool{}, 6); reason != "" {
		return spawnVerdict{reason: reason}
	}
	return spawnVerdict{}
}

// callsWGDone reports whether f transitively (static/deferred calls,
// nested literals) calls sync.WaitGroup.Done.
func callsWGDone(g *flow.Graph, f *flow.Func, visited map[*flow.Func]bool, depth int) bool {
	if f == nil || depth < 0 || visited[f] {
		return false
	}
	visited[f] = true
	for _, c := range f.Calls {
		if c.Obj != nil && IsMethod(c.Obj, "sync", "WaitGroup", "Done") {
			return true
		}
		if (c.Kind == flow.Static || c.Kind == flow.Deferred) && c.Callee != nil &&
			callsWGDone(g, c.Callee, visited, depth-1) {
			return true
		}
	}
	return false
}

// unboundedReason returns a human-readable reason the body can block
// forever, or "" when every reachable operation is provably bounded.
func unboundedReason(g *flow.Graph, f *flow.Func, visited map[*flow.Func]bool, depth int) string {
	if f == nil || depth < 0 || visited[f] {
		return ""
	}
	visited[f] = true
	if f.Summary.SelectsOnDone {
		return "" // cancellable from here on down
	}
	if len(f.Summary.InfiniteFor) > 0 && !hasClosedEscape(g, f) {
		return f.Name + " loops forever with no ctx.Done select or closed-channel escape"
	}
	for _, s := range f.Summary.Sends {
		if s.Chan.Zero() || s.NonBlocking || escapeClosed(g, s.EscapeChans) {
			continue // unresolved, select-with-default, or escapable
		}
		cf := g.Chan(s.Chan.Key)
		if cf == nil || cf.Buffered || len(cf.Recvs) > 0 || len(cf.Ranges) > 0 {
			continue
		}
		return "send on " + s.Chan.Name + " can block forever (unbuffered, and nothing in the module receives from it)"
	}
	for _, r := range f.Summary.Recvs {
		if r.Chan.Zero() || r.NonBlocking || escapeClosed(g, r.EscapeChans) {
			continue
		}
		cf := g.Chan(r.Chan.Key)
		if cf == nil || len(cf.Sends) > 0 || len(cf.Closes) > 0 {
			continue
		}
		return "receive on " + r.Chan.Name + " can block forever (nothing in the module sends to or closes it)"
	}
	for _, c := range f.Calls {
		if (c.Kind == flow.Static || c.Kind == flow.Deferred) && c.Callee != nil && c.Callee != f {
			if reason := unboundedReason(g, c.Callee, visited, depth-1); reason != "" {
				return reason
			}
		}
	}
	return ""
}

// channelJoined recognizes the result-funnel join: the spawned body sends
// its result on a channel the spawning function receives from, so the
// spawner drains its own fan-out (the errs-channel pattern of
// workflow.Parallel and eventbus.WaitAny). An approximation: the drain
// count is not checked, so stragglers must terminate by another
// discipline — which the bounded-body check already enforced for their
// sends (buffered or escapable).
func channelJoined(t, in *flow.Func) bool {
	if in == nil {
		return false
	}
	for _, s := range t.Summary.Sends {
		if s.Chan.Zero() {
			continue
		}
		for _, r := range in.Summary.Recvs {
			if r.Chan.Key == s.Chan.Key {
				return true
			}
		}
	}
	return false
}

// escapeClosed reports whether any sibling select case receives from a
// channel the module closes somewhere.
func escapeClosed(g *flow.Graph, escapes []flow.Class) bool {
	for _, e := range escapes {
		if cf := g.Chan(e.Key); cf != nil && len(cf.Closes) > 0 {
			return true
		}
	}
	return false
}

// hasClosedEscape reports a receive (or range) in f on a channel some
// module code closes — the quit-channel loop escape.
func hasClosedEscape(g *flow.Graph, f *flow.Func) bool {
	for _, r := range f.Summary.Recvs {
		if r.Chan.Zero() {
			continue
		}
		if cf := g.Chan(r.Chan.Key); cf != nil && len(cf.Closes) > 0 {
			return true
		}
	}
	return false
}

// isBulkheadFunc reports whether f is a method of reliability.Bulkhead —
// the sanctioned bounded worker pool for request-path fan-out.
func isBulkheadFunc(f *flow.Func) bool {
	if f.Obj == nil {
		return false
	}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamedType(sig.Recv().Type(), "soc/internal/reliability", "Bulkhead")
}
