package lint

import (
	"go/ast"
	"go/types"
)

// ClockDiscipline enforces the virtual-clock discipline of the
// dependability stack: packages whose behavior the deterministic
// simulation harness must control in virtual time (Config.ClockScope —
// reliability, respcache, faultinject) may not read or wait on the wall
// clock directly. Every timestamp, sleep, timer and ticker there must go
// through the vtime.Clock threaded via context (vtime.Now / vtime.Sleep
// / an injected clock), because one stray time.Now or time.NewTimer is
// exactly one site where a simulated run silently leaks real time and
// stops being reproducible. Sanctioned wall-clock sites — the real-clock
// defaults behind an injectable clock, and the health prober that is
// deliberately wall-clock-driven — carry //soclint:ignore directives
// explaining why.
var ClockDiscipline = &Analyzer{
	Name: "clockdiscipline",
	Doc:  "forbids direct wall-clock reads/waits (time.Now, time.Sleep, timers) in clock-disciplined packages; use vtime.Clock",
	Run:  runClockDiscipline,
}

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. Pure-arithmetic helpers (time.Duration, time.Unix,
// time.Parse, ...) are fine anywhere.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runClockDiscipline(pass *Pass) error {
	if !InScope(pass.Path, pass.Config.ClockScope) {
		return nil
	}
	// Every *use* of the named functions is a leak, not just direct
	// calls: `now = time.Now` stores the wall clock behind a function
	// value and defeats the discipline just as thoroughly as calling it.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in a clock-disciplined package breaks deterministic simulation; consult vtime.Clock (vtime.Now/vtime.Sleep or an injected clock)", fn.Name())
			return true
		})
	}
	return nil
}
