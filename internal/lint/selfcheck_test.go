package lint

import (
	"testing"
)

// TestSoclintSelfCheck asserts that the repository passes its own
// linter: every module package, checked with the default analyzer
// registry and policy, yields zero findings. This is the test-suite
// twin of `make lint` — a finding introduced anywhere in the module
// fails this test even if nobody runs the binary.
func TestSoclintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check typechecks the whole module (and the stdlib from source); skipped in -short")
	}
	loader := testLoader(t)
	runner := &Runner{Analyzers: DefaultAnalyzers(), Config: DefaultConfig(loader.ModuleDir)}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("listing module packages: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("module package walk found nothing")
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := runner.RunPackage(pkg)
		if err != nil {
			t.Fatalf("linting %s: %v", path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
