package lint

import (
	"testing"

	"soc/internal/lint/flow"
)

// TestSoclintSelfCheck asserts that the repository passes its own
// linter: every module package — test files and external test packages
// included, exactly the unit set `make lint` analyzes — checked with
// the default analyzer registry and policy yields zero findings. This
// is the test-suite twin of `make lint`: a finding introduced anywhere
// in the module fails this test even if nobody runs the binary.
func TestSoclintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check typechecks the whole module (and the stdlib from source); skipped in -short")
	}
	loader := testLoader(t)
	runner := &Runner{Analyzers: DefaultAnalyzers(), Config: DefaultConfig(loader.ModuleDir)}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("listing module packages: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("module package walk found nothing")
	}
	var units []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		units = append(units, pkg)
		xpkg, err := loader.ExternalTests(path)
		if err != nil {
			t.Fatalf("loading external tests of %s: %v", path, err)
		}
		if xpkg != nil {
			units = append(units, xpkg)
		}
	}
	// The interprocedural analyzers see the whole module at once, as in
	// the driver.
	runner.Flow = flow.Build(loader.FileSet(), flowPackagesOf(units))
	for _, pkg := range units {
		findings, err := runner.RunPackage(pkg)
		if err != nil {
			t.Fatalf("linting %s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

func flowPackagesOf(units []*Package) []*flow.Package {
	out := make([]*flow.Package, 0, len(units))
	for _, u := range units {
		out = append(out, u.FlowPackage())
	}
	return out
}
