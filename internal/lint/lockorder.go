package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"

	"soc/internal/lint/flow"
)

// LockOrder builds the module-wide lock-acquisition-order graph over the
// packages named by Config.LockOrderScope and reports every cycle in it:
// if one code path takes A then B while another takes B then A, two
// goroutines can block each other forever, and no test run is guaranteed
// to hit the interleaving. Edges come from two observations in the flow
// graph: a Lock site with another lock already held (same function), and
// a call made under a lock whose callee transitively acquires another
// lock (interprocedural, over static and deferred edges only — spawned
// goroutines do not inherit their spawner's locks).
//
// Approximations, spelled out: lock identity is per declared field or
// variable ("class"), so two instances of one type share a class —
// same-class edges are therefore kept only when the instance expressions
// match, which under-approximates aliased instances and over-approximates
// nothing. Dynamic and interface calls are not followed for ordering.
// Each strongly connected component is reported as its single shortest
// witness cycle; fix it and re-run to surface any remaining ones.
var LockOrder = &Analyzer{
	Name:  "lockorder",
	Doc:   "detects cycles in the global lock-acquisition-order graph (potential deadlocks)",
	Tests: true,
	Flow:  true,
	Run:   runLockOrder,
}

func runLockOrder(pass *Pass) error {
	if len(pass.Config.LockOrderScope) == 0 {
		return nil
	}
	g := pass.FlowGraph()
	scope := pass.Config.LockOrderScope
	cycles := g.Memo("lockorder.cycles", func() any {
		return g.LockCycles(func(pkgPath string) bool { return InScope(pkgPath, scope) })
	}).([]flow.LockCycle)
	for _, c := range cycles {
		anchor := c.Edges[0].HeldAt
		if !pass.InFiles(anchor) {
			continue // another package's pass owns this cycle's anchor
		}
		pass.Reportf(anchor, "%s", renderLockCycle(pass.Fset, c))
	}
	return nil
}

// renderLockCycle prints the witness path edge by edge, naming the actual
// mutexes: who holds what where, and which call chain acquires the next.
func renderLockCycle(fset *token.FileSet, c flow.LockCycle) string {
	names := make([]string, 0, len(c.Edges)+1)
	for _, e := range c.Edges {
		names = append(names, e.From.Name)
	}
	names = append(names, c.Edges[0].From.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "lock-order cycle (potential deadlock): %s", strings.Join(names, " -> "))
	for _, e := range c.Edges {
		fmt.Fprintf(&b, "; %s holds %s (%s) then acquires %s (%s",
			e.Fn.Name, e.From.Name, relPos(fset, e.HeldAt), e.To.Name, relPos(fset, e.AcqAt))
		if len(e.Via) > 0 {
			fmt.Fprintf(&b, " via %s", strings.Join(e.Via, " -> "))
		}
		b.WriteString(")")
	}
	return b.String()
}

// relPos renders a position compactly as base-filename:line.
func relPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
