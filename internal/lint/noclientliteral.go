package lint

import (
	"go/ast"
)

// NoClientLiteral forbids constructing an http.Client without a Timeout.
// A zero-timeout client waits forever on a stuck peer; every outbound
// path in this repository must either bound its requests (Timeout field)
// or route through host.ResilientClient, whose timeout stage bounds them
// for it. The check is syntactic over typechecked composite literals, so
// &http.Client{Jar: jar} is caught even though it "sets something".
var NoClientLiteral = &Analyzer{
	Name: "noclientliteral",
	Doc:  "requires http.Client literals to set Timeout (or route calls through host.ResilientClient)",
	Run:  runNoClientLiteral,
}

func runNoClientLiteral(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if !IsNamedType(t, "net/http", "Client") {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
						return true
					}
				}
			}
			pass.Reportf(lit.Pos(), "http.Client literal without Timeout: a stuck peer hangs this client forever; set Timeout or use host.ResilientClient")
			return true
		})
	}
	return nil
}
