package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soc/internal/lint/flow"
)

// Package is one parsed and typechecked module package.
type Package struct {
	// Path is the import path, Dir the directory holding the sources.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	// TestFiles are the package's _test.go files when the Loader was
	// asked to analyze tests; Info and Types then cover Files and
	// TestFiles together. For an external test package (package
	// foo_test), Files is empty and ExternalTest is set — Path still
	// names the tested package so scope policies apply unchanged.
	TestFiles    []*ast.File
	ExternalTest bool
	Types        *types.Package
	Info         *types.Info
}

// FlowPackage adapts the package for the interprocedural flow layer:
// the fact base covers sources and test files alike.
func (p *Package) FlowPackage() *flow.Package {
	files := append(append([]*ast.File(nil), p.Files...), p.TestFiles...)
	return &flow.Package{Path: p.Path, Files: files, Info: p.Info}
}

// Loader parses and typechecks packages of one module from source. It is
// built purely on go/parser + go/types: module-local imports are loaded
// recursively from the module directory, and standard-library imports go
// through go/importer's source importer (which reads GOROOT sources), so
// no compiled export data and no external tooling is required.
//
// A Loader caches every package it typechecks, so the cost of checking
// the standard library is paid once per Loader, not once per package.
type Loader struct {
	// ModuleDir is the absolute module root (the directory with go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// GoVersion is the language version declared in go.mod ("go1.22").
	GoVersion string
	// Tests makes Load return packages whose _test.go files are parsed
	// and typechecked alongside the sources. The test-inclusive check
	// is a SEPARATE pass from the import-resolution check: importing
	// packages always see the test-free package, so a test file
	// importing a package that imports its own package does not fake
	// an import cycle. LoadDir ignores this knob (fixtures are
	// test-free by construction).
	Tests bool

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	tpkgs   map[string]*Package // test-inclusive analysis variants
	xpkgs   map[string]*Package // external (package foo_test) packages
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleDir, reading the module
// path and language version from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readGoMod(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		GoVersion:  goVersion,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		tpkgs:      map[string]*Package{},
		xpkgs:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok && modPath == "" {
			modPath = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok && goVersion == "" {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module line in %s", path)
	}
	return modPath, goVersion, nil
}

// Import implements types.Importer over the hybrid resolution scheme.
// Importers always resolve to the test-free check of a package, even
// when the Loader analyzes tests — see the Tests field.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.local(path) {
		pkg, err := l.LoadDir(l.dirFor(path), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// FileSet returns the loader's shared token.FileSet — the one coordinate
// system every loaded package and flow graph position lives in.
func (l *Loader) FileSet() *token.FileSet { return l.fset }

func (l *Loader) local(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load typechecks the module-local package with the given import path.
// When Tests is set, the returned package's Info and Types additionally
// cover its in-package _test.go files (a separate analysis check; the
// package other code imports stays test-free).
func (l *Loader) Load(path string) (*Package, error) {
	if !l.local(path) {
		return nil, fmt.Errorf("lint: %q is not in module %s", path, l.ModulePath)
	}
	if !l.Tests {
		return l.LoadDir(l.dirFor(path), path)
	}
	return l.loadWithTests(path)
}

// loadWithTests builds the test-inclusive analysis variant of path.
func (l *Loader) loadWithTests(path string) (*Package, error) {
	if pkg, ok := l.tpkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	inTests, _, err := l.parseTestFiles(dir)
	if err != nil {
		return nil, err
	}
	base, baseErr := l.LoadDir(dir, path)
	if baseErr != nil {
		// A test-only directory (the module root's integration suite):
		// the "package" is nothing but its in-package test files.
		if len(inTests) == 0 {
			return nil, baseErr
		}
		var mine []*ast.File
		for _, f := range inTests {
			if !strings.HasSuffix(f.Name.Name, "_test") {
				mine = append(mine, f)
			}
		}
		if len(mine) == 0 {
			return nil, baseErr
		}
		pkg, err := l.checkFiles(path, dir, nil, mine)
		if err != nil {
			return nil, err
		}
		l.tpkgs[path] = pkg
		return pkg, nil
	}
	// Keep only test files matching the package clause; foo_test files
	// belong to the external test package (see ExternalTests).
	var mine []*ast.File
	for _, f := range inTests {
		if f.Name.Name == base.Types.Name() {
			mine = append(mine, f)
		}
	}
	if len(mine) == 0 {
		l.tpkgs[path] = base
		return base, nil
	}
	pkg, err := l.checkFiles(path, dir, base.Files, mine)
	if err != nil {
		return nil, err
	}
	l.tpkgs[path] = pkg
	return pkg, nil
}

// ExternalTests returns the external test package (package foo_test) of
// path, or nil when the directory has none. The returned package keeps
// Path == path so scope policies treat it as part of the tested package.
func (l *Loader) ExternalTests(path string) (*Package, error) {
	if pkg, ok := l.xpkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	inTests, _, err := l.parseTestFiles(dir)
	if err != nil {
		return nil, err
	}
	var ext []*ast.File
	for _, f := range inTests {
		if strings.HasSuffix(f.Name.Name, "_test") {
			ext = append(ext, f)
		}
	}
	if len(ext) == 0 {
		l.xpkgs[path] = nil
		return nil, nil
	}
	// Warm the tested package so imports of it resolve from cache; a
	// test-only directory has none, which is fine — the external files
	// then simply cannot import it.
	_, _ = l.LoadDir(dir, path)
	pkg, err := l.checkFiles(path, dir, nil, ext)
	if err != nil {
		return nil, err
	}
	pkg.ExternalTest = true
	l.xpkgs[path] = pkg
	return pkg, nil
}

// parseTestFiles parses every _test.go file of dir, returning the files
// and their names.
func (l *Loader) parseTestFiles(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	return files, names, nil
}

// checkFiles typechecks sources+tests as one fresh package under path.
func (l *Loader) checkFiles(path, dir string, sources, tests []*ast.File) (*Package, error) {
	all := append(append([]*ast.File(nil), sources...), tests...)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := conf.Check(path, l.fset, all, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s (with tests): %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: sources, TestFiles: tests, Types: tpkg, Info: info}, nil
}

// LoadDir typechecks the package in dir under the given import path. It
// is the entry point for both module packages and testdata fixtures.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// hasTestSources reports whether dir holds any _test.go file.
func hasTestSources(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// ModulePackages walks the module tree and returns the import paths of
// every buildable package, skipping testdata, vendor, hidden and
// underscore directories — the same set `go build ./...` would see (plus
// test-only directories when Tests is set).
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			// Test-only directories (the module root's integration suite)
			// count as packages when the loader analyzes tests.
			if !l.Tests || !hasTestSources(p) {
				return nil
			}
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
