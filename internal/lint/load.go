package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and typechecked module package.
type Package struct {
	// Path is the import path, Dir the directory holding the sources.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and typechecks packages of one module from source. It is
// built purely on go/parser + go/types: module-local imports are loaded
// recursively from the module directory, and standard-library imports go
// through go/importer's source importer (which reads GOROOT sources), so
// no compiled export data and no external tooling is required.
//
// A Loader caches every package it typechecks, so the cost of checking
// the standard library is paid once per Loader, not once per package.
type Loader struct {
	// ModuleDir is the absolute module root (the directory with go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// GoVersion is the language version declared in go.mod ("go1.22").
	GoVersion string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at moduleDir, reading the module
// path and language version from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readGoMod(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		GoVersion:  goVersion,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", fmt.Errorf("lint: reading %s: %w", path, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok && modPath == "" {
			modPath = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok && goVersion == "" {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module line in %s", path)
	}
	return modPath, goVersion, nil
}

// Import implements types.Importer over the hybrid resolution scheme.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.local(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) local(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load typechecks the module-local package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if !l.local(path) {
		return nil, fmt.Errorf("lint: %q is not in module %s", path, l.ModulePath)
	}
	return l.LoadDir(l.dirFor(path), path)
}

// LoadDir typechecks the package in dir under the given import path. It
// is the entry point for both module packages and testdata fixtures.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, GoVersion: l.GoVersion}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module tree and returns the import paths of
// every buildable package, skipping testdata, vendor, hidden and
// underscore directories — the same set `go build ./...` would see.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
