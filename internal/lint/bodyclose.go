package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BodyClose verifies that every *http.Response obtained from a net/http
// client call has its Body closed (or demonstrably escapes to code that
// can close it) within the function that made the call. Unclosed bodies
// leak the underlying connection, which under the crawler's and resilient
// client's request volumes exhausts the transport's connection pool —
// §V's "services are often offline" failure mode self-inflicted.
//
// The analysis is per-function and syntactic over the typechecked AST:
// a response is "handled" when the function contains resp.Body.Close()
// (deferred or direct), returns resp, or passes resp (not just a field
// of it) to another function, stores it in a structure, or sends it on a
// channel. Discarding the response entirely (blank identifier or bare
// call statement) is always a finding.
var BodyClose = &Analyzer{
	Name: "bodyclose",
	Doc:  "requires http.Response bodies from client calls to be closed on all paths",
	Run:  runBodyClose,
}

func runBodyClose(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBodyClose(pass, fn.Body)
				}
			case *ast.FuncLit:
				// Each function literal is its own unit: collection is
				// shallow, so the enclosing function's walk does not
				// double-report what this one owns.
				checkBodyClose(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// respCall reports whether call returns an *http.Response from a net/http
// client entry point.
func respCall(info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Do", "Get", "Post", "PostForm", "Head":
	default:
		return false
	}
	if IsMethod(fn, "net/http", "Client", fn.Name()) {
		return true
	}
	return IsPkgFunc(fn, "net/http", fn.Name())
}

func checkBodyClose(pass *Pass, body *ast.BlockStmt) {
	// Collect the response-producing calls assigned in this function
	// (not inside nested function literals — those get their own check).
	type respVar struct {
		call *ast.CallExpr
		obj  types.Object // nil when discarded
	}
	var resps []respVar
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !respCall(pass.Info, call) {
					continue
				}
				// resp, err := c.Do(req): the response is Lhs[0] when the
				// call is the sole RHS; otherwise position-matched.
				idx := 0
				if len(n.Rhs) == len(n.Lhs) {
					idx = i
				}
				if idx >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[idx].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(call.Pos(), "response body never closed: result of %s discarded", callName(pass.Info, call))
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				resps = append(resps, respVar{call: call, obj: obj})
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && respCall(pass.Info, call) {
				pass.Reportf(call.Pos(), "response body never closed: result of %s discarded", callName(pass.Info, call))
			}
		}
	})

	for _, rv := range resps {
		if rv.obj == nil || respHandled(pass, body, rv.obj) {
			continue
		}
		pass.Reportf(rv.call.Pos(), "response body never closed: call %s then defer resp.Body.Close() (or return/hand off the response)", callName(pass.Info, rv.call))
	}
}

// respHandled scans the whole function body (including nested closures,
// since a deferred closure may close the body) for a close or escape of
// the response object.
func respHandled(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// resp.Body.Close()
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
					if usesObj(pass, inner.X, obj) {
						handled = true
						return false
					}
				}
			}
			// resp passed whole to another function.
			for _, arg := range n.Args {
				if usesObj(pass, arg, obj) {
					handled = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObj(pass, res, obj) {
					handled = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesObj(pass, n.Value, obj) {
				handled = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if usesObj(pass, elt, obj) {
					handled = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Stored somewhere reachable (field, map, other variable).
			for _, rhs := range n.Rhs {
				if usesObj(pass, rhs, obj) {
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}

// usesObj reports whether expr is (after unwrapping parens and a single
// address-of) exactly the identifier bound to obj.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := CalleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + sig.Recv().Type().String() + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// inspectShallow walks n without descending into function literals.
func inspectShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
