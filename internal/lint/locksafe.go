package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe enforces two concurrency disciplines:
//
//  1. No copying of values whose type (transitively) contains a
//     sync.Mutex, sync.RWMutex or sync.WaitGroup — by-value parameters,
//     receivers, plain assignments from existing values, and range
//     clauses are all checked. A copied lock guards nothing.
//
//  2. Inside the packages named by Config.LockBlockScope, no mutex may
//     be held across a blocking operation: time.Sleep, a channel send or
//     receive, a select without a default clause, sync.WaitGroup.Wait,
//     or a net/http client call. Holding a lock across any of these
//     turns one slow or stuck peer into a package-wide stall — the
//     convoy the reliability layer's bulkheads exist to prevent.
//     sync.Cond.Wait is exempt (its contract requires the lock), as are
//     non-blocking selects and operations inside `go` statements.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "forbids copying lock-bearing values and holding locks across blocking operations",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockCopyFunc(pass, n.Recv, n.Type)
				if n.Body != nil && InScope(pass.Path, pass.Config.LockBlockScope) {
					checkLockBlocking(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				checkLockCopyFunc(pass, nil, n.Type)
				if InScope(pass.Path, pass.Config.LockBlockScope) {
					checkLockBlocking(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// ---- part 1: lock copying ----

// containsLock reports whether t transitively contains a sync lock.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return true
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	return containsLock(t, map[types.Type]bool{})
}

func checkLockCopyFunc(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if lockBearing(t) {
				pass.Reportf(f.Type.Pos(), "%s passes a lock by value (%s contains a sync lock); use a pointer", what, t)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
}

// copySource reports whether expr denotes an existing value whose
// assignment copies it (as opposed to a freshly constructed one).
func copySource(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

func checkLockCopyAssign(pass *Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		if !copySource(rhs) {
			continue
		}
		t := pass.Info.TypeOf(rhs)
		if lockBearing(t) {
			pass.Reportf(n.Lhs[i].Pos(), "assignment copies a lock-bearing value of type %s; use a pointer", t)
		}
	}
}

func checkLockCopyRange(pass *Pass, n *ast.RangeStmt) {
	for _, v := range []ast.Expr{n.Key, n.Value} {
		if v == nil {
			continue
		}
		if id, ok := v.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := pass.Info.TypeOf(v)
		if lockBearing(t) {
			pass.Reportf(v.Pos(), "range clause copies a lock-bearing value of type %s; range over indices or pointers", t)
		}
	}
}

// ---- part 2: lock held across blocking operation ----

// mutexMethod returns the receiver expression when call is a
// Lock/RLock/Unlock/RUnlock on sync.Mutex or sync.RWMutex (including
// promoted methods of embedding types), else "".
func mutexMethod(pass *Pass, call *ast.CallExpr) (recv string, name string) {
	fn := CalleeFunc(pass.Info, call)
	if fn == nil {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	if !IsMethod(fn, "sync", "Mutex", fn.Name()) && !IsMethod(fn, "sync", "RWMutex", fn.Name()) {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// checkLockBlocking linearly scans a statement list tracking which
// mutexes are held, and reports blocking operations encountered while
// any lock is held. Nested control-flow blocks inherit a copy of the
// held set; function literals start fresh (they run later).
func checkLockBlocking(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	copyHeld := func() map[string]token.Pos {
		c := make(map[string]token.Pos, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if recv, name := mutexMethod(pass, call); recv != "" {
					switch name {
					case "Lock", "RLock":
						held[recv] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
			reportBlocking(pass, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end —
			// exactly the state we are tracking, so nothing changes.
			// Other deferred work runs after the scan's horizon.
		case *ast.GoStmt:
			// The goroutine body runs concurrently on its own stack.
			// Its argument expressions are evaluated now, though.
			for _, arg := range s.Call.Args {
				reportBlocking(pass, arg, held)
			}
		case *ast.SendStmt:
			reportHeld(pass, s.Pos(), held, "channel send")
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reportHeld(pass, s.Pos(), held, "blocking select")
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkLockBlocking(pass, cc.Body, copyHeld())
				}
			}
		case *ast.IfStmt:
			reportBlocking(pass, s.Cond, held)
			checkLockBlocking(pass, s.Body.List, copyHeld())
			if s.Else != nil {
				checkLockBlocking(pass, []ast.Stmt{s.Else}, copyHeld())
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				reportBlocking(pass, s.Cond, held)
			}
			checkLockBlocking(pass, s.Body.List, copyHeld())
		case *ast.RangeStmt:
			reportBlocking(pass, s.X, held)
			checkLockBlocking(pass, s.Body.List, copyHeld())
		case *ast.BlockStmt:
			checkLockBlocking(pass, s.List, held)
		case *ast.SwitchStmt:
			if s.Tag != nil {
				reportBlocking(pass, s.Tag, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlocking(pass, cc.Body, copyHeld())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlocking(pass, cc.Body, copyHeld())
				}
			}
		default:
			reportBlocking(pass, stmt, held)
		}
	}
}

// reportBlocking inspects one statement or expression (not descending
// into function literals) for blocking operations while locks are held.
func reportBlocking(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportHeld(pass, n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if what := blockingCall(pass, n); what != "" {
				reportHeld(pass, n.Pos(), held, what)
			}
		}
		return true
	})
}

func blockingCall(pass *Pass, call *ast.CallExpr) string {
	fn := CalleeFunc(pass.Info, call)
	if fn == nil {
		return ""
	}
	switch {
	case IsPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep"
	case IsMethod(fn, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait"
	case IsMethod(fn, "net/http", "Client", fn.Name()) &&
		(fn.Name() == "Do" || fn.Name() == "Get" || fn.Name() == "Post" || fn.Name() == "PostForm" || fn.Name() == "Head"):
		return "http.Client." + fn.Name()
	case IsPkgFunc(fn, "net", "Dial"), IsPkgFunc(fn, "net", "DialTimeout"):
		return "net." + fn.Name()
	}
	return ""
}

func reportHeld(pass *Pass, pos token.Pos, held map[string]token.Pos, what string) {
	for recv := range held {
		pass.Reportf(pos, "%s while holding %s; release the lock first (one stuck peer stalls every caller)", what, recv)
	}
}
