package lint

import (
	"go/ast"
	"go/types"
)

// ErrDiscard forbids silently dropping errors in service and handler
// code (the packages listed in Config.ErrDiscardScope). Two shapes are
// findings:
//
//   - a bare call statement whose callee returns an error among its
//     results (`f(x)` where f returns error) — the caller cannot even
//     know the operation failed;
//   - an assignment discarding every result of a call that returns an
//     error (`_ = f(x)`, `_, _ = g(x)`).
//
// Idiomatic, genuinely-uninformative errors are exempt: deferred and
// `go` calls, Close methods, the fmt print family, and best-effort
// writes whose destination is an http.ResponseWriter that has already
// committed its status (including io.Copy draining into io.Discard).
// Anything else that is deliberately dropped must carry an
// //soclint:ignore errdiscard directive stating why.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "forbids discarding errors in service/handler code",
	Run:  runErrDiscard,
}

func runErrDiscard(pass *Pass) error {
	if !InScope(pass.Path, pass.Config.ErrDiscardScope) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok || !returnsError(pass, call) || exemptDiscard(pass, call) {
					return true
				}
				pass.Reportf(n.Pos(), "result of %s includes an error that is silently dropped; handle it, assign it, or add a //soclint:ignore with the reason", callName(pass.Info, call))
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) || len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || !returnsError(pass, call) || exemptDiscard(pass, call) {
					return true
				}
				pass.Reportf(n.Pos(), "error from %s discarded with blank assignment; handle it or add a //soclint:ignore with the reason", callName(pass.Info, call))
			}
			return true
		})
	}
	return nil
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// returnsError reports whether any result of call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exemptDiscard encodes the idiomatic exceptions listed in the analyzer
// doc: errors no caller can act on.
func exemptDiscard(pass *Pass, call *ast.CallExpr) bool {
	fn := CalleeFunc(pass.Info, call)
	if fn != nil {
		// Close errors on teardown paths are conventionally dropped.
		if fn.Name() == "Close" {
			return true
		}
		// Writers documented to never return an error: strings.Builder,
		// bytes.Buffer, and hash.Hash ("Write ... never returns an
		// error"). Their error results exist only to satisfy io.Writer.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if IsNamedType(recv, "strings", "Builder") ||
				IsNamedType(recv, "bytes", "Buffer") ||
				IsNamedType(recv, "hash", "Hash") {
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv := pass.Info.TypeOf(sel.X)
			if IsNamedType(recv, "strings", "Builder") ||
				IsNamedType(recv, "bytes", "Buffer") ||
				IsNamedType(recv, "hash", "Hash") {
				return true
			}
		}
		// The fmt print family returns (n, err) nobody checks.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return true
		}
		// Draining a response body: io.Copy(io.Discard, ...).
		if IsPkgFunc(fn, "io", "Copy") && len(call.Args) > 0 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if obj, ok := pass.Info.Uses[sel.Sel]; ok && obj.Pkg() != nil &&
					obj.Pkg().Path() == "io" && obj.Name() == "Discard" {
					return true
				}
			}
		}
		// Best-effort writes into an already-committed HTTP response:
		// the receiver or an argument is an http.ResponseWriter, and a
		// write failure there has no recovery.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if isResponseWriter(sig.Recv().Type()) {
				return true
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isResponseWriter(pass.Info.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if isResponseWriter(pass.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

func isResponseWriter(t types.Type) bool {
	return t != nil && IsNamedType(t, "net/http", "ResponseWriter")
}
