package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"soc/internal/lint/flow"
)

// writePackage materializes source files into a temp dir and loads them
// under a unique synthetic module-local import path, so each mutation
// variant gets its own cache entry in the shared loader.
func writePackage(t *testing.T, name string, files map[string]string) *Package {
	t.Helper()
	dir := t.TempDir()
	for fname, src := range files {
		if err := os.WriteFile(filepath.Join(dir, fname), []byte(src), 0o644); err != nil {
			t.Fatalf("writing %s: %v", fname, err)
		}
	}
	path := "soc/internal/lint/mutation/" + name
	pkg, err := testLoader(t).LoadDir(dir, path)
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	return pkg
}

// runOn runs one analyzer over one package with the given config.
func runOn(t *testing.T, name string, pkg *Package, cfg Config) []Finding {
	t.Helper()
	a, ok := AnalyzerByName(name)
	if !ok {
		t.Fatalf("no analyzer named %q", name)
	}
	runner := &Runner{Analyzers: []*Analyzer{a}, Config: cfg}
	findings, err := runner.RunPackage(pkg)
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	return findings
}

// TestMutationLockOrder proves detection the hard way: a clean package
// with consistent lock nesting yields nothing, and the same package
// with one inverted acquisition yields a cycle finding whose witness
// names the actual mutexes involved.
func TestMutationLockOrder(t *testing.T) {
	const clean = `package lockorderm

import "sync"

type S struct{ a, b sync.Mutex }

func (s *S) one() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) two() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
`
	// The mutation: two() now takes b before a.
	mutated := strings.Replace(clean,
		"func (s *S) two() {\n\ts.a.Lock()\n\ts.b.Lock()",
		"func (s *S) two() {\n\ts.b.Lock()\n\ts.a.Lock()", 1)
	if mutated == clean {
		t.Fatal("mutation did not apply")
	}

	cfg := func(p string) Config { return Config{LockOrderScope: []string{p}} }

	pkg := writePackage(t, "lockorder_clean", map[string]string{"a.go": clean})
	if fs := runOn(t, "lockorder", pkg, cfg(pkg.Path)); len(fs) != 0 {
		t.Errorf("clean variant produced findings: %v", fs)
	}

	pkg = writePackage(t, "lockorder_mutated", map[string]string{"a.go": mutated})
	fs := runOn(t, "lockorder", pkg, cfg(pkg.Path))
	if len(fs) == 0 {
		t.Fatal("lock-order inversion went undetected")
	}
	msg := fs[0].Message
	if !strings.Contains(msg, "lock-order cycle") ||
		!strings.Contains(msg, "lockorderm.S.a") || !strings.Contains(msg, "lockorderm.S.b") {
		t.Errorf("cycle witness does not name the mutexes: %q", msg)
	}
}

// TestMutationGoLeak: a goroutine joined by draining its result channel
// is fine; deleting the drain leaves it parked forever and must be
// flagged.
func TestMutationGoLeak(t *testing.T) {
	const clean = `package goleakm

func run() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return <-ch
}
`
	mutated := strings.Replace(clean, "return <-ch", "return 0", 1)
	if mutated == clean {
		t.Fatal("mutation did not apply")
	}

	cfg := func(p string) Config { return Config{GoLeakScope: []string{p}} }

	pkg := writePackage(t, "goleak_clean", map[string]string{"a.go": clean})
	if fs := runOn(t, "goleak", pkg, cfg(pkg.Path)); len(fs) != 0 {
		t.Errorf("clean variant produced findings: %v", fs)
	}

	pkg = writePackage(t, "goleak_mutated", map[string]string{"a.go": mutated})
	fs := runOn(t, "goleak", pkg, cfg(pkg.Path))
	if len(fs) == 0 {
		t.Fatal("unwaited goroutine went undetected")
	}
	if !strings.Contains(fs[0].Message, "no provable termination path") {
		t.Errorf("unexpected message: %q", fs[0].Message)
	}
}

// TestMutationAtomic: consistent atomic access is fine; changing one
// accessor to a plain read mixes the disciplines and must be flagged.
func TestMutationAtomic(t *testing.T) {
	const clean = `package atomicm

import "sync/atomic"

type C struct{ n int64 }

func (c *C) inc() { atomic.AddInt64(&c.n, 1) }

func (c *C) get() int64 { return atomic.LoadInt64(&c.n) }
`
	mutated := strings.Replace(clean, "return atomic.LoadInt64(&c.n)", "return c.n", 1)
	if mutated == clean {
		t.Fatal("mutation did not apply")
	}

	cfg := func(p string) Config { return Config{AtomicScope: []string{p}} }

	pkg := writePackage(t, "atomic_clean", map[string]string{"a.go": clean})
	if fs := runOn(t, "atomicdiscipline", pkg, cfg(pkg.Path)); len(fs) != 0 {
		t.Errorf("clean variant produced findings: %v", fs)
	}

	pkg = writePackage(t, "atomic_mutated", map[string]string{"a.go": mutated})
	fs := runOn(t, "atomicdiscipline", pkg, cfg(pkg.Path))
	if len(fs) == 0 {
		t.Fatal("mixed atomic/plain access went undetected")
	}
	if !strings.Contains(fs[0].Message, "plain access of atomicm.C.n") {
		t.Errorf("unexpected message: %q", fs[0].Message)
	}
}

// TestTestFileLoading covers the loader's test-file surface: in-package
// _test.go files join the analysis variant, a test-only directory (the
// module root's integration suite) loads, and external foo_test
// packages come back as their own units under the real import path.
func TestTestFileLoading(t *testing.T) {
	loader := testLoader(t)

	pkg, err := loader.Load("soc/internal/wal")
	if err != nil {
		t.Fatalf("loading soc/internal/wal: %v", err)
	}
	if len(pkg.TestFiles) == 0 {
		t.Error("soc/internal/wal: no test files in the analysis variant")
	}
	if len(pkg.Files) == 0 {
		t.Error("soc/internal/wal: sources missing from the analysis variant")
	}

	root, err := loader.Load("soc")
	if err != nil {
		t.Fatalf("loading test-only module root: %v", err)
	}
	if len(root.Files) != 0 || len(root.TestFiles) == 0 {
		t.Errorf("module root: got %d source files and %d test files, want 0 and >0",
			len(root.Files), len(root.TestFiles))
	}

	xpkg, err := loader.ExternalTests("soc/internal/parallel")
	if err != nil {
		t.Fatalf("external tests of soc/internal/parallel: %v", err)
	}
	if xpkg == nil {
		t.Fatal("soc/internal/parallel has an example_test.go but no external test unit")
	}
	if !xpkg.ExternalTest || xpkg.Path != "soc/internal/parallel" {
		t.Errorf("external unit: ExternalTest=%v Path=%q", xpkg.ExternalTest, xpkg.Path)
	}
	if xpkg.Types.Name() != "parallel_test" {
		t.Errorf("external unit package name = %q, want parallel_test", xpkg.Types.Name())
	}
}

// TestNoTestAnalyzersKnob: the goleaktests fixture's leak lives in its
// _test.go file, so goleak flags it by default and stays silent when
// the knob excludes test files from that analyzer.
func TestNoTestAnalyzersKnob(t *testing.T) {
	loader := testLoader(t)
	path := "soc/internal/lint/testdata/src/goleaktests"
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkg.TestFiles) == 0 {
		t.Fatal("fixture's _test.go was not loaded")
	}

	fs := runOn(t, "goleak", pkg, Config{GoLeakScope: []string{path}})
	if len(fs) == 0 {
		t.Fatal("leak in _test.go went undetected with test analysis on")
	}
	if !strings.HasSuffix(fs[0].Pos.Filename, "_test.go") {
		t.Errorf("finding not in a test file: %s", fs[0])
	}

	fs = runOn(t, "goleak", pkg, Config{
		GoLeakScope:     []string{path},
		NoTestAnalyzers: []string{"goleak"},
	})
	if len(fs) != 0 {
		t.Errorf("NoTestAnalyzers did not exclude test files: %v", fs)
	}
}

// TestRuntimeBudget asserts a full-module soclint run — loading from a
// cold loader, building the flow graph, running every analyzer over
// every unit — finishes inside the budget, so interprocedural analysis
// cannot quietly turn `make lint` into a coffee break. Override the
// budget with SOCLINT_BUDGET (a time.ParseDuration string) on slow
// machines.
func TestRuntimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis; skipped in -short")
	}
	budget := 90 * time.Second
	if s := os.Getenv("SOCLINT_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad SOCLINT_BUDGET %q: %v", s, err)
		}
		budget = d
	}

	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	start := time.Now()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.Tests = true
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("listing module packages: %v", err)
	}
	var units []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		units = append(units, pkg)
		if xpkg, err := loader.ExternalTests(path); err != nil {
			t.Fatalf("external tests of %s: %v", path, err)
		} else if xpkg != nil {
			units = append(units, xpkg)
		}
	}
	runner := &Runner{Analyzers: DefaultAnalyzers(), Config: DefaultConfig(root)}
	runner.Flow = flow.Build(loader.FileSet(), flowPackagesOf(units))
	for _, pkg := range units {
		if _, err := runner.RunPackage(pkg); err != nil {
			t.Fatalf("linting %s: %v", pkg.Path, err)
		}
	}
	elapsed := time.Since(start)
	t.Logf("full-module run: %d units in %s (budget %s)", len(units), elapsed.Round(time.Millisecond), budget)
	if elapsed > budget {
		t.Errorf("full-module analysis took %s, over the %s budget", elapsed, budget)
	}
}
