package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func addService(t *testing.T) *Service {
	t.Helper()
	svc, err := NewService("Calc", "http://soc.example/calc", "arithmetic")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(Operation{
		Name:   "Add",
		Doc:    "adds two integers",
		Input:  []Param{{Name: "a", Type: Int}, {Name: "b", Type: Int}},
		Output: []Param{{Name: "sum", Type: Int}},
		Handler: func(_ context.Context, in Values) (Values, error) {
			return Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService("", "ns", ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewService("9bad", "ns", ""); err == nil {
		t.Error("bad identifier accepted")
	}
	if _, err := NewService("Ok", "", ""); err == nil {
		t.Error("empty namespace accepted")
	}
}

func TestAddOperationValidation(t *testing.T) {
	svc, _ := NewService("S", "ns", "")
	h := func(context.Context, Values) (Values, error) { return nil, nil }
	cases := []struct {
		name string
		op   Operation
	}{
		{"bad name", Operation{Name: "1op", Handler: h}},
		{"nil handler", Operation{Name: "Op"}},
		{"bad param name", Operation{Name: "Op", Handler: h, Input: []Param{{Name: "bad-name", Type: String}}}},
		{"dup param", Operation{Name: "Op", Handler: h, Input: []Param{{Name: "a", Type: String}, {Name: "a", Type: Int}}}},
		{"bad type", Operation{Name: "Op", Handler: h, Input: []Param{{Name: "a", Type: "blob"}}}},
	}
	for _, c := range cases {
		if err := svc.AddOperation(c.op); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if err := svc.AddOperation(Operation{Name: "Op", Handler: h}); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
	if err := svc.AddOperation(Operation{Name: "Op", Handler: h}); err == nil {
		t.Error("duplicate op accepted")
	}
}

func TestInvoke(t *testing.T) {
	svc := addService(t)
	out, err := svc.Invoke(context.Background(), "Add", Values{"a": int64(2), "b": int64(3)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if out.Int("sum") != 5 {
		t.Errorf("sum = %d", out.Int("sum"))
	}
}

func TestInvokeCoercesStringsAndFloats(t *testing.T) {
	svc := addService(t)
	// Wire formats: strings (SOAP) and float64 (JSON).
	out, err := svc.Invoke(context.Background(), "Add", Values{"a": "40", "b": float64(2)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if out.Int("sum") != 42 {
		t.Errorf("sum = %d", out.Int("sum"))
	}
}

func TestInvokeErrors(t *testing.T) {
	svc := addService(t)
	ctx := context.Background()
	if _, err := svc.Invoke(ctx, "Missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing op: %v", err)
	}
	if _, err := svc.Invoke(ctx, "Add", Values{"a": int64(1)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("missing param: %v", err)
	}
	if _, err := svc.Invoke(ctx, "Add", Values{"a": int64(1), "b": int64(2), "c": int64(3)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("extra param: %v", err)
	}
	if _, err := svc.Invoke(ctx, "Add", Values{"a": "NaN", "b": int64(2)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("uncoercible param: %v", err)
	}
}

func TestInvokeOptionalParams(t *testing.T) {
	svc, _ := NewService("Greeter", "ns", "")
	svc.MustAddOperation(Operation{
		Name:   "Greet",
		Input:  []Param{{Name: "name", Type: String}, {Name: "loud", Type: Bool, Optional: true}},
		Output: []Param{{Name: "greeting", Type: String}},
		Handler: func(_ context.Context, in Values) (Values, error) {
			g := "hello " + in.Str("name")
			if in.Bool("loud") {
				g = strings.ToUpper(g)
			}
			return Values{"greeting": g}, nil
		},
	})
	out, err := svc.Invoke(context.Background(), "Greet", Values{"name": "ada"})
	if err != nil || out.Str("greeting") != "hello ada" {
		t.Errorf("optional omitted: %v %v", out, err)
	}
	out, err = svc.Invoke(context.Background(), "Greet", Values{"name": "ada", "loud": true})
	if err != nil || out.Str("greeting") != "HELLO ADA" {
		t.Errorf("optional given: %v %v", out, err)
	}
}

func TestInvokeOutputValidation(t *testing.T) {
	svc, _ := NewService("Bad", "ns", "")
	svc.MustAddOperation(Operation{
		Name:   "Wrong",
		Output: []Param{{Name: "n", Type: Int}},
		Handler: func(context.Context, Values) (Values, error) {
			return Values{"n": "not a number at all"}, nil
		},
	})
	if _, err := svc.Invoke(context.Background(), "Wrong", nil); err == nil {
		t.Error("invalid output accepted")
	}
	// Unknown output keys are dropped, not errors (lenient on output).
	svc.MustAddOperation(Operation{
		Name:   "Extra",
		Output: []Param{{Name: "n", Type: Int}},
		Handler: func(context.Context, Values) (Values, error) {
			return Values{"n": int64(1), "debug": "x"}, nil
		},
	})
	out, err := svc.Invoke(context.Background(), "Extra", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if _, ok := out["debug"]; ok {
		t.Error("undeclared output leaked")
	}
}

func TestHandlerErrorPassthrough(t *testing.T) {
	sentinel := errors.New("domain failure")
	svc, _ := NewService("E", "ns", "")
	svc.MustAddOperation(Operation{
		Name:    "Fail",
		Handler: func(context.Context, Values) (Values, error) { return nil, sentinel },
	})
	if _, err := svc.Invoke(context.Background(), "Fail", nil); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestOperationsOrder(t *testing.T) {
	svc, _ := NewService("S", "ns", "")
	h := func(context.Context, Values) (Values, error) { return nil, nil }
	for _, n := range []string{"Zeta", "Alpha", "Mid"} {
		svc.MustAddOperation(Operation{Name: n, Handler: h})
	}
	ops := svc.Operations()
	if len(ops) != 3 || ops[0].Name != "Zeta" || ops[2].Name != "Mid" {
		t.Errorf("order = %v", []string{ops[0].Name, ops[1].Name, ops[2].Name})
	}
}

func TestCoerceValue(t *testing.T) {
	cases := []struct {
		t    Type
		in   any
		want any
	}{
		{String, "x", "x"},
		{String, int64(5), "5"},
		{String, 3.5, "3.5"},
		{String, true, "true"},
		{Int, int64(7), int64(7)},
		{Int, 7, int64(7)},
		{Int, int32(7), int64(7)},
		{Int, float64(7), int64(7)},
		{Int, " 7 ", int64(7)},
		{Float, 2.5, 2.5},
		{Float, float32(0.5), 0.5},
		{Float, int64(2), 2.0},
		{Float, "2.5", 2.5},
		{Bool, true, true},
		{Bool, "true", true},
		{Bool, "0", false},
	}
	for _, c := range cases {
		got, err := CoerceValue(c.t, c.in)
		if err != nil {
			t.Errorf("CoerceValue(%s, %v): %v", c.t, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CoerceValue(%s, %v) = %v (%T), want %v", c.t, c.in, got, got, c.want)
		}
	}
	bad := []struct {
		t  Type
		in any
	}{
		{Int, 7.5}, {Int, "x"}, {Float, "pi"}, {Bool, "maybe"}, {Bool, 1.0},
		{Type("enum"), "x"}, {Int, struct{}{}},
	}
	for _, c := range bad {
		if _, err := CoerceValue(c.t, c.in); err == nil {
			t.Errorf("CoerceValue(%s, %v) accepted", c.t, c.in)
		}
	}
}

func TestFormatValueRoundTripProperty(t *testing.T) {
	propInt := func(n int64) bool {
		v, err := CoerceValue(Int, FormatValue(n))
		return err == nil && v == n
	}
	if err := quick.Check(propInt, nil); err != nil {
		t.Errorf("int round trip: %v", err)
	}
	propBool := func(b bool) bool {
		v, err := CoerceValue(Bool, FormatValue(b))
		return err == nil && v == b
	}
	if err := quick.Check(propBool, nil); err != nil {
		t.Errorf("bool round trip: %v", err)
	}
}

func TestValuesAccessors(t *testing.T) {
	v := Values{"s": "x", "i": int64(3), "f": 2.5, "b": true}
	if v.Str("s") != "x" || v.Int("i") != 3 || v.Float("f") != 2.5 || !v.Bool("b") {
		t.Errorf("accessors wrong: %v", v)
	}
	if v.Str("missing") != "" || v.Int("s") != 0 {
		t.Error("fallbacks wrong")
	}
	keys := v.Keys()
	if len(keys) != 4 || keys[0] != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestMustAddOperationPanics(t *testing.T) {
	svc, _ := NewService("S", "ns", "")
	defer func() {
		if recover() == nil {
			t.Error("MustAddOperation did not panic")
		}
	}()
	svc.MustAddOperation(Operation{Name: "bad name"})
}
