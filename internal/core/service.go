// Package core is the service-oriented computing kernel: the paper's
// primary contribution is teaching a development style in which software
// is composed from services with standard interfaces, published in
// directories, and consumed over standard protocols. This package supplies
// that model — typed service descriptors, an in-process dispatcher, a
// ServiceHost that exposes each service over both SOAP and REST (with a
// generated WSDL), and a Client for consuming services — on which the
// repository catalog (soc/internal/services), the registry, and the
// workflow engine are built.
package core

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Type enumerates the wire-level parameter types.
type Type string

const (
	String Type = "string"
	Int    Type = "int"
	Float  Type = "float"
	Bool   Type = "bool"
)

// ErrDefinition reports an invalid service definition.
var ErrDefinition = errors.New("core: invalid service definition")

// ErrBadRequest reports an invocation whose arguments don't satisfy the
// operation signature.
var ErrBadRequest = errors.New("core: bad request")

// ErrNotFound reports an unknown service or operation.
var ErrNotFound = errors.New("core: not found")

// Param is a named, typed parameter of an operation.
type Param struct {
	Name string
	Type Type
	// Doc describes the parameter.
	Doc string
	// Optional marks input parameters that may be omitted (they decode
	// to their zero value).
	Optional bool
}

// Values carries operation arguments and results. Keys are parameter
// names; values are Go values of the kinds corresponding to Type
// (string, int64, float64, bool).
type Values map[string]any

// Handler implements an operation.
type Handler func(ctx context.Context, in Values) (Values, error)

// Operation describes one invokable operation of a service.
type Operation struct {
	Name    string
	Doc     string
	Input   []Param
	Output  []Param
	Handler Handler
	// Idempotent marks operations whose result depends only on their
	// inputs (no observable side effects), making their responses safe to
	// cache and replay. It is an explicit declaration, never inferred.
	Idempotent bool

	// inputIdx/outputIdx are name→param indexes precomputed by
	// AddOperation so Invoke does not rebuild a lookup map per call.
	inputIdx  map[string]*Param
	outputIdx map[string]*Param
}

// Service is a named collection of operations sharing a namespace.
type Service struct {
	Name      string
	Namespace string
	Doc       string
	// Category is the registry taxonomy path, e.g. "security/encryption".
	Category string
	ops      map[string]*Operation
	order    []string
}

var nameRE = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_]*$`)

// NewService returns an empty service. The name must be an identifier;
// namespace must be non-empty.
func NewService(name, namespace, doc string) (*Service, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: bad service name %q", ErrDefinition, name)
	}
	if namespace == "" {
		return nil, fmt.Errorf("%w: empty namespace for %q", ErrDefinition, name)
	}
	return &Service{Name: name, Namespace: namespace, Doc: doc, ops: make(map[string]*Operation)}, nil
}

// AddOperation registers an operation. Names must be unique identifiers;
// every parameter needs a distinct identifier name and a known type.
func (s *Service) AddOperation(op Operation) error {
	if !nameRE.MatchString(op.Name) {
		return fmt.Errorf("%w: bad operation name %q", ErrDefinition, op.Name)
	}
	if op.Handler == nil {
		return fmt.Errorf("%w: operation %q has no handler", ErrDefinition, op.Name)
	}
	if _, dup := s.ops[op.Name]; dup {
		return fmt.Errorf("%w: duplicate operation %q", ErrDefinition, op.Name)
	}
	for _, params := range [][]Param{op.Input, op.Output} {
		seen := map[string]bool{}
		for _, p := range params {
			if !nameRE.MatchString(p.Name) {
				return fmt.Errorf("%w: operation %q: bad parameter name %q", ErrDefinition, op.Name, p.Name)
			}
			if seen[p.Name] {
				return fmt.Errorf("%w: operation %q: duplicate parameter %q", ErrDefinition, op.Name, p.Name)
			}
			seen[p.Name] = true
			switch p.Type {
			case String, Int, Float, Bool:
			default:
				return fmt.Errorf("%w: operation %q: parameter %q has unknown type %q", ErrDefinition, op.Name, p.Name, p.Type)
			}
		}
	}
	opCopy := op
	opCopy.inputIdx = paramIndex(opCopy.Input)
	opCopy.outputIdx = paramIndex(opCopy.Output)
	s.ops[op.Name] = &opCopy
	s.order = append(s.order, op.Name)
	return nil
}

func paramIndex(params []Param) map[string]*Param {
	idx := make(map[string]*Param, len(params))
	for i := range params {
		idx[params[i].Name] = &params[i]
	}
	return idx
}

// MustAddOperation is AddOperation panicking on error; for package-level
// service construction where a failure is a programming bug.
func (s *Service) MustAddOperation(op Operation) {
	if err := s.AddOperation(op); err != nil {
		panic(err)
	}
}

// Operation returns the named operation.
func (s *Service) Operation(name string) (*Operation, error) {
	op, ok := s.ops[name]
	if !ok {
		return nil, fmt.Errorf("%w: operation %q of service %q", ErrNotFound, name, s.Name)
	}
	return op, nil
}

// Operations returns the operations in registration order.
func (s *Service) Operations() []*Operation {
	out := make([]*Operation, len(s.order))
	for i, name := range s.order {
		out[i] = s.ops[name]
	}
	return out
}

// Invoke validates args against the operation's input signature, calls the
// handler, and validates the result against the output signature.
func (s *Service) Invoke(ctx context.Context, opName string, args Values) (Values, error) {
	op, err := s.Operation(opName)
	if err != nil {
		return nil, err
	}
	in, err := coerceValues(op.Input, op.inputIdx, args, true)
	if err != nil {
		return nil, fmt.Errorf("%w: %s.%s: %v", ErrBadRequest, s.Name, opName, err)
	}
	out, err := op.Handler(ctx, in)
	if err != nil {
		return nil, err
	}
	result, err := coerceValues(op.Output, op.outputIdx, out, false)
	if err != nil {
		return nil, fmt.Errorf("core: %s.%s returned invalid output: %v", s.Name, opName, err)
	}
	return result, nil
}

// coerceValues checks vals against the declared params, converting string
// representations to typed values. When strict, unknown keys are rejected
// and required params must be present. known is the precomputed index
// over params (see paramIndex); nil falls back to a scratch index so the
// helper stays usable on Operations not yet registered.
func coerceValues(params []Param, known map[string]*Param, vals Values, strict bool) (Values, error) {
	if known == nil {
		known = paramIndex(params)
	}
	out := make(Values, len(params))
	for k, v := range vals {
		p, ok := known[k]
		if !ok {
			if strict {
				return nil, fmt.Errorf("unknown parameter %q", k)
			}
			continue
		}
		cv, err := CoerceValue(p.Type, v)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %v", k, err)
		}
		out[k] = cv
	}
	for _, p := range params {
		if _, ok := out[p.Name]; ok {
			continue
		}
		if p.Optional || !strict {
			out[p.Name] = zeroOf(p.Type)
			continue
		}
		return nil, fmt.Errorf("missing parameter %q", p.Name)
	}
	return out, nil
}

// CoerceValue converts v to the Go representation of t: string, int64,
// float64, or bool. String inputs are parsed; numeric widths are unified.
func CoerceValue(t Type, v any) (any, error) {
	switch t {
	case String:
		switch x := v.(type) {
		case string:
			return x, nil
		case fmt.Stringer:
			return x.String(), nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case int:
			return strconv.Itoa(x), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case bool:
			return strconv.FormatBool(x), nil
		}
	case Int:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
			return nil, fmt.Errorf("%v is not an integer", x)
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%q is not an int", x)
			}
			return n, nil
		}
	case Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("%q is not a float", x)
			}
			return f, nil
		}
	case Bool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case string:
			b, err := strconv.ParseBool(strings.TrimSpace(x))
			if err != nil {
				return nil, fmt.Errorf("%q is not a bool", x)
			}
			return b, nil
		}
	default:
		return nil, fmt.Errorf("unknown type %q", t)
	}
	return nil, fmt.Errorf("cannot convert %T to %s", v, t)
}

func zeroOf(t Type) any {
	switch t {
	case Int:
		return int64(0)
	case Float:
		return float64(0)
	case Bool:
		return false
	default:
		return ""
	}
}

// FormatValue renders a typed value as its lexical (wire) form.
func FormatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}

// Values helpers: typed accessors with zero-value fallbacks.

// Str returns the string value at key.
func (v Values) Str(key string) string {
	s, _ := v[key].(string)
	return s
}

// Int returns the int64 value at key.
func (v Values) Int(key string) int64 {
	n, _ := v[key].(int64)
	return n
}

// Float returns the float64 value at key.
func (v Values) Float(key string) float64 {
	f, _ := v[key].(float64)
	return f
}

// Bool returns the bool value at key.
func (v Values) Bool(key string) bool {
	b, _ := v[key].(bool)
	return b
}

// Keys returns the sorted keys.
func (v Values) Keys() []string {
	out := make([]string, 0, len(v))
	for k := range v {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
