// Package security implements the dependability-security mechanisms of
// CSE445 unit 6 ("designs and implements the security mechanisms that
// safeguard the Web applications"): salted iterated password hashing
// (PBKDF2-HMAC-SHA256, implemented from the RFC against the stdlib
// primitives), HMAC-signed expiring tokens, role-based access control,
// password strength policy (the Figure 4 "Strong?" check), AES-GCM
// payload encryption for the repository's encryption service, and an
// audit log.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode"
)

// ErrAuth reports failed authentication or verification.
var ErrAuth = errors.New("security: authentication failed")

// ErrDenied reports an authorization denial.
var ErrDenied = errors.New("security: access denied")

// PBKDF2 derives a key from password and salt using HMAC-SHA256 with the
// given iteration count (RFC 2898 §5.2).
func PBKDF2(password, salt []byte, iterations, keyLen int) []byte {
	if iterations < 1 || keyLen < 1 {
		return nil
	}
	hashLen := sha256.Size
	blocks := (keyLen + hashLen - 1) / hashLen
	out := make([]byte, 0, blocks*hashLen)
	var block [4]byte
	for i := 1; i <= blocks; i++ {
		binary.BigEndian.PutUint32(block[:], uint32(i))
		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		mac.Write(block[:])
		u := mac.Sum(nil)
		t := append([]byte(nil), u...)
		for n := 1; n < iterations; n++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for x := range t {
				t[x] ^= u[x]
			}
		}
		out = append(out, t...)
	}
	return out[:keyLen]
}

// DefaultIterations is the password-hash work factor.
const DefaultIterations = 4096

// HashPassword returns a self-describing "iterations$salt$hash" record.
func HashPassword(password string) (string, error) {
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return "", fmt.Errorf("security: entropy: %w", err)
	}
	dk := PBKDF2([]byte(password), salt, DefaultIterations, 32)
	return fmt.Sprintf("%d$%s$%s", DefaultIterations,
		base64.RawStdEncoding.EncodeToString(salt),
		base64.RawStdEncoding.EncodeToString(dk)), nil
}

// VerifyPassword checks a password against a stored record in constant
// time with respect to the derived keys.
func VerifyPassword(password, record string) error {
	parts := strings.Split(record, "$")
	if len(parts) != 3 {
		return fmt.Errorf("%w: malformed record", ErrAuth)
	}
	var iterations int
	if _, err := fmt.Sscanf(parts[0], "%d", &iterations); err != nil || iterations < 1 {
		return fmt.Errorf("%w: bad iteration count", ErrAuth)
	}
	salt, err := base64.RawStdEncoding.DecodeString(parts[1])
	if err != nil {
		return fmt.Errorf("%w: bad salt", ErrAuth)
	}
	want, err := base64.RawStdEncoding.DecodeString(parts[2])
	if err != nil {
		return fmt.Errorf("%w: bad hash", ErrAuth)
	}
	got := PBKDF2([]byte(password), salt, iterations, len(want))
	if subtle.ConstantTimeCompare(got, want) != 1 {
		return ErrAuth
	}
	return nil
}

// PasswordPolicy is the strength check of the Figure 4 flow ("Strong?").
type PasswordPolicy struct {
	MinLength      int
	RequireUpper   bool
	RequireLower   bool
	RequireDigit   bool
	RequireSpecial bool
}

// DefaultPolicy mirrors the course assignment's rules.
var DefaultPolicy = PasswordPolicy{MinLength: 8, RequireUpper: true, RequireLower: true, RequireDigit: true}

// Check returns nil for conforming passwords and an explanatory error
// otherwise.
func (p PasswordPolicy) Check(password string) error {
	var problems []string
	if len(password) < p.MinLength {
		problems = append(problems, fmt.Sprintf("shorter than %d characters", p.MinLength))
	}
	var upper, lower, digit, special bool
	for _, r := range password {
		switch {
		case unicode.IsUpper(r):
			upper = true
		case unicode.IsLower(r):
			lower = true
		case unicode.IsDigit(r):
			digit = true
		default:
			special = true
		}
	}
	if p.RequireUpper && !upper {
		problems = append(problems, "no uppercase letter")
	}
	if p.RequireLower && !lower {
		problems = append(problems, "no lowercase letter")
	}
	if p.RequireDigit && !digit {
		problems = append(problems, "no digit")
	}
	if p.RequireSpecial && !special {
		problems = append(problems, "no special character")
	}
	if len(problems) > 0 {
		return fmt.Errorf("security: weak password: %s", strings.Join(problems, ", "))
	}
	return nil
}

// TokenService issues and verifies HMAC-signed bearer tokens with expiry.
type TokenService struct {
	key []byte
	now func() time.Time
}

// NewTokenService returns a token service; key must be ≥ 16 bytes.
func NewTokenService(key []byte, now func() time.Time) (*TokenService, error) {
	if len(key) < 16 {
		return nil, errors.New("security: token key must be at least 16 bytes")
	}
	if now == nil {
		now = time.Now
	}
	return &TokenService{key: append([]byte(nil), key...), now: now}, nil
}

type tokenClaims struct {
	Subject string   `json:"sub"`
	Roles   []string `json:"roles,omitempty"`
	Expires int64    `json:"exp"`
}

// Issue returns a signed token for subject valid for ttl.
func (t *TokenService) Issue(subject string, roles []string, ttl time.Duration) (string, error) {
	if subject == "" || ttl <= 0 {
		return "", fmt.Errorf("%w: invalid claims", ErrAuth)
	}
	payload, err := json.Marshal(tokenClaims{Subject: subject, Roles: roles, Expires: t.now().Add(ttl).Unix()})
	if err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, t.key)
	mac.Write(payload)
	return base64.RawURLEncoding.EncodeToString(payload) + "." +
		base64.RawURLEncoding.EncodeToString(mac.Sum(nil)), nil
}

// Verify checks signature and expiry and returns the subject and roles.
func (t *TokenService) Verify(token string) (subject string, roles []string, err error) {
	parts := strings.SplitN(token, ".", 2)
	if len(parts) != 2 {
		return "", nil, fmt.Errorf("%w: malformed token", ErrAuth)
	}
	payload, err := base64.RawURLEncoding.DecodeString(parts[0])
	if err != nil {
		return "", nil, fmt.Errorf("%w: bad payload", ErrAuth)
	}
	sig, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil {
		return "", nil, fmt.Errorf("%w: bad signature", ErrAuth)
	}
	mac := hmac.New(sha256.New, t.key)
	mac.Write(payload)
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return "", nil, fmt.Errorf("%w: signature mismatch", ErrAuth)
	}
	var claims tokenClaims
	if err := json.Unmarshal(payload, &claims); err != nil {
		return "", nil, fmt.Errorf("%w: bad claims", ErrAuth)
	}
	if t.now().Unix() >= claims.Expires {
		return "", nil, fmt.Errorf("%w: token expired", ErrAuth)
	}
	return claims.Subject, claims.Roles, nil
}

// RBAC is a role-based access-control policy: roles grant permissions,
// users hold roles. Permissions are "resource:action" strings; a trailing
// "*" in either part is a wildcard.
type RBAC struct {
	mu    sync.RWMutex
	roles map[string]map[string]bool // role → permissions
	users map[string]map[string]bool // user → roles
}

// NewRBAC returns an empty policy.
func NewRBAC() *RBAC {
	return &RBAC{roles: map[string]map[string]bool{}, users: map[string]map[string]bool{}}
}

// GrantRole adds permissions to a role.
func (r *RBAC) GrantRole(role string, permissions ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.roles[role] == nil {
		r.roles[role] = map[string]bool{}
	}
	for _, p := range permissions {
		r.roles[role][p] = true
	}
}

// AssignRole gives a user a role.
func (r *RBAC) AssignRole(user, role string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.users[user] == nil {
		r.users[user] = map[string]bool{}
	}
	r.users[user][role] = true
}

// RevokeRole removes a role from a user.
func (r *RBAC) RevokeRole(user, role string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.users[user], role)
}

// Roles returns a user's sorted roles.
func (r *RBAC) Roles(user string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.users[user]))
	for role := range r.users[user] {
		out = append(out, role)
	}
	sort.Strings(out)
	return out
}

// Check returns nil when user may perform permission ("resource:action").
func (r *RBAC) Check(user, permission string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for role := range r.users[user] {
		for p := range r.roles[role] {
			if permissionMatches(p, permission) {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %s lacks %s", ErrDenied, user, permission)
}

func permissionMatches(granted, requested string) bool {
	if granted == requested || granted == "*" || granted == "*:*" {
		return true
	}
	gp := strings.SplitN(granted, ":", 2)
	rp := strings.SplitN(requested, ":", 2)
	if len(gp) != 2 || len(rp) != 2 {
		return false
	}
	resOK := gp[0] == rp[0] || gp[0] == "*"
	actOK := gp[1] == rp[1] || gp[1] == "*"
	return resOK && actOK
}

// Encrypt seals plaintext with AES-256-GCM under a key derived from the
// passphrase; output is base64(salt‖nonce‖ciphertext).
func Encrypt(passphrase string, plaintext []byte) (string, error) {
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		return "", err
	}
	key := PBKDF2([]byte(passphrase), salt, DefaultIterations, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return "", err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return "", err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return "", err
	}
	sealed := gcm.Seal(nil, nonce, plaintext, nil)
	blob := append(append(salt, nonce...), sealed...)
	return base64.StdEncoding.EncodeToString(blob), nil
}

// Decrypt reverses Encrypt; a wrong passphrase or corrupted blob yields
// ErrAuth.
func Decrypt(passphrase, encoded string) ([]byte, error) {
	blob, err := base64.StdEncoding.DecodeString(encoded)
	if err != nil {
		return nil, fmt.Errorf("%w: bad encoding", ErrAuth)
	}
	if len(blob) < 16+12+16 {
		return nil, fmt.Errorf("%w: blob too short", ErrAuth)
	}
	salt, rest := blob[:16], blob[16:]
	key := PBKDF2([]byte(passphrase), salt, DefaultIterations, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce, ct := rest[:gcm.NonceSize()], rest[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: decryption failed", ErrAuth)
	}
	return plain, nil
}

// RandomString returns n characters drawn uniformly from alphabet (the
// repository's "random string / strong password generation service").
func RandomString(n int, alphabet string) (string, error) {
	if n <= 0 || len(alphabet) == 0 || len(alphabet) > 256 {
		return "", fmt.Errorf("security: bad random string spec n=%d alphabet=%d", n, len(alphabet))
	}
	out := make([]byte, n)
	// Rejection sampling for uniformity.
	max := 256 - (256 % len(alphabet))
	buf := make([]byte, 1)
	for i := 0; i < n; {
		if _, err := rand.Read(buf); err != nil {
			return "", err
		}
		if int(buf[0]) >= max {
			continue
		}
		out[i] = alphabet[int(buf[0])%len(alphabet)]
		i++
	}
	return string(out), nil
}

// Alphabets for RandomString.
const (
	AlphabetAlnum    = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	AlphabetPassword = AlphabetAlnum + "!@#$%^&*-_=+"
)

// AuditLog records security-relevant events with bounded memory.
type AuditLog struct {
	mu     sync.Mutex
	max    int
	events []AuditEvent
	now    func() time.Time
}

// AuditEvent is one audit record.
type AuditEvent struct {
	Time    time.Time
	Actor   string
	Action  string
	Target  string
	Allowed bool
}

// NewAuditLog returns a log keeping at most max events (oldest dropped).
func NewAuditLog(max int, now func() time.Time) *AuditLog {
	if max <= 0 {
		max = 1024
	}
	if now == nil {
		now = time.Now
	}
	return &AuditLog{max: max, now: now}
}

// Record appends an event.
func (l *AuditLog) Record(actor, action, target string, allowed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, AuditEvent{Time: l.now(), Actor: actor, Action: action, Target: target, Allowed: allowed})
	if len(l.events) > l.max {
		l.events = l.events[len(l.events)-l.max:]
	}
}

// Events returns a snapshot of the retained events.
func (l *AuditLog) Events() []AuditEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEvent(nil), l.events...)
}

// Denials counts recorded denials.
func (l *AuditLog) Denials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if !e.Allowed {
			n++
		}
	}
	return n
}
