package security

import (
	"bytes"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPBKDF2KnownVectors(t *testing.T) {
	// RFC 7914 / common PBKDF2-HMAC-SHA256 test vectors.
	cases := []struct {
		password, salt string
		iterations     int
		keyLen         int
		wantHex        string
	}{
		{"passwd", "salt", 1, 64,
			"55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"},
		{"Password", "NaCl", 80000, 64,
			"4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d"},
	}
	for _, c := range cases {
		got := PBKDF2([]byte(c.password), []byte(c.salt), c.iterations, c.keyLen)
		if hex.EncodeToString(got) != c.wantHex {
			t.Errorf("PBKDF2(%q,%q,%d) = %x", c.password, c.salt, c.iterations, got)
		}
	}
}

func TestPBKDF2BadInputs(t *testing.T) {
	if PBKDF2([]byte("p"), []byte("s"), 0, 32) != nil {
		t.Error("zero iterations accepted")
	}
	if PBKDF2([]byte("p"), []byte("s"), 1, 0) != nil {
		t.Error("zero keyLen accepted")
	}
}

func TestHashVerifyPassword(t *testing.T) {
	rec, err := HashPassword("s3cret-Pass")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPassword("s3cret-Pass", rec); err != nil {
		t.Errorf("correct password rejected: %v", err)
	}
	if err := VerifyPassword("wrong", rec); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong password: %v", err)
	}
	// Distinct salts.
	rec2, _ := HashPassword("s3cret-Pass")
	if rec == rec2 {
		t.Error("same salt reused")
	}
	for _, bad := range []string{"", "a$b", "x$!$!", "0$AA$AA"} {
		if err := VerifyPassword("p", bad); !errors.Is(err, ErrAuth) {
			t.Errorf("VerifyPassword(%q): %v", bad, err)
		}
	}
}

func TestPasswordPolicy(t *testing.T) {
	p := DefaultPolicy
	if err := p.Check("Str0ngpass"); err != nil {
		t.Errorf("strong password rejected: %v", err)
	}
	weak := map[string]string{
		"short":        "Ab1",
		"no uppercase": "alllower1",
		"no lowercase": "ALLUPPER1",
		"no digit":     "NoDigitsHere",
	}
	for why, pw := range weak {
		if err := p.Check(pw); err == nil {
			t.Errorf("weak password (%s) accepted: %q", why, pw)
		}
	}
	strict := PasswordPolicy{MinLength: 4, RequireSpecial: true}
	if err := strict.Check("ab1!"); err != nil {
		t.Errorf("special present but rejected: %v", err)
	}
	if err := strict.Check("abcd"); err == nil {
		t.Error("missing special accepted")
	}
}

func TestTokenServiceRoundTrip(t *testing.T) {
	now := time.Unix(1000, 0)
	ts, err := NewTokenService([]byte("0123456789abcdef"), func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	tok, err := ts.Issue("alice", []string{"admin", "user"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sub, roles, err := ts.Verify(tok)
	if err != nil || sub != "alice" || len(roles) != 2 {
		t.Errorf("verify = %q %v %v", sub, roles, err)
	}
	now = now.Add(2 * time.Hour)
	if _, _, err := ts.Verify(tok); !errors.Is(err, ErrAuth) {
		t.Errorf("expired token: %v", err)
	}
}

func TestTokenServiceRejections(t *testing.T) {
	ts, _ := NewTokenService([]byte("0123456789abcdef"), nil)
	if _, err := ts.Issue("", nil, time.Hour); err == nil {
		t.Error("empty subject accepted")
	}
	if _, err := ts.Issue("x", nil, 0); err == nil {
		t.Error("zero ttl accepted")
	}
	tok, _ := ts.Issue("bob", nil, time.Hour)
	other, _ := NewTokenService([]byte("fedcba9876543210"), nil)
	if _, _, err := other.Verify(tok); !errors.Is(err, ErrAuth) {
		t.Errorf("cross-key verify: %v", err)
	}
	for _, bad := range []string{"", "x", "a.b", "!!.!!"} {
		if _, _, err := ts.Verify(bad); !errors.Is(err, ErrAuth) {
			t.Errorf("Verify(%q): %v", bad, err)
		}
	}
	if _, err := NewTokenService([]byte("short"), nil); err == nil {
		t.Error("short key accepted")
	}
}

func TestRBAC(t *testing.T) {
	r := NewRBAC()
	r.GrantRole("admin", "*:*")
	r.GrantRole("analyst", "reports:read", "reports:list")
	r.GrantRole("operator", "services:*")
	r.AssignRole("root", "admin")
	r.AssignRole("ana", "analyst")
	r.AssignRole("ops", "operator")

	cases := []struct {
		user, perm string
		allow      bool
	}{
		{"root", "anything:whatever", true},
		{"ana", "reports:read", true},
		{"ana", "reports:write", false},
		{"ana", "services:read", false},
		{"ops", "services:restart", true},
		{"ops", "reports:read", false},
		{"nobody", "reports:read", false},
	}
	for _, c := range cases {
		err := r.Check(c.user, c.perm)
		if c.allow && err != nil {
			t.Errorf("%s %s denied: %v", c.user, c.perm, err)
		}
		if !c.allow && !errors.Is(err, ErrDenied) {
			t.Errorf("%s %s: %v", c.user, c.perm, err)
		}
	}
	if roles := r.Roles("ana"); len(roles) != 1 || roles[0] != "analyst" {
		t.Errorf("roles = %v", roles)
	}
	r.RevokeRole("ana", "analyst")
	if err := r.Check("ana", "reports:read"); err == nil {
		t.Error("revoked role still grants")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	plain := []byte("attack at dawn — service-oriented edition")
	sealed, err := Encrypt("passphrase", plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt("passphrase", sealed)
	if err != nil || !bytes.Equal(got, plain) {
		t.Errorf("decrypt = %q %v", got, err)
	}
	if _, err := Decrypt("wrong", sealed); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong passphrase: %v", err)
	}
	if _, err := Decrypt("p", "!!!not-base64"); !errors.Is(err, ErrAuth) {
		t.Errorf("bad encoding: %v", err)
	}
	if _, err := Decrypt("p", "aGk"); !errors.Is(err, ErrAuth) {
		t.Errorf("short blob: %v", err)
	}
	// Nondeterministic sealing (fresh salt+nonce).
	sealed2, _ := Encrypt("passphrase", plain)
	if sealed == sealed2 {
		t.Error("identical ciphertexts for identical plaintexts")
	}
}

func TestEncryptRoundTripProperty(t *testing.T) {
	prop := func(data []byte, pass string) bool {
		if pass == "" {
			pass = "x"
		}
		sealed, err := Encrypt(pass, data)
		if err != nil {
			return false
		}
		got, err := Decrypt(pass, sealed)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRandomString(t *testing.T) {
	s, err := RandomString(32, AlphabetAlnum)
	if err != nil || len(s) != 32 {
		t.Fatalf("RandomString: %q %v", s, err)
	}
	for _, r := range s {
		if !strings.ContainsRune(AlphabetAlnum, r) {
			t.Errorf("character %q outside alphabet", r)
		}
	}
	s2, _ := RandomString(32, AlphabetAlnum)
	if s == s2 {
		t.Error("two random strings identical")
	}
	if _, err := RandomString(0, AlphabetAlnum); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomString(5, ""); err == nil {
		t.Error("empty alphabet accepted")
	}
}

func TestAuditLog(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewAuditLog(3, func() time.Time { return now })
	l.Record("alice", "read", "reports", true)
	l.Record("bob", "write", "reports", false)
	l.Record("eve", "read", "secrets", false)
	l.Record("mallory", "delete", "all", false) // evicts alice's event
	events := l.Events()
	if len(events) != 3 || events[0].Actor != "bob" {
		t.Errorf("events = %+v", events)
	}
	if l.Denials() != 3 {
		t.Errorf("denials = %d", l.Denials())
	}
}
