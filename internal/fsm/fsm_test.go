package fsm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// counterEnv is a tiny environment: a counter the machine increments.
type counterEnv struct{ n int }

func buildCounter(t *testing.T, limit int) *Machine[*counterEnv] {
	t.Helper()
	m, err := NewBuilder[*counterEnv]("counter").
		State("counting", "done").
		Initial("counting").
		Accepting("done").
		On(Transition[*counterEnv]{
			From: "counting", To: "done", Label: "limit",
			Guard: func(e *counterEnv) bool { return e.n >= limit },
		}).
		On(Transition[*counterEnv]{
			From: "counting", To: "counting", Label: "inc",
			Action: func(_ context.Context, e *counterEnv) error { e.n++; return nil },
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunToAccepting(t *testing.T) {
	m := buildCounter(t, 5)
	env := &counterEnv{}
	r := m.NewRunner()
	if err := r.Run(context.Background(), env, 100); err != nil {
		t.Fatal(err)
	}
	if env.n != 5 || r.Current() != "done" || !r.Done() {
		t.Errorf("n=%d state=%s", env.n, r.Current())
	}
	// 5 increments + 1 final transition.
	if r.Steps() != 6 {
		t.Errorf("steps = %d", r.Steps())
	}
	if len(r.History) != 7 || r.History[0] != "counting" || r.History[6] != "done" {
		t.Errorf("history = %v", r.History)
	}
}

func TestGuardPriorityIsDeclarationOrder(t *testing.T) {
	// Both transitions enabled: the first declared must win.
	m, err := NewBuilder[struct{}]("prio").
		State("a", "b", "c").
		Initial("a").
		Accepting("b", "c").
		On(Transition[struct{}]{From: "a", To: "b", Label: "first"}).
		On(Transition[struct{}]{From: "a", To: "c", Label: "second"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewRunner()
	if err := r.Step(context.Background(), struct{}{}); err != nil {
		t.Fatal(err)
	}
	if r.Current() != "b" {
		t.Errorf("state = %s, want b", r.Current())
	}
}

func TestStuck(t *testing.T) {
	m, err := NewBuilder[struct{}]("stuck").
		State("a", "b").
		Initial("a").
		Accepting("b").
		On(Transition[struct{}]{From: "a", To: "b", Guard: func(struct{}) bool { return false }}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewRunner()
	if err := r.Step(context.Background(), struct{}{}); !errors.Is(err, ErrStuck) {
		t.Errorf("err = %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := buildCounter(t, 1000)
	r := m.NewRunner()
	err := r.Run(context.Background(), &counterEnv{}, 10)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v", err)
	}
	if _, e := m.NewRunner(), r; e == nil {
		t.Fatal()
	}
	if err := m.NewRunner().Run(context.Background(), &counterEnv{}, 0); !errors.Is(err, ErrDefinition) {
		t.Errorf("maxSteps=0: %v", err)
	}
}

func TestActionError(t *testing.T) {
	boom := errors.New("actuator jam")
	m, err := NewBuilder[struct{}]("err").
		State("a", "b").
		Initial("a").
		Accepting("b").
		On(Transition[struct{}]{From: "a", To: "b", Action: func(context.Context, struct{}) error { return boom }}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.NewRunner().Step(context.Background(), struct{}{}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	type b = Builder[struct{}]
	cases := []struct {
		name  string
		build func() (*Machine[struct{}], error)
	}{
		{"empty name", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("").State("a").Initial("a").Build()
		}},
		{"empty state", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("").Initial("").Build()
		}},
		{"dup state", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("a", "a").Initial("a").Build()
		}},
		{"undeclared initial", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("a").Initial("x").Build()
		}},
		{"undeclared accepting", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("a").Initial("a").Accepting("x").Build()
		}},
		{"undeclared transition endpoint", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("a").Initial("a").
				On(Transition[struct{}]{From: "a", To: "ghost"}).Build()
		}},
		{"unreachable state", func() (*Machine[struct{}], error) {
			return NewBuilder[struct{}]("m").State("a", "island").Initial("a").Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); !errors.Is(err, ErrDefinition) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
	var _ = b{} // keep alias used
}

func TestContextCancel(t *testing.T) {
	m := buildCounter(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.NewRunner().Run(ctx, &counterEnv{}, 100); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestStatesAndAccessors(t *testing.T) {
	m := buildCounter(t, 1)
	if m.Name() != "counter" || m.Initial() != "counting" {
		t.Errorf("identity: %s %s", m.Name(), m.Initial())
	}
	states := m.States()
	if len(states) != 2 || states[0] != "counting" {
		t.Errorf("states = %v", states)
	}
	if !m.IsAccepting("done") || m.IsAccepting("counting") {
		t.Error("accepting flags wrong")
	}
}

func TestDOTExport(t *testing.T) {
	m := buildCounter(t, 1)
	dot := m.DOT()
	for _, want := range []string{
		"digraph \"counter\"", "doublecircle", "\"counting\" -> \"done\"",
		"label=\"limit\"", "__start ->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
