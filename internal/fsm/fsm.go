// Package fsm implements the finite-state-machine formalism in which the
// paper presents robot control algorithms (Figure 2 gives the two-distance
// maze algorithm as an FSM to be implemented in VPL): named states,
// guarded transitions with actions, a validating builder, a runner, and
// DOT export for visualization.
package fsm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrDefinition reports an invalid machine definition.
var ErrDefinition = errors.New("fsm: invalid definition")

// ErrStuck reports a run that reached a state with no enabled transition.
var ErrStuck = errors.New("fsm: no enabled transition")

// ErrStepLimit reports a run exceeding its step budget.
var ErrStepLimit = errors.New("fsm: step limit exceeded")

// Guard decides whether a transition is enabled given the environment E.
type Guard[E any] func(env E) bool

// Action runs when a transition fires.
type Action[E any] func(ctx context.Context, env E) error

// Transition is one edge of the machine.
type Transition[E any] struct {
	From  string
	To    string
	Label string
	// Guard enables the transition; nil means always enabled.
	Guard Guard[E]
	// Action runs as the transition fires; nil means no action.
	Action Action[E]
}

// Machine is a validated finite state machine over environment E.
type Machine[E any] struct {
	name        string
	initial     string
	states      map[string]bool
	accepting   map[string]bool
	transitions map[string][]Transition[E]
}

// Builder accumulates a machine definition.
type Builder[E any] struct {
	name        string
	initial     string
	states      []string
	accepting   []string
	transitions []Transition[E]
}

// NewBuilder starts a machine definition.
func NewBuilder[E any](name string) *Builder[E] { return &Builder[E]{name: name} }

// State declares states.
func (b *Builder[E]) State(names ...string) *Builder[E] {
	b.states = append(b.states, names...)
	return b
}

// Initial sets the start state.
func (b *Builder[E]) Initial(name string) *Builder[E] {
	b.initial = name
	return b
}

// Accepting marks final states: the run stops successfully on entering one.
func (b *Builder[E]) Accepting(names ...string) *Builder[E] {
	b.accepting = append(b.accepting, names...)
	return b
}

// On adds a transition.
func (b *Builder[E]) On(t Transition[E]) *Builder[E] {
	b.transitions = append(b.transitions, t)
	return b
}

// Build validates and returns the machine. Validation requires: a name,
// declared initial state, all transition endpoints declared, every
// non-accepting state reachable from the initial state, and at least one
// accepting state reachable.
func (b *Builder[E]) Build() (*Machine[E], error) {
	if b.name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrDefinition)
	}
	m := &Machine[E]{
		name:        b.name,
		initial:     b.initial,
		states:      map[string]bool{},
		accepting:   map[string]bool{},
		transitions: map[string][]Transition[E]{},
	}
	for _, s := range b.states {
		if s == "" {
			return nil, fmt.Errorf("%w: empty state name", ErrDefinition)
		}
		if m.states[s] {
			return nil, fmt.Errorf("%w: duplicate state %q", ErrDefinition, s)
		}
		m.states[s] = true
	}
	if !m.states[b.initial] {
		return nil, fmt.Errorf("%w: initial state %q not declared", ErrDefinition, b.initial)
	}
	for _, a := range b.accepting {
		if !m.states[a] {
			return nil, fmt.Errorf("%w: accepting state %q not declared", ErrDefinition, a)
		}
		m.accepting[a] = true
	}
	for _, t := range b.transitions {
		if !m.states[t.From] || !m.states[t.To] {
			return nil, fmt.Errorf("%w: transition %q→%q uses undeclared state", ErrDefinition, t.From, t.To)
		}
		m.transitions[t.From] = append(m.transitions[t.From], t)
	}
	// Reachability from the initial state.
	reach := map[string]bool{b.initial: true}
	frontier := []string{b.initial}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, t := range m.transitions[s] {
			if !reach[t.To] {
				reach[t.To] = true
				frontier = append(frontier, t.To)
			}
		}
	}
	for s := range m.states {
		if !reach[s] {
			return nil, fmt.Errorf("%w: state %q unreachable", ErrDefinition, s)
		}
	}
	return m, nil
}

// Name returns the machine name.
func (m *Machine[E]) Name() string { return m.name }

// Initial returns the start state.
func (m *Machine[E]) Initial() string { return m.initial }

// States returns the sorted state names.
func (m *Machine[E]) States() []string {
	out := make([]string, 0, len(m.states))
	for s := range m.states {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// IsAccepting reports whether s is an accepting state.
func (m *Machine[E]) IsAccepting(s string) bool { return m.accepting[s] }

// Runner executes a machine instance against an environment.
type Runner[E any] struct {
	m       *Machine[E]
	current string
	steps   int
	// History records visited states including the initial one.
	History []string
}

// NewRunner returns a runner positioned at the initial state.
func (m *Machine[E]) NewRunner() *Runner[E] {
	return &Runner[E]{m: m, current: m.initial, History: []string{m.initial}}
}

// Current returns the current state.
func (r *Runner[E]) Current() string { return r.current }

// Steps returns the number of transitions fired.
func (r *Runner[E]) Steps() int { return r.steps }

// Done reports whether the runner sits in an accepting state.
func (r *Runner[E]) Done() bool { return r.m.accepting[r.current] }

// Step evaluates the current state's transitions in declaration order and
// fires the first enabled one. It reports ErrStuck when none is enabled.
func (r *Runner[E]) Step(ctx context.Context, env E) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, t := range r.m.transitions[r.current] {
		if t.Guard != nil && !t.Guard(env) {
			continue
		}
		if t.Action != nil {
			if err := t.Action(ctx, env); err != nil {
				return fmt.Errorf("fsm %s: action on %q→%q: %w", r.m.name, t.From, t.To, err)
			}
		}
		r.current = t.To
		r.steps++
		r.History = append(r.History, t.To)
		return nil
	}
	return fmt.Errorf("%w: state %q of %s", ErrStuck, r.current, r.m.name)
}

// Run steps the machine until it reaches an accepting state, gets stuck,
// errors, or exceeds maxSteps.
func (r *Runner[E]) Run(ctx context.Context, env E, maxSteps int) error {
	if maxSteps <= 0 {
		return fmt.Errorf("%w: maxSteps=%d", ErrDefinition, maxSteps)
	}
	for !r.Done() {
		if r.steps >= maxSteps {
			return fmt.Errorf("%w: %d", ErrStepLimit, maxSteps)
		}
		if err := r.Step(ctx, env); err != nil {
			return err
		}
	}
	return nil
}

// DOT renders the machine in Graphviz DOT format (the notation of the
// paper's Figure 2, mechanically).
func (m *Machine[E]) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", m.name)
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> %q;\n", m.initial)
	for _, s := range m.States() {
		shape := "circle"
		if m.accepting[s] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", s, shape)
	}
	froms := make([]string, 0, len(m.transitions))
	for f := range m.transitions {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, f := range froms {
		for _, t := range m.transitions[f] {
			label := t.Label
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", t.From, t.To, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
