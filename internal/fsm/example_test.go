package fsm_test

import (
	"context"
	"fmt"

	"soc/internal/fsm"
)

// Example builds and runs a tiny machine in the Figure 2 style: a
// counting state with a guarded exit transition.
func Example() {
	type env struct{ n int }
	m, _ := fsm.NewBuilder[*env]("count-to-three").
		State("counting", "done").
		Initial("counting").
		Accepting("done").
		On(fsm.Transition[*env]{
			From: "counting", To: "done", Label: "reached",
			Guard: func(e *env) bool { return e.n >= 3 },
		}).
		On(fsm.Transition[*env]{
			From: "counting", To: "counting", Label: "inc",
			Action: func(_ context.Context, e *env) error { e.n++; return nil },
		}).
		Build()
	e := &env{}
	r := m.NewRunner()
	_ = r.Run(context.Background(), e, 100)
	fmt.Println(r.Current(), e.n)
	// Output: done 3
}
