package host

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"soc/internal/callplane"
	"soc/internal/core"
	"soc/internal/soap"
	"soc/internal/telemetry"
	"soc/internal/wsdl"
)

// ErrRemote reports a remote invocation failure, wrapping the transported
// problem detail.
var ErrRemote = errors.New("host: remote error")

// Client consumes services exposed by a Host (or any server following the
// same URL conventions), over either binding — a thin binding over the
// call plane: every request carries the caller's deadline and trace
// context, and every call records a client span.
type Client struct {
	// BaseURL is the server prefix, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient performs requests; nil uses a 30 s timeout client.
	HTTPClient *http.Client
	// Tracer records client spans; nil uses the process default.
	Tracer *telemetry.Tracer
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) tracer() *telemetry.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return telemetry.Default()
}

// Call invokes service.op over the REST binding with JSON arguments.
func (c *Client) Call(ctx context.Context, service, op string, args core.Values) (core.Values, error) {
	sp, ctx := c.tracer().StartSpan(ctx, telemetry.KindClient, service+"."+op)
	if sp != nil {
		sp.Target = c.BaseURL
		sp.Annotate("binding", "rest")
	}
	out, err := c.call(ctx, service, op, args)
	sp.EndErr(err)
	return out, err
}

// call is the span-free REST exchange; ResilientClient invokes it under
// its own per-attempt spans so a resilient call doesn't double-record.
func (c *Client) call(ctx context.Context, service, op string, args core.Values) (core.Values, error) {
	body, err := json.Marshal(args)
	if err != nil {
		return nil, fmt.Errorf("host: encoding args: %w", err)
	}
	url := fmt.Sprintf("%s/services/%s/invoke/%s", c.BaseURL, service, op)
	req, err := callplane.NewRequest(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: transport: %v", ErrRemote, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("%w: reading response: %v", ErrRemote, err)
	}
	if resp.StatusCode != http.StatusOK {
		var prob struct {
			Detail string `json:"detail"`
			Title  string `json:"title"`
		}
		if json.Unmarshal(data, &prob) == nil && prob.Detail != "" {
			return nil, fmt.Errorf("%w: %s (%d)", ErrRemote, prob.Detail, resp.StatusCode)
		}
		return nil, fmt.Errorf("%w: status %d", ErrRemote, resp.StatusCode)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%w: decoding response: %v", ErrRemote, err)
	}
	return core.Values(out), nil
}

// CallSOAP invokes service.op over the SOAP binding. Arguments are
// serialized to their lexical forms; results come back as strings (the
// caller coerces as needed, as any WSDL-driven client would).
func (c *Client) CallSOAP(ctx context.Context, service, op, namespace string, args core.Values) (map[string]string, error) {
	msg := soap.Message{Operation: op, Namespace: namespace, Params: map[string]string{}}
	for k, v := range args {
		msg.Params[k] = core.FormatValue(v)
	}
	sc := &soap.Client{HTTPClient: c.httpClient(), Tracer: c.Tracer}
	url := fmt.Sprintf("%s/services/%s/soap", c.BaseURL, service)
	resp, err := sc.Call(ctx, url, msg)
	if err != nil {
		return nil, err
	}
	return resp.Params, nil
}

// Describe fetches the WSDL for a service and parses it.
func (c *Client) Describe(ctx context.Context, service string) (*wsdl.Description, error) {
	url := fmt.Sprintf("%s/services/%s?wsdl", c.BaseURL, service)
	req, err := callplane.NewRequest(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: transport: %v", ErrRemote, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: wsdl status %d", ErrRemote, resp.StatusCode)
	}
	return wsdl.Parse(resp.Body)
}

// List fetches the hosted service summaries.
func (c *Client) List(ctx context.Context) ([]ServiceInfo, error) {
	req, err := callplane.NewRequest(ctx, http.MethodGet, c.BaseURL+"/services", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: transport: %v", ErrRemote, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: status %d", ErrRemote, resp.StatusCode)
	}
	var out []ServiceInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decoding list: %v", ErrRemote, err)
	}
	return out, nil
}

// ServiceInfo is one entry of a service listing.
type ServiceInfo struct {
	Name      string `json:"name"`
	Namespace string `json:"namespace"`
	Doc       string `json:"doc"`
	Category  string `json:"category"`
}
