package host

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"soc/internal/core"
	"soc/internal/reliability"
)

// ErrReplicaUnhealthy marks a replica skipped because the health checker
// currently classifies it down; failover moves on to the next replica.
var ErrReplicaUnhealthy = errors.New("host: replica demoted by health checker")

// Fallback produces a degraded-mode answer (cached, default, or
// approximate) when every replica has failed.
type Fallback func(ctx context.Context, service, op string, args core.Values) (core.Values, error)

// Policy configures a ResilientClient. The zero value gets sensible
// defaults: 3 attempts with 10 ms base backoff, 5-failure breakers with a
// 1 s cooldown, a 10 s per-attempt timeout, and a 64-call bulkhead.
type Policy struct {
	// Timeout bounds each individual attempt; 0 means 10 s.
	Timeout time.Duration
	// Retry wraps the whole failover pass; a zero MaxAttempts means 3.
	Retry reliability.RetryPolicy
	// BreakerThreshold consecutive failures open one replica's breaker;
	// 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay; 0 means 1 s.
	BreakerCooldown time.Duration
	// MaxConcurrent caps in-flight calls (bulkhead); 0 means 64.
	MaxConcurrent int
	// Fallback, when set, serves a degraded answer after all replicas
	// (and retries) failed — graceful degradation instead of an error.
	Fallback Fallback
	// HTTPClient is used by every replica client; nil uses each client's
	// default. Tests inject fault transports here.
	HTTPClient *http.Client
}

func (p Policy) withDefaults() Policy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.Retry.MaxAttempts <= 0 {
		p.Retry.MaxAttempts = 3
		if p.Retry.BaseDelay <= 0 {
			p.Retry.BaseDelay = 10 * time.Millisecond
		}
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = 64
	}
	return p
}

// replica is one backend: its client and its private circuit breaker, so
// one bad replica can't open the circuit for its siblings.
type replica struct {
	url     string
	client  *Client
	breaker *reliability.Breaker
}

// ResilientClient composes the unit-6 reliability primitives around
// host.Client: per-attempt timeout inside a per-replica circuit breaker,
// inside health-aware multi-replica failover, inside retry with backoff,
// inside a bulkhead — with an optional fallback for graceful degradation
// when everything is down. Safe for concurrent use.
type ResilientClient struct {
	policy   Policy
	replicas []*replica
	failover *reliability.Failover[*replica]
	bulkhead *reliability.Bulkhead
	health   *reliability.HealthChecker

	attempts  atomic.Uint64 // individual replica attempts
	failovers atomic.Uint64 // attempts beyond the first within one pass
	skipped   atomic.Uint64 // replicas skipped while demoted
	fallbacks atomic.Uint64 // degraded answers served
}

// NewResilientClient returns a client over the replica base URLs.
func NewResilientClient(policy Policy, baseURLs ...string) (*ResilientClient, error) {
	if len(baseURLs) == 0 {
		return nil, errors.New("host: resilient client needs at least one replica")
	}
	policy = policy.withDefaults()
	rc := &ResilientClient{policy: policy}
	for _, u := range baseURLs {
		br, err := reliability.NewBreaker(policy.BreakerThreshold, policy.BreakerCooldown, nil)
		if err != nil {
			return nil, err
		}
		c := NewClient(u)
		c.HTTPClient = policy.HTTPClient
		rc.replicas = append(rc.replicas, &replica{url: u, client: c, breaker: br})
	}
	fo, err := reliability.NewFailover(rc.replicas...)
	if err != nil {
		return nil, err
	}
	rc.failover = fo
	bh, err := reliability.NewBulkhead(policy.MaxConcurrent)
	if err != nil {
		return nil, err
	}
	rc.bulkhead = bh
	return rc, nil
}

// StartHealth creates and starts a health checker probing each replica's
// GET /healthz, demoting replicas before failover tries them. A nil
// cfg.Probe uses a direct HTTP probe (not the policy's HTTPClient, so
// fault-injecting transports don't blind the health view). Callers stop
// it with StopHealth.
func (rc *ResilientClient) StartHealth(ctx context.Context, cfg reliability.HealthCheckerConfig) error {
	if rc.health != nil {
		return errors.New("host: health checker already started")
	}
	urls := make([]string, len(rc.replicas))
	for i, r := range rc.replicas {
		urls[i] = r.url
	}
	hc, err := reliability.NewHealthChecker(cfg, urls...)
	if err != nil {
		return err
	}
	rc.health = hc
	hc.Start(ctx)
	return nil
}

// StopHealth halts the health checker, if started.
func (rc *ResilientClient) StopHealth() {
	if rc.health != nil {
		rc.health.Stop()
	}
}

// Health exposes the checker (nil before StartHealth) for observability.
func (rc *ResilientClient) Health() *reliability.HealthChecker { return rc.health }

// Replicas lists the replica base URLs in registration order.
func (rc *ResilientClient) Replicas() []string {
	out := make([]string, len(rc.replicas))
	for i, r := range rc.replicas {
		out[i] = r.url
	}
	return out
}

// Counters reports attempts issued, failover hops, unhealthy skips and
// fallback answers served.
func (rc *ResilientClient) Counters() (attempts, failovers, skipped, fallbacks uint64) {
	return rc.attempts.Load(), rc.failovers.Load(), rc.skipped.Load(), rc.fallbacks.Load()
}

// Call invokes service.op over the REST binding with the full resilience
// stack. When all replicas fail and a Fallback is configured, its answer
// (and error) is returned instead.
func (rc *ResilientClient) Call(ctx context.Context, service, op string, args core.Values) (core.Values, error) {
	var out core.Values
	err := rc.bulkhead.Do(ctx, func(ctx context.Context) error {
		return reliability.Retry(ctx, rc.policy.Retry, func(ctx context.Context) error {
			// One failover pass: healthy replicas first; when the checker
			// says nothing is healthy, try everything (the checker may be
			// stale, and a long-shot beats a guaranteed failure).
			allDemoted := rc.health != nil && len(rc.health.Healthy()) == 0
			first := true
			return rc.failover.Do(ctx, func(ctx context.Context, rep *replica) error {
				if !first {
					rc.failovers.Add(1)
				}
				first = false
				if rc.health != nil && !allDemoted && !rc.health.IsHealthy(rep.url) {
					rc.skipped.Add(1)
					return fmt.Errorf("%w: %s", ErrReplicaUnhealthy, rep.url)
				}
				rc.attempts.Add(1)
				return rep.breaker.Do(ctx, func(ctx context.Context) error {
					actx, cancel := context.WithTimeout(ctx, rc.policy.Timeout)
					defer cancel()
					res, err := rep.client.Call(actx, service, op, args)
					if err != nil {
						return err
					}
					out = res
					return nil
				})
			})
		})
	})
	if err != nil && rc.policy.Fallback != nil {
		rc.fallbacks.Add(1)
		return rc.policy.Fallback(ctx, service, op, args)
	}
	return out, err
}
