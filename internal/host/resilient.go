package host

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"soc/internal/callplane"
	"soc/internal/core"
	"soc/internal/reliability"
	"soc/internal/telemetry"
	"soc/internal/vtime"
)

// ErrReplicaUnhealthy marks a replica skipped because the health checker
// currently classifies it down; failover moves on to the next replica.
var ErrReplicaUnhealthy = errors.New("host: replica demoted by health checker")

// Fallback produces a degraded-mode answer (cached, default, or
// approximate) when every replica has failed.
type Fallback func(ctx context.Context, service, op string, args core.Values) (core.Values, error)

// Policy configures a ResilientClient. The zero value gets sensible
// defaults: 3 attempts with 10 ms base backoff, 5-failure breakers with a
// 1 s cooldown, a 10 s per-attempt timeout, and a 64-call bulkhead.
type Policy struct {
	// Timeout bounds each individual attempt; 0 means 10 s.
	Timeout time.Duration
	// Retry wraps the whole failover pass; a zero MaxAttempts means 3.
	Retry reliability.RetryPolicy
	// BreakerThreshold consecutive failures open one replica's breaker;
	// 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is the open→half-open delay; 0 means 1 s.
	BreakerCooldown time.Duration
	// MaxConcurrent caps in-flight calls (bulkhead); 0 means 64.
	MaxConcurrent int
	// Fallback, when set, serves a degraded answer after all replicas
	// (and retries) failed — graceful degradation instead of an error.
	Fallback Fallback
	// HTTPClient is used by every replica client; nil uses each client's
	// default. Tests inject fault transports here.
	HTTPClient *http.Client
	// Tracer records the call's trace — root span, per-attempt spans,
	// skip events; nil uses the process default.
	Tracer *telemetry.Tracer
	// Clock is the time source the per-replica breakers consult for their
	// cooldowns; nil means the wall clock. The simulation harness sets a
	// vtime.Virtual here (and threads the same clock via context for the
	// retry/timeout layers) so breaker recovery happens in virtual time.
	Clock vtime.Clock
}

func (p Policy) withDefaults() Policy {
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.Retry.MaxAttempts <= 0 {
		p.Retry.MaxAttempts = 3
		if p.Retry.BaseDelay <= 0 {
			p.Retry.BaseDelay = 10 * time.Millisecond
		}
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = 64
	}
	if p.Tracer == nil {
		p.Tracer = telemetry.Default()
	}
	return p
}

// replica is one backend: its client and its private circuit breaker, so
// one bad replica can't open the circuit for its siblings.
type replica struct {
	url     string
	client  *Client
	breaker *reliability.Breaker
}

// ResilientClient composes the unit-6 reliability primitives around
// host.Client as one precompiled call-plane chain: root span → bulkhead →
// retry → health-aware failover → per-attempt span → per-replica breaker
// → per-attempt timeout → REST exchange — with an optional fallback for
// graceful degradation when everything is down. One Call under faults
// renders as one trace tree whose attempt spans carry the replica tried,
// the attempt number, and breaker/skip annotations. Safe for concurrent
// use.
type ResilientClient struct {
	policy   Policy
	replicas []*replica
	byURL    map[string]*replica
	chain    callplane.Transport
	health   *reliability.HealthChecker

	attempts  atomic.Uint64 // individual replica attempts
	failovers atomic.Uint64 // attempts beyond the first within one pass
	skipped   atomic.Uint64 // replicas skipped while demoted
	fallbacks atomic.Uint64 // degraded answers served
}

// NewResilientClient returns a client over the replica base URLs.
func NewResilientClient(policy Policy, baseURLs ...string) (*ResilientClient, error) {
	if len(baseURLs) == 0 {
		return nil, errors.New("host: resilient client needs at least one replica")
	}
	policy = policy.withDefaults()
	rc := &ResilientClient{policy: policy, byURL: make(map[string]*replica, len(baseURLs))}
	var now func() time.Time
	if policy.Clock != nil {
		now = policy.Clock.Now
	}
	for _, u := range baseURLs {
		br, err := reliability.NewBreaker(policy.BreakerThreshold, policy.BreakerCooldown, now)
		if err != nil {
			return nil, err
		}
		c := NewClient(u)
		c.HTTPClient = policy.HTTPClient
		c.Tracer = policy.Tracer
		rep := &replica{url: u, client: c, breaker: br}
		rc.replicas = append(rc.replicas, rep)
		rc.byURL[u] = rep
	}
	fo, err := reliability.NewFailover(baseURLs...)
	if err != nil {
		return nil, err
	}
	bh, err := reliability.NewBulkhead(policy.MaxConcurrent)
	if err != nil {
		return nil, err
	}
	tr := policy.Tracer
	rc.chain = callplane.Chain(callplane.Terminal,
		callplane.WithSpan(tr, telemetry.KindClient),
		callplane.WithBulkhead(bh),
		callplane.WithRetry(policy.Retry),
		callplane.WithFailover(fo, callplane.FailoverOptions{
			// The health view is consulted through rc.health at call time:
			// StartHealth attaches the checker after construction.
			Healthy: func(u string) bool {
				h := rc.health
				return h == nil || h.IsHealthy(u)
			},
			// When the checker says nothing is healthy, try everything —
			// the checker may be stale, and a long-shot beats a
			// guaranteed failure.
			AnyHealthy: func() bool {
				h := rc.health
				return h == nil || len(h.Healthy()) > 0
			},
			SkipErr: func(u string) error {
				return fmt.Errorf("%w: %s", ErrReplicaUnhealthy, u)
			},
			OnHop: func(ctx context.Context, inv *callplane.Invocation) {
				rc.failovers.Add(1)
			},
			OnSkip: func(ctx context.Context, inv *callplane.Invocation) {
				rc.skipped.Add(1)
				tr.Event(telemetry.SpanContextOf(ctx), telemetry.KindClient, "skip", "replica", inv.Target)
			},
			OnAttempt: func(ctx context.Context, inv *callplane.Invocation) {
				rc.attempts.Add(1)
			},
		}),
		callplane.WithAttemptSpan(tr),
		callplane.WithBreakers(func(u string) *reliability.Breaker {
			if rep := rc.byURL[u]; rep != nil {
				return rep.breaker
			}
			return nil
		}),
		callplane.WithTimeout(policy.Timeout),
	)
	return rc, nil
}

// StartHealth creates and starts a health checker probing each replica's
// GET /healthz, demoting replicas before failover tries them. A nil
// cfg.Probe uses a direct HTTP probe (not the policy's HTTPClient, so
// fault-injecting transports don't blind the health view). Callers stop
// it with StopHealth.
func (rc *ResilientClient) StartHealth(ctx context.Context, cfg reliability.HealthCheckerConfig) error {
	if rc.health != nil {
		return errors.New("host: health checker already started")
	}
	urls := make([]string, len(rc.replicas))
	for i, r := range rc.replicas {
		urls[i] = r.url
	}
	hc, err := reliability.NewHealthChecker(cfg, urls...)
	if err != nil {
		return err
	}
	rc.health = hc
	hc.Start(ctx)
	return nil
}

// StopHealth halts the health checker, if started.
func (rc *ResilientClient) StopHealth() {
	if rc.health != nil {
		rc.health.Stop()
	}
}

// Health exposes the checker (nil before StartHealth) for observability.
func (rc *ResilientClient) Health() *reliability.HealthChecker { return rc.health }

// Breaker exposes the circuit breaker of one replica (nil for unknown
// URLs) so observers — the simulation harness's invariant checkers, for
// one — can attach OnTransition hooks or read its state.
func (rc *ResilientClient) Breaker(url string) *reliability.Breaker {
	if rep := rc.byURL[url]; rep != nil {
		return rep.breaker
	}
	return nil
}

// Replicas lists the replica base URLs in registration order.
func (rc *ResilientClient) Replicas() []string {
	out := make([]string, len(rc.replicas))
	for i, r := range rc.replicas {
		out[i] = r.url
	}
	return out
}

// Counters reports attempts issued, failover hops, unhealthy skips and
// fallback answers served.
func (rc *ResilientClient) Counters() (attempts, failovers, skipped, fallbacks uint64) {
	return rc.attempts.Load(), rc.failovers.Load(), rc.skipped.Load(), rc.fallbacks.Load()
}

// Call invokes service.op over the REST binding with the full resilience
// stack. When all replicas fail and a Fallback is configured, its answer
// (and error) is returned instead.
func (rc *ResilientClient) Call(ctx context.Context, service, op string, args core.Values) (core.Values, error) {
	var out core.Values
	inv := &callplane.Invocation{Service: service, Operation: op, Binding: "rest",
		Do: func(ctx context.Context, inv *callplane.Invocation) error {
			rep := rc.byURL[inv.Target]
			if rep == nil {
				return fmt.Errorf("host: unknown replica %q", inv.Target)
			}
			res, err := rep.client.call(ctx, service, op, args)
			if err != nil {
				return err
			}
			out = res
			return nil
		},
	}
	err := rc.chain.RoundTrip(ctx, inv)
	if err != nil && rc.policy.Fallback != nil {
		rc.fallbacks.Add(1)
		return rc.policy.Fallback(ctx, service, op, args)
	}
	return out, err
}
