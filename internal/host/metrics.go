package host

import (
	"sort"
	"sync"
	"time"
)

// OpStats accumulates invocation statistics for one service operation —
// the provider-side observability the "service hosting" assignment asks
// students to analyze ("determine the performance improvement based on
// the service model").
type OpStats struct {
	Calls     uint64
	Errors    uint64
	TotalTime time.Duration
}

// MeanTime is the average handler latency.
func (s OpStats) MeanTime() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Calls)
}

type metrics struct {
	mu sync.Mutex
	m  map[string]*OpStats // "Service.Operation" → stats
}

func newMetrics() *metrics { return &metrics{m: map[string]*OpStats{}} }

func (mx *metrics) record(key string, d time.Duration, failed bool) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	st, ok := mx.m[key]
	if !ok {
		st = &OpStats{}
		mx.m[key] = st
	}
	st.Calls++
	st.TotalTime += d
	if failed {
		st.Errors++
	}
}

// Stats returns a snapshot of per-operation statistics keyed by
// "Service.Operation".
func (h *Host) Stats() map[string]OpStats {
	h.metrics.mu.Lock()
	defer h.metrics.mu.Unlock()
	out := make(map[string]OpStats, len(h.metrics.m))
	for k, v := range h.metrics.m {
		out[k] = *v
	}
	return out
}

// StatKeys returns the sorted operation keys with recorded calls.
func (h *Host) StatKeys() []string {
	h.metrics.mu.Lock()
	defer h.metrics.mu.Unlock()
	out := make([]string, 0, len(h.metrics.m))
	for k := range h.metrics.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
