package host

import (
	"time"
)

// OpStats accumulates invocation statistics for one service operation —
// the provider-side observability the "service hosting" assignment asks
// students to analyze ("determine the performance improvement based on
// the service model"). Since the call-plane refactor it is a view over
// the shared telemetry instrument set, so Stats, /metricz and the trace
// plane can never disagree.
type OpStats struct {
	Calls     uint64
	Errors    uint64
	TotalTime time.Duration
}

// MeanTime is the average handler latency.
func (s OpStats) MeanTime() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.Calls)
}

// Stats returns a snapshot of per-operation statistics keyed by
// "Service.Operation". Cache hits are not counted as calls: they say
// nothing about handler latency (see telemetry.Metrics.RecordCached).
func (h *Host) Stats() map[string]OpStats {
	snap := h.instr.Snapshot()
	out := make(map[string]OpStats, len(snap))
	for k, v := range snap {
		out[k] = OpStats{Calls: v.Calls, Errors: v.Errors, TotalTime: v.TotalTime}
	}
	return out
}

// StatKeys returns the sorted operation keys with recorded activity.
func (h *Host) StatKeys() []string { return h.instr.Keys() }
