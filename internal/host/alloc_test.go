//go:build !race

package host

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"soc/internal/core"
)

// TestDispatchAllocCeiling pins the per-request allocation budget of
// dispatching a no-op operation through the full router + invoke path
// (route match, params, coercion, metrics, JSON response). Regressions
// here fail go test, not just a benchmark run.
func TestDispatchAllocCeiling(t *testing.T) {
	svc, err := core.NewService("Noop", "http://soc.example/noop", "")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:   "Ping",
		Output: []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, _ core.Values) (core.Values, error) {
			return core.Values{"ok": true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	h.MustMount(svc)

	r := httptest.NewRequest(http.MethodGet, "/services/Noop/invoke/Ping", nil)
	// Warm pools and lazy state once.
	h.ServeHTTP(httptest.NewRecorder(), r)

	w := httptest.NewRecorder()
	allocs := testing.AllocsPerRun(200, func() {
		w.Body.Reset()
		h.ServeHTTP(w, r)
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if allocs > 40 {
		t.Errorf("dispatch allocates %.1f/op, ceiling 40", allocs)
	}
}
