//go:build !race

package host

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"soc/internal/core"
)

// TestDispatchAllocCeiling pins the per-request allocation budget of
// dispatching a no-op operation through the full router + invoke path
// (route match, params, coercion, metrics, JSON response). Regressions
// here fail go test, not just a benchmark run.
func TestDispatchAllocCeiling(t *testing.T) {
	svc, err := core.NewService("Noop", "http://soc.example/noop", "")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:   "Ping",
		Output: []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, _ core.Values) (core.Values, error) {
			return core.Values{"ok": true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	h.MustMount(svc)

	r := httptest.NewRequest(http.MethodGet, "/services/Noop/invoke/Ping", nil)
	// Warm pools and lazy state once.
	h.ServeHTTP(httptest.NewRecorder(), r)

	w := httptest.NewRecorder()
	allocs := testing.AllocsPerRun(200, func() {
		w.Body.Reset()
		h.ServeHTTP(w, r)
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if allocs > 40 {
		t.Errorf("dispatch allocates %.1f/op, ceiling 40", allocs)
	}
}

// TestDispatchAllocCeilingParallel re-pins the dispatch budget with the
// request running from interleaved goroutines — the schedule where a
// shared-state regression (a lock guarding an alloc-heavy slow path, a
// pool defeated by contention) shows up as allocs the serial test never
// sees. Each goroutine owns its recorder and request; only the host is
// shared.
func TestDispatchAllocCeilingParallel(t *testing.T) {
	svc, err := core.NewService("Noop", "http://soc.example/noop", "")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:   "Ping",
		Output: []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, _ core.Values) (core.Values, error) {
			return core.Values{"ok": true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	h.MustMount(svc)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/services/Noop/invoke/Ping", nil))

	const workers, iters = 8, 400
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := httptest.NewRequest(http.MethodGet, "/services/Noop/invoke/Ping", nil)
			rec := httptest.NewRecorder()
			for i := 0; i < iters; i++ {
				rec.Body.Reset()
				h.ServeHTTP(rec, r)
			}
			if rec.Code != http.StatusOK {
				t.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()
	runtime.ReadMemStats(&after)
	// The per-goroutine request/recorder setup amortizes to noise over
	// the iteration count; the ceiling carries headroom for it.
	allocs := float64(after.Mallocs-before.Mallocs) / float64(workers*iters)
	if allocs > 44 {
		t.Errorf("parallel dispatch allocates %.1f/op, ceiling 44", allocs)
	}
}
