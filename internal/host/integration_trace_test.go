package host

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/telemetry"
	"soc/internal/workflow"
)

// tracedPolicy is quickPolicy with an explicit tracer, so each test owns
// its span ring instead of sharing the process default.
func tracedPolicy(tr *telemetry.Tracer) Policy {
	p := quickPolicy()
	p.Tracer = tr
	return p
}

// faultedAddHost returns an Add host whose invocations run through a
// fault injector, with injected faults recorded into the host's tracer.
func faultedAddHost(t *testing.T, plan faultinject.Plan) (*Host, *faultinject.Injector) {
	t.Helper()
	h := newAddHost(t)
	inj, err := faultinject.New(plan)
	if err != nil {
		t.Fatal(err)
	}
	inj.Tracer = h.Tracer()
	h.Use(inj.Middleware())
	return h, inj
}

// alwaysError fails every call to Calc.Add.
func alwaysError() faultinject.Plan {
	return faultinject.Plan{Rules: map[string]faultinject.Rule{
		"Calc.Add": {ErrorRate: 1},
	}}
}

// firstCallError fails only the first call to Calc.Add: the burst window
// forces the (negligible) base rate to certainty for exactly one call.
func firstCallError() faultinject.Plan {
	return faultinject.Plan{Rules: map[string]faultinject.Rule{
		"Calc.Add": {ErrorRate: 1e-12, Burst: faultinject.Burst{Every: 1 << 30, Length: 1}},
	}}
}

func childrenNamed(n *telemetry.Node, name string) []*telemetry.Node {
	var out []*telemetry.Node
	for _, c := range n.Children {
		if c.Span.Name == name {
			out = append(out, c)
		}
	}
	return out
}

func childOfKind(n *telemetry.Node, kind telemetry.Kind) *telemetry.Node {
	for _, c := range n.Children {
		if c.Span.Kind == kind {
			return c
		}
	}
	return nil
}

func hasAnnotation(sp telemetry.Span, key, value string) bool {
	for _, a := range sp.Annotations() {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}

// TestResilientCallUnderFaultsOneTraceTree drives a single ResilientClient
// call across three fault-injected hosts — replicas A and B always fail,
// C fails only its first call — and asserts that the merged client- and
// provider-side span rings reassemble into exactly one trace tree whose
// per-attempt spans match the attempt sequence: A err, B err, C err
// (pass 1), then A err, B err, C ok (retry pass 2).
func TestResilientCallUnderFaultsOneTraceTree(t *testing.T) {
	hA, _ := faultedAddHost(t, alwaysError())
	hB, _ := faultedAddHost(t, alwaysError())
	hC, _ := faultedAddHost(t, firstCallError())
	srvA := httptest.NewServer(hA)
	defer srvA.Close()
	srvB := httptest.NewServer(hB)
	defer srvB.Close()
	srvC := httptest.NewServer(hC)
	defer srvC.Close()

	ct := telemetry.NewTracer(256)
	rc, err := NewResilientClient(tracedPolicy(ct), srvA.URL, srvB.URL, srvC.URL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 19, "b": 23})
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if out["sum"] != float64(42) {
		t.Errorf("sum = %v", out["sum"])
	}
	attempts, failovers, _, _ := rc.Counters()
	if attempts != 6 || failovers != 4 {
		t.Errorf("counters: attempts=%d failovers=%d, want 6 and 4", attempts, failovers)
	}

	spans := ct.Snapshot()
	spans = append(spans, hA.Tracer().Snapshot()...)
	spans = append(spans, hB.Tracer().Snapshot()...)
	spans = append(spans, hC.Tracer().Snapshot()...)
	trees := telemetry.BuildTraces(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d trace trees, want 1:\n%s", len(trees), telemetry.FormatTraces(trees))
	}
	tree := trees[0]
	if len(tree.Roots) != 1 {
		t.Fatalf("got %d roots, want 1:\n%s", len(tree.Roots), tree.Format())
	}
	root := tree.Roots[0]
	if root.Span.Kind != telemetry.KindClient || root.Span.Name != "Calc.Add" || root.Span.Err != "" {
		t.Errorf("root span = %s %s err=%q", root.Span.Kind, root.Span.Name, root.Span.Err)
	}
	if !hasAnnotation(root.Span, "attempts", "6") {
		t.Errorf("root missing attempts=6 annotation: %v", root.Span.Annotations())
	}

	attemptSpans := childrenNamed(root, "attempt")
	if len(attemptSpans) != 6 {
		t.Fatalf("got %d attempt spans, want 6:\n%s", len(attemptSpans), tree.Format())
	}
	wantTargets := []string{srvA.URL, srvB.URL, srvC.URL, srvA.URL, srvB.URL, srvC.URL}
	faultEvents := 0
	for i, at := range attemptSpans {
		if at.Span.Attempt != i+1 {
			t.Errorf("attempt %d numbered %d", i+1, at.Span.Attempt)
		}
		if at.Span.Target != wantTargets[i] {
			t.Errorf("attempt %d target = %s, want %s", i+1, at.Span.Target, wantTargets[i])
		}
		failed := i < 5
		if (at.Span.Err != "") != failed {
			t.Errorf("attempt %d err = %q, want failed=%v", i+1, at.Span.Err, failed)
		}
		if f := childOfKind(at, telemetry.KindFault); f != nil {
			faultEvents++
			if !hasAnnotation(f.Span, "fault", "error") {
				t.Errorf("fault event annotations = %v", f.Span.Annotations())
			}
		}
	}
	if faultEvents != 5 {
		t.Errorf("got %d fault events, want 5 (one per injected failure):\n%s", faultEvents, tree.Format())
	}
	// The successful final attempt nests C's provider dispatch span.
	last := attemptSpans[5]
	srvSpan := childOfKind(last, telemetry.KindServer)
	if srvSpan == nil {
		t.Fatalf("successful attempt has no server dispatch child:\n%s", tree.Format())
	}
	if srvSpan.Span.Name != "Calc.Add" || !hasAnnotation(srvSpan.Span, "binding", "rest") {
		t.Errorf("server span = %q annotations %v", srvSpan.Span.Name, srvSpan.Span.Annotations())
	}
}

// newIdempotentAddHost is newAddHost with the operation declared
// idempotent, so the response cache may answer repeats.
func newIdempotentAddHost(t *testing.T) *Host {
	t.Helper()
	svc, err := core.NewService("Calc", "http://soc.example/calc", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:       "Add",
		Idempotent: true,
		Input:      []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output:     []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	h := New()
	h.MustMount(svc)
	return h
}

// TestRespcacheTraceAnnotationsAndMetrics asserts the cache plane's trace
// contract: a cold call's dispatch span is annotated respcache=miss, a
// repeat renders as a zero-duration cached span in the second call's
// trace, and /metricz counts the hit apart from the latency-sampled
// calls so cached answers can't skew QoS-feeding histograms.
func TestRespcacheTraceAnnotationsAndMetrics(t *testing.T) {
	h := newIdempotentAddHost(t)
	h.UseResponseCache(64, time.Minute)
	srv := httptest.NewServer(h)
	defer srv.Close()

	ct := telemetry.NewTracer(64)
	c := NewClient(srv.URL)
	c.Tracer = ct
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	spans := append(ct.Snapshot(), h.Tracer().Snapshot()...)
	trees := telemetry.BuildTraces(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d trace trees, want 2 (one per call):\n%s", len(trees), telemetry.FormatTraces(trees))
	}
	cold, warm := trees[0], trees[1]

	srvSpan := childOfKind(cold.Roots[0], telemetry.KindServer)
	if srvSpan == nil || !hasAnnotation(srvSpan.Span, "respcache", "miss") {
		t.Errorf("cold dispatch span missing respcache=miss:\n%s", cold.Format())
	}
	hit := childOfKind(warm.Roots[0], telemetry.KindCache)
	if hit == nil {
		t.Fatalf("warm call has no cache span:\n%s", warm.Format())
	}
	if !hit.Span.Cached || hit.Span.Duration != 0 || hit.Span.Name != "Calc.Add" ||
		!hasAnnotation(hit.Span, "respcache", "hit") {
		t.Errorf("cache span = %+v", hit.Span)
	}
	if childOfKind(warm.Roots[0], telemetry.KindServer) != nil {
		t.Errorf("warm call reached dispatch despite the cache hit:\n%s", warm.Format())
	}

	// /metricz: one latency-sampled call, one hit counted apart.
	resp, err := http.Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		BucketBoundsNanos []int64 `json:"bucketBoundsNanos"`
		Operations        map[string]struct {
			Calls     uint64   `json:"calls"`
			Errors    uint64   `json:"errors"`
			CacheHits uint64   `json:"cacheHits"`
			Histogram []uint64 `json:"histogram"`
		} `json:"operations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	op, ok := report.Operations["Calc.Add"]
	if !ok {
		t.Fatalf("metricz missing Calc.Add: %+v", report.Operations)
	}
	if op.Calls != 1 || op.Errors != 0 || op.CacheHits != 1 {
		t.Errorf("metricz Calc.Add = %+v, want calls=1 errors=0 cacheHits=1", op)
	}
	var sampled uint64
	for _, n := range op.Histogram {
		sampled += n
	}
	if sampled != 1 {
		t.Errorf("histogram holds %d samples, want 1 (hits excluded)", sampled)
	}

	// /tracez renders the same ring, as JSON and as an ASCII tree.
	resp2, err := http.Get(srv.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tz struct {
		Recorded uint64            `json:"recorded"`
		Retained int               `json:"retained"`
		Spans    []json.RawMessage `json:"spans"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&tz); err != nil {
		t.Fatal(err)
	}
	if tz.Retained == 0 || len(tz.Spans) != tz.Retained {
		t.Errorf("tracez retained=%d spans=%d", tz.Retained, len(tz.Spans))
	}
	resp3, err := http.Get(srv.URL + "/tracez?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	tree, err := io.ReadAll(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tree), "trace ") || !strings.Contains(string(tree), "(cached)") {
		t.Errorf("tracez tree rendering missing expected content:\n%s", tree)
	}
}

// invoking adapts a host client (plain or resilient) to workflow.Invoker.
func invoking(call func(ctx context.Context, service, op string, args core.Values) (core.Values, error)) workflow.Invoker {
	return workflow.InvokerFunc(func(ctx context.Context, service, op string, args map[string]any) (map[string]any, error) {
		out, err := call(ctx, service, op, core.Values(args))
		return map[string]any(out), err
	})
}

// TestWorkflowCompositionOneTraceAcrossThreeHosts composes three service
// invocations across three hosts — the second surviving one injected
// error via retry, the third failing over from an always-faulting replica
// — and asserts the whole composition reassembles into a single trace
// tree: workflow activity spans under the sequence root, client spans
// under their activities, and attempt parentage matching the attempt
// sequence on each resilient leg.
func TestWorkflowCompositionOneTraceAcrossThreeHosts(t *testing.T) {
	hA := newAddHost(t)
	srvA := httptest.NewServer(hA)
	defer srvA.Close()
	hB, _ := faultedAddHost(t, firstCallError())
	srvB := httptest.NewServer(hB)
	defer srvB.Close()
	hC1, _ := faultedAddHost(t, alwaysError())
	srvC1 := httptest.NewServer(hC1)
	defer srvC1.Close()
	hC2 := newAddHost(t)
	srvC2 := httptest.NewServer(hC2)
	defer srvC2.Close()

	ct := telemetry.NewTracer(256)
	cA := NewClient(srvA.URL)
	cA.Tracer = ct
	rcB, err := NewResilientClient(tracedPolicy(ct), srvB.URL)
	if err != nil {
		t.Fatal(err)
	}
	rcC, err := NewResilientClient(tracedPolicy(ct), srvC1.URL, srvC2.URL)
	if err != nil {
		t.Fatal(err)
	}

	wf, err := workflow.New("quote", &workflow.Sequence{
		Label: "quote",
		Steps: []workflow.Activity{
			&workflow.Invoke{Label: "base", Service: "Calc", Operation: "Add", Invoker: invoking(cA.Call),
				Inputs: map[string]string{"a": "x", "b": "y"}, Outputs: map[string]string{"sum": "base"}},
			&workflow.Invoke{Label: "taxed", Service: "Calc", Operation: "Add", Invoker: invoking(rcB.Call),
				Inputs: map[string]string{"a": "base", "b": "tax"}, Outputs: map[string]string{"sum": "taxed"}},
			&workflow.Invoke{Label: "total", Service: "Calc", Operation: "Add", Invoker: invoking(rcC.Call),
				Inputs: map[string]string{"a": "taxed", "b": "fee"}, Outputs: map[string]string{"sum": "total"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := telemetry.ContextWithTracer(context.Background(), ct)
	out, _, err := wf.Run(ctx, map[string]any{"x": 19, "y": 23, "tax": 8, "fee": 50})
	if err != nil {
		t.Fatalf("workflow: %v", err)
	}
	if got := out["total"]; got != float64(100) {
		t.Errorf("total = %v, want 100", got)
	}

	spans := ct.Snapshot()
	for _, h := range []*Host{hA, hB, hC1, hC2} {
		spans = append(spans, h.Tracer().Snapshot()...)
	}
	trees := telemetry.BuildTraces(spans)
	if len(trees) != 1 {
		t.Fatalf("got %d trace trees, want 1:\n%s", len(trees), telemetry.FormatTraces(trees))
	}
	tree := trees[0]
	if len(tree.Roots) != 1 {
		t.Fatalf("got %d roots, want 1:\n%s", len(tree.Roots), tree.Format())
	}
	root := tree.Roots[0]
	if root.Span.Kind != telemetry.KindWorkflow || root.Span.Name != "quote" {
		t.Fatalf("root = %s %s, want workflow quote", root.Span.Kind, root.Span.Name)
	}
	if len(root.Children) != 3 {
		t.Fatalf("sequence has %d activity children, want 3:\n%s", len(root.Children), tree.Format())
	}
	for i, want := range []string{"base", "taxed", "total"} {
		act := root.Children[i]
		if act.Span.Kind != telemetry.KindWorkflow || act.Span.Name != want {
			t.Errorf("activity %d = %s %s, want workflow %s", i, act.Span.Kind, act.Span.Name, want)
		}
		client := childOfKind(act, telemetry.KindClient)
		if client == nil || client.Span.Name != "Calc.Add" {
			t.Fatalf("activity %s has no Calc.Add client child:\n%s", want, tree.Format())
		}
	}

	// Leg B: one retry — attempt 1 faulted, attempt 2 clean, same replica.
	legB := childOfKind(root.Children[1], telemetry.KindClient)
	bAttempts := childrenNamed(legB, "attempt")
	if len(bAttempts) != 2 || bAttempts[0].Span.Err == "" || bAttempts[1].Span.Err != "" {
		t.Errorf("retry leg attempts wrong:\n%s", tree.Format())
	}
	if childOfKind(bAttempts[0], telemetry.KindFault) == nil {
		t.Errorf("retry leg's failed attempt lacks its fault event:\n%s", tree.Format())
	}

	// Leg C: one failover hop — C1 fails, C2 answers.
	legC := childOfKind(root.Children[2], telemetry.KindClient)
	cAttempts := childrenNamed(legC, "attempt")
	if len(cAttempts) != 2 ||
		cAttempts[0].Span.Target != srvC1.URL || cAttempts[0].Span.Err == "" ||
		cAttempts[1].Span.Target != srvC2.URL || cAttempts[1].Span.Err != "" {
		t.Errorf("failover leg attempts wrong:\n%s", tree.Format())
	}
	if childOfKind(cAttempts[1], telemetry.KindServer) == nil {
		t.Errorf("failover leg's success lacks its dispatch span:\n%s", tree.Format())
	}

	_, failoversB, _, _ := rcB.Counters()
	_, failoversC, _, _ := rcC.Counters()
	if failoversB != 0 || failoversC != 1 {
		t.Errorf("failovers B=%d C=%d, want 0 and 1", failoversB, failoversC)
	}
}
