package host

import (
	"net/http"
	"time"

	"soc/internal/rest"
	"soc/internal/telemetry"
)

// Tracer exposes the host's span ring, so tests and composition harnesses
// can merge provider-side spans with client-side ones into one trace tree.
func (h *Host) Tracer() *telemetry.Tracer { return h.tracer }

// tracezSpan is the wire form of one recorded span.
type tracezSpan struct {
	Trace       string                 `json:"trace"`
	Span        string                 `json:"span"`
	Parent      string                 `json:"parent,omitempty"`
	Name        string                 `json:"name"`
	Kind        telemetry.Kind         `json:"kind"`
	Target      string                 `json:"target,omitempty"`
	Attempt     int                    `json:"attempt,omitempty"`
	Start       time.Time              `json:"start"`
	Nanos       int64                  `json:"durationNanos"`
	Error       string                 `json:"error,omitempty"`
	Cached      bool                   `json:"cached,omitempty"`
	Annotations []telemetry.Annotation `json:"annotations,omitempty"`
}

// tracezReport is the GET /tracez document.
type tracezReport struct {
	// Recorded counts spans ever recorded; Retained is how many the ring
	// still holds (oldest first in Spans).
	Recorded uint64       `json:"recorded"`
	Retained int          `json:"retained"`
	Spans    []tracezSpan `json:"spans"`
}

// handleTracez dumps the span ring. ?format=tree renders reassembled
// trace trees as text instead of the JSON span list.
func (h *Host) handleTracez(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	spans := h.tracer.Snapshot()
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(telemetry.FormatTraces(telemetry.BuildTraces(spans))))
		return
	}
	report := tracezReport{Recorded: h.tracer.Recorded(), Retained: len(spans), Spans: make([]tracezSpan, len(spans))}
	for i, sp := range spans {
		ts := tracezSpan{
			Trace:   sp.TraceID.String(),
			Span:    sp.SpanID.String(),
			Name:    sp.Name,
			Kind:    sp.Kind,
			Target:  sp.Target,
			Attempt: sp.Attempt,
			Start:   sp.Start,
			Nanos:   int64(sp.Duration),
			Error:   sp.Err,
			Cached:  sp.Cached,
		}
		if !sp.Parent.IsZero() {
			ts.Parent = sp.Parent.String()
		}
		if anns := sp.Annotations(); len(anns) > 0 {
			ts.Annotations = append([]telemetry.Annotation(nil), anns...)
		}
		report.Spans[i] = ts
	}
	rest.WriteResponse(w, r, http.StatusOK, report)
}

// metriczOp is one operation's entry in the GET /metricz document.
type metriczOp struct {
	Calls     uint64   `json:"calls"`
	Errors    uint64   `json:"errors"`
	CacheHits uint64   `json:"cacheHits"`
	MeanNanos int64    `json:"meanNanos"`
	Histogram []uint64 `json:"histogram"`
}

// metriczReport is the GET /metricz document: the same instrument set the
// trace plane and Stats read, plus the shared histogram bucket bounds.
type metriczReport struct {
	BucketBoundsNanos []int64              `json:"bucketBoundsNanos"`
	Operations        map[string]metriczOp `json:"operations"`
}

func (h *Host) handleMetricz(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	snap := h.instr.Snapshot()
	report := metriczReport{
		BucketBoundsNanos: make([]int64, len(telemetry.BucketBounds)),
		Operations:        make(map[string]metriczOp, len(snap)),
	}
	for i, b := range telemetry.BucketBounds {
		report.BucketBoundsNanos[i] = int64(b)
	}
	for key, om := range snap {
		report.Operations[key] = metriczOp{
			Calls:     om.Calls,
			Errors:    om.Errors,
			CacheHits: om.CacheHits,
			MeanNanos: int64(om.MeanTime()),
			Histogram: append([]uint64(nil), om.Buckets[:]...),
		}
	}
	rest.WriteResponse(w, r, http.StatusOK, report)
}
