package host

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"soc/internal/core"
)

func TestHostMetricsRecordBothBindings(t *testing.T) {
	h := New()
	h.MustMount(calcService(t))
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CallSOAP(ctx, "Calc", "Add", "http://soc.example/calc", core.Values{"a": 1, "b": 2}); err != nil {
		t.Fatal(err)
	}
	// One failing call (division by zero).
	_, _ = c.Call(ctx, "Calc", "Div", core.Values{"a": 1, "b": 0})

	stats := h.Stats()
	add := stats["Calc.Add"]
	if add.Calls != 4 || add.Errors != 0 {
		t.Errorf("Add stats = %+v", add)
	}
	div := stats["Calc.Div"]
	if div.Calls != 1 || div.Errors != 1 {
		t.Errorf("Div stats = %+v", div)
	}
	if add.MeanTime() < 0 || add.TotalTime <= 0 {
		t.Errorf("Add timing = %+v", add)
	}
	keys := h.StatKeys()
	if len(keys) != 2 || keys[0] != "Calc.Add" || keys[1] != "Calc.Div" {
		t.Errorf("keys = %v", keys)
	}
}

func TestStatsEndpoint(t *testing.T) {
	h := New()
	h.MustMount(calcService(t))
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/services/Calc/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []struct {
		Operation string `json:"operation"`
		Calls     uint64 `json:"calls"`
		Errors    uint64 `json:"errors"`
		MeanNanos int64  `json:"meanNanos"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Operation != "Add" || entries[0].Calls != 2 {
		t.Errorf("entries = %+v", entries)
	}
	if entries[0].MeanNanos <= 0 {
		t.Errorf("mean = %d", entries[0].MeanNanos)
	}
	resp2, err := ts.Client().Get(ts.URL + "/services/Ghost/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("ghost stats = %d", resp2.StatusCode)
	}
}

func TestOpStatsZero(t *testing.T) {
	var s OpStats
	if s.MeanTime() != 0 {
		t.Error("zero stats mean nonzero")
	}
	s = OpStats{Calls: 2, TotalTime: 10 * time.Millisecond}
	if s.MeanTime() != 5*time.Millisecond {
		t.Errorf("mean = %v", s.MeanTime())
	}
}
