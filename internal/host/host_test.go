package host

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"soc/internal/core"
)

func calcService(t *testing.T) *core.Service {
	t.Helper()
	svc, err := core.NewService("Calc", "http://soc.example/calc", "arithmetic")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	svc.MustAddOperation(core.Operation{
		Name:   "Div",
		Input:  []core.Param{{Name: "a", Type: core.Float}, {Name: "b", Type: core.Float}},
		Output: []core.Param{{Name: "q", Type: core.Float}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			if in.Float("b") == 0 {
				return nil, errors.New("division by zero")
			}
			return core.Values{"q": in.Float("a") / in.Float("b")}, nil
		},
	})
	return svc
}

func newTestHost(t *testing.T) (*Host, *httptest.Server) {
	t.Helper()
	h := New()
	h.MustMount(calcService(t))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	h.BaseURL = ts.URL
	return h, ts
}

func TestMountValidation(t *testing.T) {
	h := New()
	if err := h.Mount(nil); err == nil {
		t.Error("nil service accepted")
	}
	svc := calcService(t)
	if err := h.Mount(svc); err != nil {
		t.Fatal(err)
	}
	if err := h.Mount(svc); err == nil {
		t.Error("duplicate mount accepted")
	}
	if _, ok := h.Service("Calc"); !ok {
		t.Error("Service lookup failed")
	}
	if names := h.Names(); len(names) != 1 || names[0] != "Calc" {
		t.Errorf("Names = %v", names)
	}
}

func TestRESTInvokePost(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	out, err := c.Call(context.Background(), "Calc", "Add", core.Values{"a": 19, "b": 23})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	// JSON numbers decode as float64 on the client side.
	if out.Float("sum") != 42 {
		t.Errorf("sum = %v", out["sum"])
	}
}

func TestRESTInvokeGetQueryParams(t *testing.T) {
	_, ts := newTestHost(t)
	resp, err := http.Get(ts.URL + "/services/Calc/invoke/Add?a=1&b=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"sum": 3`) {
		t.Errorf("GET invoke: %d %s", resp.StatusCode, body)
	}
}

func TestRESTInvokeXML(t *testing.T) {
	_, ts := newTestHost(t)
	req, _ := http.NewRequest("GET", ts.URL+"/services/Calc/invoke/Add?a=1&b=2", nil)
	req.Header.Set("Accept", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "<sum>3</sum>") {
		t.Errorf("xml invoke body = %s", body)
	}
}

func TestRESTErrors(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	ctx := context.Background()
	if _, err := c.Call(ctx, "Ghost", "Add", nil); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown service: %v", err)
	}
	if _, err := c.Call(ctx, "Calc", "Ghost", nil); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown op: %v", err)
	}
	_, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1})
	if err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Errorf("missing param: %v", err)
	}
	_, err = c.Call(ctx, "Calc", "Div", core.Values{"a": 1, "b": 0})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("handler error: %v", err)
	}
}

func TestSOAPInvoke(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	out, err := c.CallSOAP(context.Background(), "Calc", "Add", "http://soc.example/calc", core.Values{"a": 40, "b": 2})
	if err != nil {
		t.Fatalf("CallSOAP: %v", err)
	}
	if out["sum"] != "42" {
		t.Errorf("sum = %q", out["sum"])
	}
}

func TestSOAPFaults(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	_, err := c.CallSOAP(context.Background(), "Calc", "Add", "", core.Values{"a": "junk", "b": 2})
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("coercion fault: %v", err)
	}
	_, err = c.CallSOAP(context.Background(), "Calc", "Div", "", core.Values{"a": 1, "b": 0})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("server fault: %v", err)
	}
}

func TestWSDLEndToEnd(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	d, err := c.Describe(context.Background(), "Calc")
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if d.Name != "Calc" || len(d.Ops) != 2 {
		t.Errorf("description = %+v", d)
	}
	if d.Endpoint != ts.URL+"/services/Calc/soap" {
		t.Errorf("endpoint = %q", d.Endpoint)
	}
	// The advertised endpoint must actually answer SOAP calls.
	out, err := c.CallSOAP(context.Background(), "Calc", d.Ops[0].Name, d.Namespace, core.Values{"a": 1, "b": 1})
	if err != nil || out["sum"] != "2" {
		t.Errorf("call via described endpoint: %v %v", out, err)
	}
}

func TestListServices(t *testing.T) {
	h, ts := newTestHost(t)
	second, _ := core.NewService("Echo", "http://soc.example/echo", "")
	second.MustAddOperation(core.Operation{
		Name:   "Echo",
		Input:  []core.Param{{Name: "text", Type: core.String}},
		Output: []core.Param{{Name: "echo", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"echo": in.Str("text")}, nil
		},
	})
	h.MustMount(second)
	c := NewClient(ts.URL)
	list, err := c.List(context.Background())
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 2 || list[0].Name != "Calc" || list[1].Name != "Echo" {
		t.Errorf("list = %+v", list)
	}
}

func TestDescribeJSON(t *testing.T) {
	_, ts := newTestHost(t)
	resp, err := http.Get(ts.URL + "/services/Calc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	s := string(body)
	for _, want := range []string{`"name": "Calc"`, `"operations"`, `"soap"`, `"rest"`, `"wsdl"`} {
		if !strings.Contains(s, want) {
			t.Errorf("describe missing %q in %s", want, s)
		}
	}
	resp2, err := http.Get(ts.URL + "/services/Nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("describe unknown = %d", resp2.StatusCode)
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, ts := newTestHost(t)
	c := NewClient(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err == nil {
		t.Error("canceled context accepted")
	}
}
