package host

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/soap"
)

// newCachedHost builds a host with one idempotent and one non-idempotent
// operation, both counting invocations, plus the response cache.
func newCachedHost(t *testing.T, capacity int, ttl time.Duration) (*Host, *atomic.Int64, *atomic.Int64, interface {
	SetClock(func() time.Time)
}) {
	t.Helper()
	var pureCalls, mutCalls atomic.Int64
	svc, err := core.NewService("Calc", "http://soc.example/calc", "test service")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:       "Square",
		Idempotent: true,
		Input:      []core.Param{{Name: "n", Type: core.Int}},
		Output:     []core.Param{{Name: "result", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			pureCalls.Add(1)
			n := in.Int("n")
			return core.Values{"result": n * n}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:   "Bump",
		Input:  []core.Param{{Name: "n", Type: core.Int}},
		Output: []core.Param{{Name: "count", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"count": mutCalls.Add(1)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	h.MustMount(svc)
	c := h.UseResponseCache(capacity, ttl)
	return h, &pureCalls, &mutCalls, c
}

func getInvoke(h *Host, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestCacheMiddlewareHit(t *testing.T) {
	h, pure, _, _ := newCachedHost(t, 8, time.Minute)
	w1 := getInvoke(h, "/services/Calc/invoke/Square?n=7")
	w2 := getInvoke(h, "/services/Calc/invoke/Square?n=7")
	w3 := getInvoke(h, "/services/Calc/invoke/Square?n=8")
	if w1.Code != 200 || w2.Code != 200 || w3.Code != 200 {
		t.Fatalf("status codes %d/%d/%d", w1.Code, w2.Code, w3.Code)
	}
	if got := w1.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("first request X-Cache = %q, want MISS", got)
	}
	if got := w2.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("repeat request X-Cache = %q, want HIT", got)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Errorf("cached body differs: %q vs %q", w1.Body.String(), w2.Body.String())
	}
	if !strings.Contains(w3.Body.String(), "64") {
		t.Errorf("distinct params served stale entry: %q", w3.Body.String())
	}
	if n := pure.Load(); n != 2 {
		t.Errorf("handler ran %d times, want 2 (n=7 cached, n=8 fresh)", n)
	}
}

func TestCacheMiddlewareTTLExpiry(t *testing.T) {
	h, pure, _, clk := newCachedHost(t, 8, time.Minute)
	now := time.Unix(1000, 0)
	clk.SetClock(func() time.Time { return now })

	getInvoke(h, "/services/Calc/invoke/Square?n=7")
	now = now.Add(30 * time.Second)
	if w := getInvoke(h, "/services/Calc/invoke/Square?n=7"); w.Header().Get("X-Cache") != "HIT" {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(31 * time.Second) // 61s > TTL since fill
	if w := getInvoke(h, "/services/Calc/invoke/Square?n=7"); w.Header().Get("X-Cache") != "MISS" {
		t.Fatal("entry served past TTL")
	}
	if n := pure.Load(); n != 2 {
		t.Errorf("handler ran %d times, want 2", n)
	}
}

func TestCacheMiddlewareLRUBound(t *testing.T) {
	h, pure, _, _ := newCachedHost(t, 2, time.Minute)
	getInvoke(h, "/services/Calc/invoke/Square?n=1")
	getInvoke(h, "/services/Calc/invoke/Square?n=2")
	getInvoke(h, "/services/Calc/invoke/Square?n=3") // evicts n=1
	if w := getInvoke(h, "/services/Calc/invoke/Square?n=1"); w.Header().Get("X-Cache") != "MISS" {
		t.Fatal("evicted entry still served")
	}
	if n := pure.Load(); n != 4 {
		t.Errorf("handler ran %d times, want 4", n)
	}
}

func TestCacheMiddlewareNonIdempotentBypass(t *testing.T) {
	h, _, mut, _ := newCachedHost(t, 8, time.Minute)
	w1 := getInvoke(h, "/services/Calc/invoke/Bump?n=1")
	w2 := getInvoke(h, "/services/Calc/invoke/Bump?n=1")
	if w1.Code != 200 || w2.Code != 200 {
		t.Fatalf("status %d/%d", w1.Code, w2.Code)
	}
	if w1.Header().Get("X-Cache") != "" || w2.Header().Get("X-Cache") != "" {
		t.Error("non-idempotent operation went through the cache")
	}
	if n := mut.Load(); n != 2 {
		t.Errorf("handler ran %d times, want 2 (every request)", n)
	}
	if w1.Body.String() == w2.Body.String() {
		t.Error("non-idempotent responses identical; a cached replay leaked")
	}
}

func TestCacheMiddlewarePOSTCanonicalization(t *testing.T) {
	h, pure, _, _ := newCachedHost(t, 8, time.Minute)
	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/services/Calc/invoke/Square", strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(w, r)
		return w
	}
	w1 := post(`{"n": 7}`)
	w2 := post(`{ "n" : 7 }`) // same params, different serialization
	if w1.Code != 200 || w2.Code != 200 {
		t.Fatalf("status %d/%d: %s / %s", w1.Code, w2.Code, w1.Body, w2.Body)
	}
	if w2.Header().Get("X-Cache") != "HIT" {
		t.Error("canonically equal POST bodies did not share a cache entry")
	}
	if n := pure.Load(); n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
}

func TestCacheMiddlewareSOAP(t *testing.T) {
	h, pure, _, _ := newCachedHost(t, 8, time.Minute)
	call := func() *httptest.ResponseRecorder {
		env, err := soap.Encode(soap.Message{Operation: "Square", Params: map[string]string{"n": "6"}})
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/services/Calc/soap", strings.NewReader(string(env)))
		r.Header.Set("Content-Type", soap.ContentType)
		h.ServeHTTP(w, r)
		return w
	}
	w1 := call()
	w2 := call()
	if w1.Code != 200 || w2.Code != 200 {
		t.Fatalf("status %d/%d: %s", w1.Code, w2.Code, w1.Body)
	}
	if w2.Header().Get("X-Cache") != "HIT" {
		t.Error("identical SOAP request not served from cache")
	}
	if !strings.Contains(w2.Body.String(), "36") {
		t.Errorf("cached SOAP body = %q", w2.Body.String())
	}
	if n := pure.Load(); n != 1 {
		t.Errorf("handler ran %d times, want 1", n)
	}
}

func TestCacheMiddlewareSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	svc, err := core.NewService("Slow", "http://soc.example/slow", "")
	if err != nil {
		t.Fatal(err)
	}
	err = svc.AddOperation(core.Operation{
		Name:       "Wait",
		Idempotent: true,
		Output:     []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, _ core.Values) (core.Values, error) {
			calls.Add(1)
			<-release
			return core.Values{"ok": true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	h.MustMount(svc)
	h.UseResponseCache(8, time.Minute)

	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := getInvoke(h, "/services/Slow/invoke/Wait")
			codes[i] = w.Code
		}(i)
	}
	// Let the stampede pile onto the single flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, code := range codes {
		if code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("stampede of %d identical requests ran the handler %d times, want 1", n, got)
	}
}
