package host

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"soc/internal/respcache"
	"soc/internal/rest"
	"soc/internal/soap"
	"soc/internal/telemetry"
)

// maxCacheableBody bounds how much of a request body the cache keyer will
// buffer; larger requests bypass the cache rather than pin memory.
const maxCacheableBody = 1 << 20

// UseResponseCache installs the idempotent-response cache as router
// middleware and returns the cache for inspection and invalidation.
//
// Only invocation traffic is considered — REST invoke (GET or POST) and
// the SOAP endpoint — and only for operations explicitly declared
// Idempotent in their core.Operation. The key is the operation identity
// plus its canonicalized parameters plus the negotiated response format:
//
//   - GET invoke: query parameters (minus "format") sorted by name;
//   - POST invoke: the JSON body re-marshaled canonically (object keys
//     sorted), so {"a":1,"b":2} and {"b":2,"a":1} share an entry;
//   - SOAP: the envelope's operation and its parameters sorted by name
//     (whitespace and parameter order in the envelope don't split keys).
//
// Only 200 responses are stored; error responses are returned to every
// collapsed waiter but never cached. Mutations don't flow through keyed
// routes, so there is no write-path invalidation: staleness is bounded
// by the TTL, and Invalidate is available for explicit busts.
func (h *Host) UseResponseCache(capacity int, ttl time.Duration) *respcache.Cache {
	c := respcache.New(capacity, ttl)
	h.Use(h.cacheMiddleware(c))
	return c
}

func (h *Host) cacheMiddleware(c *respcache.Cache) rest.Middleware {
	return func(next rest.HandlerFunc) rest.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p rest.Params) {
			key, opKey, ok := h.cacheKey(r, p)
			if !ok {
				next(w, r, p)
				return
			}
			entry, hit := c.Do(key, func() (*respcache.Entry, bool) {
				rec := respcache.NewRecorder()
				// Mark the miss so the dispatch span downstream annotates
				// itself "respcache=miss".
				next(rec, r.WithContext(telemetry.MarkCacheMiss(r.Context())), p)
				e := rec.Entry()
				return e, e.Status == http.StatusOK
			})
			if hit {
				// Direct canonical-key assignment of a shared value slice:
				// Header.Set canonicalizes and allocates a fresh []string on
				// every hit, which is measurable on the replay path. The
				// shared slices are full (len == cap), so a handler appending
				// to one reallocates instead of mutating it.
				w.Header()["X-Cache"] = xCacheHit
				// A hit is a zero-duration cached span in the caller's
				// trace — and deliberately NOT a latency sample: cached
				// answers would flatter every latency-derived QoS score.
				sc, _ := telemetry.FromHTTPHeader(r.Header)
				h.tracer.Event(sc, telemetry.KindCache, opKey, "respcache", "hit")
				h.instr.RecordCached(opKey)
			} else {
				w.Header()["X-Cache"] = xCacheMiss
			}
			entry.WriteTo(w)
		}
	}
}

// cacheKey derives the cache key for cacheable requests, plus the
// operation key ("Service.Operation") for cache-hit instrumentation. ok
// is false for anything that must bypass the cache: non-invocation
// routes, unknown or non-idempotent operations, unparseable bodies,
// oversized bodies.
func (h *Host) cacheKey(r *http.Request, p rest.Params) (key, opKey string, ok bool) {
	name := p["name"]
	if name == "" {
		return "", "", false
	}
	m, ok := h.mount(name)
	if !ok {
		return "", "", false
	}
	if opName := p["op"]; opName != "" {
		return h.invokeKey(r, m, opName)
	}
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/soap") {
		return h.soapKey(r, m)
	}
	return "", "", false
}

func (h *Host) invokeKey(r *http.Request, m *mounted, opName string) (string, string, bool) {
	op, err := m.svc.Operation(opName)
	if err != nil || !op.Idempotent {
		return "", "", false
	}
	var b strings.Builder
	b.Grow(len(r.Method) + len(r.URL.RawQuery) + 40)
	b.WriteString(r.Method)
	b.WriteByte(0)
	b.WriteString(rest.Negotiate(r))
	b.WriteByte(0)
	b.WriteString(m.metricKey(opName))
	b.WriteByte(0)
	switch r.Method {
	case http.MethodGet:
		// Parse the raw query into sorted pairs directly: building a full
		// url.Values map per request was the hottest call on the cache-hit
		// path. Semantics match the map form — first value per key wins,
		// keys sorted, "format" excluded (it is already the negotiated
		// component above).
		var qbuf [8]queryPair
		pairs := parseQueryPairs(qbuf[:0], r.URL.RawQuery)
		sortPairs(pairs)
		prev := ""
		for i, kv := range pairs {
			if kv.k == "format" || (i > 0 && kv.k == prev) {
				continue
			}
			prev = kv.k
			b.WriteString(kv.k)
			b.WriteByte(1)
			b.WriteString(kv.v)
			b.WriteByte(0)
		}
	case http.MethodPost:
		body, ok := swapBody(r)
		if !ok {
			return "", "", false
		}
		var params map[string]any
		if err := json.Unmarshal(body, &params); err != nil {
			return "", "", false // let the handler produce the error response
		}
		canon, err := json.Marshal(params) // map marshaling sorts keys
		if err != nil {
			return "", "", false
		}
		b.Write(canon)
	default:
		return "", "", false
	}
	return b.String(), m.metricKey(opName), true
}

func (h *Host) soapKey(r *http.Request, m *mounted) (string, string, bool) {
	body, ok := swapBody(r)
	if !ok {
		return "", "", false
	}
	msg, err := soap.DecodeBytes(body)
	if err != nil {
		return "", "", false
	}
	op, err := m.svc.Operation(msg.Operation)
	if err != nil || !op.Idempotent {
		return "", "", false
	}
	var b strings.Builder
	b.WriteString("SOAP\x00")
	b.WriteString(m.metricKey(msg.Operation))
	b.WriteByte(0)
	keys := make([]string, 0, len(msg.Params))
	for k := range msg.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(1)
		b.WriteString(msg.Params[k])
		b.WriteByte(0)
	}
	return b.String(), m.metricKey(msg.Operation), true
}

// Shared X-Cache header values, assigned by canonical key so the hit
// path never pays Header.Set's canonicalization or slice allocation.
var (
	xCacheHit  = []string{"HIT"}
	xCacheMiss = []string{"MISS"}
)

// queryPair is one raw-query key/value, unescaped.
type queryPair struct{ k, v string }

// sortPairs orders pairs by key with a stable insertion sort — queries
// have a handful of parameters, and sort.SliceStable's reflection costs
// more than the sort itself at that size. Stability keeps the first
// parsed value first among duplicate keys.
func sortPairs(pairs []queryPair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// parseQueryPairs splits a raw query into unescaped key/value pairs
// appended to dst, mirroring url.ParseQuery's tolerant semantics — pairs
// containing semicolons or invalid escapes are skipped, a pair without
// '=' reads as an empty value — without allocating a url.Values map.
// Unescaping runs only for tokens that actually contain escapes. Callers
// pass a stack-backed dst so typical queries never touch the heap.
func parseQueryPairs(dst []queryPair, raw string) []queryPair {
	pairs := dst
	for raw != "" {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		if strings.ContainsAny(k, "%+") {
			ku, err := url.QueryUnescape(k)
			if err != nil {
				continue
			}
			k = ku
		}
		if strings.ContainsAny(v, "%+") {
			vu, err := url.QueryUnescape(v)
			if err != nil {
				continue
			}
			v = vu
		}
		pairs = append(pairs, queryPair{k: k, v: v})
	}
	return pairs
}

// swapBody reads the request body (bounded) and replaces it with an
// equivalent reader so the inner handler can read it again.
func swapBody(r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCacheableBody+1))
	_ = r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil || len(body) > maxCacheableBody {
		return nil, false
	}
	return body, true
}
