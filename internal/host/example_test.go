package host_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"soc/internal/core"
	"soc/internal/host"
)

// Example mounts a service and consumes it over both standard bindings.
func Example() {
	svc, _ := core.NewService("Calc", "http://example.org/calc", "arithmetic")
	svc.MustAddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	h := host.New()
	h.MustMount(svc)
	server := httptest.NewServer(h)
	defer server.Close()

	client := host.NewClient(server.URL)
	ctx := context.Background()
	restOut, _ := client.Call(ctx, "Calc", "Add", core.Values{"a": 40, "b": 2})
	soapOut, _ := client.CallSOAP(ctx, "Calc", "Add", "http://example.org/calc", core.Values{"a": 40, "b": 2})
	fmt.Printf("rest=%v soap=%s\n", restOut["sum"], soapOut["sum"])
	// Output: rest=42 soap=42
}
