package host

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/reliability"
)

// newAddHost returns a host serving Calc.Add.
func newAddHost(t *testing.T) *Host {
	t.Helper()
	svc, err := core.NewService("Calc", "http://soc.example/calc", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Add",
		Input:  []core.Param{{Name: "a", Type: core.Int}, {Name: "b", Type: core.Int}},
		Output: []core.Param{{Name: "sum", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"sum": in.Int("a") + in.Int("b")}, nil
		},
	})
	h := New()
	h.MustMount(svc)
	return h
}

func TestHealthzEndpoint(t *testing.T) {
	h := newAddHost(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var report struct {
		Status   string `json:"status"`
		Services map[string]struct {
			Status     string `json:"status"`
			Operations int    `json:"operations"`
			Calls      uint64 `json:"calls"`
			Errors     uint64 `json:"errors"`
		} `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Status != "ok" {
		t.Errorf("host status = %q", report.Status)
	}
	calc, ok := report.Services["Calc"]
	if !ok {
		t.Fatalf("healthz missing Calc: %+v", report)
	}
	if calc.Status != "ok" || calc.Operations != 1 || calc.Calls != 3 || calc.Errors != 0 {
		t.Errorf("Calc health = %+v", calc)
	}
}

// A draining host answers probes with 503 so balancers steer away, but
// keeps serving real traffic for the work it still holds.
func TestHealthzDraining(t *testing.T) {
	h := newAddHost(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	h.SetDraining(true)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || report.Status != "draining" {
		t.Fatalf("draining healthz = %d %q, want 503 draining", resp.StatusCode, report.Status)
	}
	// The data path is unaffected: the host still answers calls.
	if _, err := NewClient(srv.URL).Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
		t.Fatalf("draining host refused a call: %v", err)
	}

	h.SetDraining(false)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered healthz status = %d, want 200", resp.StatusCode)
	}
}

// quickPolicy keeps tests fast: no real sleeping between retries.
func quickPolicy() Policy {
	return Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 3,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		},
	}
}

func TestResilientClientFailsOverToLiveReplica(t *testing.T) {
	live := httptest.NewServer(newAddHost(t))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused

	rc, err := NewResilientClient(quickPolicy(), dead.URL, live.URL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 19, "b": 23})
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if out["sum"] != float64(42) {
		t.Errorf("sum = %v", out["sum"])
	}
	attempts, failovers, _, _ := rc.Counters()
	if attempts < 2 || failovers < 1 {
		t.Errorf("counters: attempts=%d failovers=%d, want a failover hop", attempts, failovers)
	}
	// Sticky preference: the next call should go straight to the live
	// replica without burning an attempt on the dead one.
	before, _, _, _ := rc.Counters()
	if _, err := rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 1}); err != nil {
		t.Fatal(err)
	}
	after, _, _, _ := rc.Counters()
	if after-before != 1 {
		t.Errorf("sticky failover used %d attempts, want 1", after-before)
	}
}

func TestResilientClientSkipsDemotedReplica(t *testing.T) {
	live := httptest.NewServer(newAddHost(t))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	rc, err := NewResilientClient(quickPolicy(), dead.URL, live.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := rc.StartHealth(ctx, reliability.HealthCheckerConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer rc.StopHealth()
	rc.Health().CheckNow(ctx) // demotes the dead replica immediately

	if rc.Health().IsHealthy(dead.URL) {
		t.Fatal("dead replica still healthy after probe")
	}
	if _, err := rc.Call(ctx, "Calc", "Add", core.Values{"a": 2, "b": 2}); err != nil {
		t.Fatal(err)
	}
	_, _, skipped, _ := rc.Counters()
	if skipped < 1 {
		t.Errorf("skipped = %d, want >= 1 (demoted replica not bypassed)", skipped)
	}
	_, demotions, _ := rc.Health().Counters()
	if demotions != 1 {
		t.Errorf("demotions = %d, want 1", demotions)
	}
}

func TestResilientClientFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	p := quickPolicy()
	p.Fallback = func(_ context.Context, service, op string, args core.Values) (core.Values, error) {
		return core.Values{"sum": float64(-1), "degraded": true}, nil
	}
	rc, err := NewResilientClient(p, dead.URL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 2})
	if err != nil {
		t.Fatalf("fallback should mask total failure, got %v", err)
	}
	if out["degraded"] != true {
		t.Errorf("out = %v, want degraded answer", out)
	}
	_, _, _, fallbacks := rc.Counters()
	if fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
}

func TestResilientClientAllReplicasFailNoFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rc, err := NewResilientClient(quickPolicy(), dead.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 2}); err == nil {
		t.Fatal("call against dead replica succeeded")
	}
}

func TestResilientClientBreakerIsolation(t *testing.T) {
	live := httptest.NewServer(newAddHost(t))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	p := quickPolicy()
	// Sticky failover only ever offers the dead replica once, so one
	// failure must open its breaker for the isolation to be observable.
	p.BreakerThreshold = 1
	p.BreakerCooldown = time.Hour // once open, stays open for the test
	rc, err := NewResilientClient(p, dead.URL, live.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := rc.Call(ctx, "Calc", "Add", core.Values{"a": 1, "b": 2}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// The dead replica's breaker opened; the live one's stayed closed.
	if got := rc.replicas[0].breaker.State(); got != reliability.Open {
		t.Errorf("dead replica breaker = %v, want open", got)
	}
	if got := rc.replicas[1].breaker.State(); got != reliability.Closed {
		t.Errorf("live replica breaker = %v, want closed", got)
	}
}

func TestResilientClientBulkhead(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started.Done()
		<-release
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"sum":3}`))
	}))
	defer slow.Close()
	defer close(release)

	p := quickPolicy()
	p.MaxConcurrent = 1
	p.Retry.MaxAttempts = 1
	rc, err := NewResilientClient(p, slow.URL)
	if err != nil {
		t.Fatal(err)
	}
	started.Add(1)
	go rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 2})
	started.Wait() // the slow call holds the only slot
	_, err = rc.Call(context.Background(), "Calc", "Add", core.Values{"a": 1, "b": 2})
	if !errors.Is(err, reliability.ErrBulkheadFull) {
		t.Errorf("second call err = %v, want ErrBulkheadFull", err)
	}
}

func TestResilientClientValidation(t *testing.T) {
	if _, err := NewResilientClient(Policy{}); err == nil {
		t.Error("no replicas accepted")
	}
}
