// Package host exposes soc/internal/core services over the two standard
// protocol bindings the courses teach — SOAP (document/literal, with a
// generated WSDL) and REST (JSON or XML) — from a single mount call, and
// provides the matching client. One Host plays the role of the ASU
// repository's service provider: many services, uniform URLs:
//
//	GET  /services                      list hosted services
//	GET  /services/{name}               service description (JSON/XML)
//	GET  /services/{name}?wsdl          WSDL 1.1 document
//	POST /services/{name}/soap          SOAP endpoint
//	POST /services/{name}/invoke/{op}   REST invocation (JSON body)
//	GET  /services/{name}/invoke/{op}   REST invocation (query params)
package host

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soc/internal/core"
	"soc/internal/rest"
	"soc/internal/soap"
	"soc/internal/telemetry"
	"soc/internal/wsdl"
)

// ErrMount reports an invalid mount.
var ErrMount = errors.New("host: invalid mount")

// mounted is one service's precompiled dispatch table, resolved once at
// Mount time: the SOAP endpoint, and the per-operation metric keys so the
// hot path never concatenates "service.op" per request.
type mounted struct {
	svc        *core.Service
	soapSrv    *soap.Server
	metricKeys map[string]string // op name → "service.op"
}

// metricKey returns the precomputed key, falling back to concatenation
// for unknown operations (which fail in Invoke anyway).
func (m *mounted) metricKey(op string) string {
	if k, ok := m.metricKeys[op]; ok {
		return k
	}
	return m.svc.Name + "." + op
}

// valuesPool recycles the argument maps built from transport parameters.
// Invoke never retains its args map (coercion copies into a fresh map),
// so the maps can be cleared and reused across requests.
var valuesPool = sync.Pool{New: func() any { return core.Values{} }}

func acquireValues() core.Values { return valuesPool.Get().(core.Values) }

func releaseValues(v core.Values) {
	clear(v)
	valuesPool.Put(v)
}

// tracerCapacity is the per-host span ring size: enough to hold a chaos
// run's worth of dispatches without unbounded growth.
const tracerCapacity = 512

// Host serves a set of core services over SOAP and REST. Every dispatch
// — either binding — runs under a server span recorded in the host's
// tracer ring (GET /tracez) and folds into the shared instrument set
// (GET /metricz, GET /services/{name}/stats).
type Host struct {
	// wmu serializes Mount; lookups read the mounts map through an
	// atomic pointer (copy-on-write), so the per-request path — which
	// resolves the mount table two or three times per request — never
	// touches a lock.
	wmu    sync.Mutex
	mounts atomic.Pointer[map[string]*mounted]
	// draining flips the healthz verdict to 503 while the host empties
	// out ahead of a scale-down; every other route keeps serving.
	draining atomic.Bool
	router   *rest.Router
	instr    *telemetry.Metrics
	tracer   *telemetry.Tracer
	// BaseURL, when set, is used as the advertised endpoint prefix in
	// generated WSDL (e.g. "http://host:port"). Unset hosts advertise
	// a relative endpoint.
	BaseURL string
}

// New returns an empty host.
func New() *Host {
	h := &Host{
		router: rest.NewRouter(),
		instr:  telemetry.NewMetrics(),
		tracer: telemetry.NewTracer(tracerCapacity),
	}
	empty := make(map[string]*mounted)
	h.mounts.Store(&empty)
	h.router.Use(rest.Recovery())
	must := func(err error) {
		if err != nil {
			panic(err) // static routes; failure is a programming bug
		}
	}
	// Invocation routes first: the router scans same-method routes in
	// registration order, and every call pays for the routes ahead of its
	// own. The patterns are pairwise disjoint, so ordering only affects
	// scan cost, never which handler wins.
	must(h.router.GET("/services/{name}/invoke/{op}", h.handleInvoke))
	must(h.router.POST("/services/{name}/invoke/{op}", h.handleInvoke))
	must(h.router.POST("/services/{name}/soap", h.handleSOAP))
	must(h.router.GET("/services/{name}/stats", h.handleStats))
	must(h.router.GET("/services/{name}", h.handleDescribe))
	must(h.router.GET("/services", h.handleList))
	must(h.router.GET("/healthz", h.handleHealthz))
	must(h.router.GET("/tracez", h.handleTracez))
	must(h.router.GET("/metricz", h.handleMetricz))
	return h
}

// Use appends middleware to the host's router (applied to every route,
// first registered outermost) — the hook that lets a chaos harness wrap
// request handling with fault injection, or deployments add logging,
// auth and rate limiting.
func (h *Host) Use(mw ...rest.Middleware) { h.router.Use(mw...) }

// Mount adds a service to the host.
func (h *Host) Mount(svc *core.Service) error {
	if svc == nil {
		return fmt.Errorf("%w: nil service", ErrMount)
	}
	h.wmu.Lock()
	defer h.wmu.Unlock()
	old := *h.mounts.Load()
	if _, dup := old[svc.Name]; dup {
		return fmt.Errorf("%w: duplicate service %q", ErrMount, svc.Name)
	}
	m := &mounted{
		svc:        svc,
		soapSrv:    soap.NewServer(svc.Namespace),
		metricKeys: make(map[string]string, len(svc.Operations())),
	}
	for _, op := range svc.Operations() {
		opName := op.Name
		metricKey := svc.Name + "." + opName // resolved once, not per request
		m.metricKeys[opName] = metricKey
		err := m.soapSrv.Handle(opName, func(ctx context.Context, req soap.Message) (soap.Message, error) {
			args := acquireValues()
			defer releaseValues(args)
			for k, v := range req.Params {
				args[k] = v
			}
			// Join the caller's trace: transport header first (extracted by
			// soap.Server), then the in-message SocTrace header entry.
			remote, ok := telemetry.RemoteFromContext(ctx)
			if !ok {
				remote, _ = telemetry.ParseTraceParent(req.Header[telemetry.SOAPHeaderName])
			}
			sp, ctx := h.tracer.StartSpanRemote(ctx, telemetry.KindServer, metricKey, remote)
			sp.Annotate("binding", "soap")
			if telemetry.IsCacheMiss(ctx) {
				sp.Annotate("respcache", "miss")
			}
			start := time.Now()
			out, err := h.invoke(ctx, svc, opName, args)
			h.instr.Record(metricKey, time.Since(start), err != nil)
			sp.EndErr(err)
			if err != nil {
				if errors.Is(err, core.ErrBadRequest) || errors.Is(err, core.ErrNotFound) {
					return soap.Message{}, soap.ClientFault("%v", err)
				}
				return soap.Message{}, soap.ServerFault("%v", err)
			}
			resp := soap.Message{Params: make(map[string]string, len(out))}
			for k, v := range out {
				resp.Params[k] = core.FormatValue(v)
			}
			return resp, nil
		})
		if err != nil {
			return err
		}
	}
	next := make(map[string]*mounted, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[svc.Name] = m
	h.mounts.Store(&next)
	return nil
}

// MustMount is Mount panicking on error.
func (h *Host) MustMount(svc *core.Service) {
	if err := h.Mount(svc); err != nil {
		panic(err)
	}
}

func (h *Host) invoke(ctx context.Context, svc *core.Service, op string, args core.Values) (core.Values, error) {
	// Service invocation itself is lock-free; the host lock only guards
	// the service maps. The transport's request context flows through so
	// client cancellation reaches the handler.
	return svc.Invoke(ctx, op, args)
}

// Service returns a mounted service by name.
func (h *Host) Service(name string) (*core.Service, bool) {
	m, ok := h.mount(name)
	if !ok {
		return nil, false
	}
	return m.svc, true
}

// mount returns the precompiled dispatch table for a service — one
// atomic load, no lock.
func (h *Host) mount(name string) (*mounted, bool) {
	m, ok := (*h.mounts.Load())[name]
	return m, ok
}

// Names lists mounted service names, sorted.
func (h *Host) Names() []string {
	return mountNames(*h.mounts.Load())
}

// ServeHTTP implements http.Handler.
func (h *Host) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.router.ServeHTTP(w, r)
}

// serviceSummary is the wire form of a service listing entry.
type serviceSummary struct {
	Name      string `json:"name" xml:"name"`
	Namespace string `json:"namespace" xml:"namespace"`
	Doc       string `json:"doc,omitempty" xml:"doc,omitempty"`
	Category  string `json:"category,omitempty" xml:"category,omitempty"`
}

type paramDesc struct {
	Name     string `json:"name" xml:"name"`
	Type     string `json:"type" xml:"type"`
	Optional bool   `json:"optional,omitempty" xml:"optional,omitempty"`
	Doc      string `json:"doc,omitempty" xml:"doc,omitempty"`
}

type opDesc struct {
	Name   string      `json:"name" xml:"name"`
	Doc    string      `json:"doc,omitempty" xml:"doc,omitempty"`
	Input  []paramDesc `json:"input" xml:"input>param"`
	Output []paramDesc `json:"output" xml:"output>param"`
}

type serviceDesc struct {
	serviceSummary
	Endpoints map[string]string `json:"endpoints" xml:"-"`
	Ops       []opDesc          `json:"operations" xml:"operations>operation"`
}

func (h *Host) handleList(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	mounts := *h.mounts.Load()
	out := make([]serviceSummary, 0, len(mounts))
	for _, name := range mountNames(mounts) {
		s := mounts[name].svc
		out = append(out, serviceSummary{Name: s.Name, Namespace: s.Namespace, Doc: s.Doc, Category: s.Category})
	}
	rest.WriteResponse(w, r, http.StatusOK, out)
}

func mountNames(mounts map[string]*mounted) []string {
	out := make([]string, 0, len(mounts))
	for n := range mounts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (h *Host) handleDescribe(w http.ResponseWriter, r *http.Request, p rest.Params) {
	svc, ok := h.Service(p["name"])
	if !ok {
		rest.WriteError(w, r, http.StatusNotFound, "no service %q", p["name"])
		return
	}
	if _, wantWSDL := r.URL.Query()["wsdl"]; wantWSDL {
		endpoint := h.BaseURL + "/services/" + svc.Name + "/soap"
		doc, err := wsdl.Generate(svc, endpoint)
		if err != nil {
			rest.WriteError(w, r, http.StatusInternalServerError, "wsdl generation: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = w.Write(doc)
		return
	}
	desc := serviceDesc{
		serviceSummary: serviceSummary{Name: svc.Name, Namespace: svc.Namespace, Doc: svc.Doc, Category: svc.Category},
		Endpoints: map[string]string{
			"soap": h.BaseURL + "/services/" + svc.Name + "/soap",
			"rest": h.BaseURL + "/services/" + svc.Name + "/invoke",
			"wsdl": h.BaseURL + "/services/" + svc.Name + "?wsdl",
		},
	}
	for _, op := range svc.Operations() {
		desc.Ops = append(desc.Ops, opDesc{
			Name:   op.Name,
			Doc:    op.Doc,
			Input:  toParamDescs(op.Input),
			Output: toParamDescs(op.Output),
		})
	}
	rest.WriteResponse(w, r, http.StatusOK, desc)
}

func toParamDescs(ps []core.Param) []paramDesc {
	out := make([]paramDesc, len(ps))
	for i, p := range ps {
		out[i] = paramDesc{Name: p.Name, Type: string(p.Type), Optional: p.Optional, Doc: p.Doc}
	}
	return out
}

// serviceHealth is one service's entry in the healthz report.
type serviceHealth struct {
	Status     string `json:"status"`
	Operations int    `json:"operations"`
	Calls      uint64 `json:"calls"`
	Errors     uint64 `json:"errors"`
}

// healthReport is the GET /healthz document.
type healthReport struct {
	Status   string                   `json:"status"`
	Services map[string]serviceHealth `json:"services"`
}

// SetDraining flips the host's draining flag. A draining host keeps
// serving every route — in-flight and retried work must still land — but
// its health probe answers 503 "draining", so balancers and health
// checkers stop steering new traffic at it while it empties out.
func (h *Host) SetDraining(v bool) { h.draining.Store(v) }

// Draining reports whether SetDraining marked the host as draining.
func (h *Host) Draining() bool { return h.draining.Load() }

// handleHealthz answers 200 with per-service status — the probe target
// of reliability.HealthChecker. A service is "degraded" once a majority
// of a meaningful sample of its calls failed; the host itself is "ok"
// whenever it can answer at all (a dead host can't) — unless it is
// draining, which probes see as 503 so no new traffic arrives.
func (h *Host) handleHealthz(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	stats := h.Stats()
	mounts := *h.mounts.Load()
	report := healthReport{Status: "ok", Services: make(map[string]serviceHealth, len(mounts))}
	status := http.StatusOK
	if h.Draining() {
		report.Status, status = "draining", http.StatusServiceUnavailable
	}
	for name, m := range mounts {
		svc := m.svc
		sh := serviceHealth{Status: "ok", Operations: len(svc.Operations())}
		for _, op := range svc.Operations() {
			if st, ok := stats[m.metricKey(op.Name)]; ok {
				sh.Calls += st.Calls
				sh.Errors += st.Errors
			}
		}
		if sh.Calls >= 10 && sh.Errors*2 > sh.Calls {
			sh.Status = "degraded"
		}
		report.Services[name] = sh
	}
	rest.WriteResponse(w, r, status, report)
}

// statsEntry is the wire form of one operation's statistics.
type statsEntry struct {
	Operation string `json:"operation"`
	Calls     uint64 `json:"calls"`
	Errors    uint64 `json:"errors"`
	MeanNanos int64  `json:"meanNanos"`
}

func (h *Host) handleStats(w http.ResponseWriter, r *http.Request, p rest.Params) {
	m, ok := h.mount(p["name"])
	if !ok {
		rest.WriteError(w, r, http.StatusNotFound, "no service %q", p["name"])
		return
	}
	svc := m.svc
	all := h.Stats()
	out := []statsEntry{}
	for _, op := range svc.Operations() {
		if st, ok := all[m.metricKey(op.Name)]; ok {
			out = append(out, statsEntry{
				Operation: op.Name, Calls: st.Calls, Errors: st.Errors,
				MeanNanos: int64(st.MeanTime()),
			})
		}
	}
	rest.WriteResponse(w, r, http.StatusOK, out)
}

func (h *Host) handleSOAP(w http.ResponseWriter, r *http.Request, p rest.Params) {
	m, ok := h.mount(p["name"])
	if !ok {
		rest.WriteError(w, r, http.StatusNotFound, "no service %q", p["name"])
		return
	}
	m.soapSrv.ServeHTTP(w, r)
}

func (h *Host) handleInvoke(w http.ResponseWriter, r *http.Request, p rest.Params) {
	m, ok := h.mount(p["name"])
	if !ok {
		rest.WriteError(w, r, http.StatusNotFound, "no service %q", p["name"])
		return
	}
	svc := m.svc
	args := acquireValues()
	defer releaseValues(args)
	if r.Method == http.MethodPost {
		var body map[string]any
		if err := rest.ReadJSON(r, &body, 0); err != nil {
			rest.WriteError(w, r, http.StatusBadRequest, "body: %v", err)
			return
		}
		for k, v := range body {
			args[k] = v
		}
	} else {
		for k, vs := range r.URL.Query() {
			if k == "format" {
				continue
			}
			if len(vs) > 0 {
				args[k] = vs[0]
			}
		}
	}
	metricKey := m.metricKey(p["op"])
	remote, _ := telemetry.FromHTTPHeader(r.Header)
	sp, ctx := h.tracer.StartSpanRemote(r.Context(), telemetry.KindServer, metricKey, remote)
	sp.Annotate("binding", "rest")
	if telemetry.IsCacheMiss(r.Context()) {
		sp.Annotate("respcache", "miss")
	}
	start := time.Now()
	out, err := svc.Invoke(ctx, p["op"], args)
	h.instr.Record(metricKey, time.Since(start), err != nil)
	sp.EndErr(err)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrBadRequest) {
			status = http.StatusBadRequest
		} else if errors.Is(err, core.ErrNotFound) {
			status = http.StatusNotFound
		}
		rest.WriteError(w, r, status, "%v", err)
		return
	}
	// XML marshaling of map types is unsupported by encoding/xml, so
	// force JSON output for invocation results unless explicitly
	// negotiated; wrap XML results in a simple element form.
	if rest.Negotiate(r) == "xml" {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, valuesToXML(p["op"]+"Response", out))
		return
	}
	rest.WriteResponse(w, r, http.StatusOK, out)
}

func valuesToXML(root string, v core.Values) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<%s>", root)
	for _, k := range v.Keys() {
		fmt.Fprintf(&b, "<%s>%s</%s>", k, xmlEscape(core.FormatValue(v[k])), k)
	}
	fmt.Fprintf(&b, "</%s>", root)
	return b.String()
}

var xmlReplacer = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func xmlEscape(s string) string {
	return xmlReplacer.Replace(s)
}
