package perf

// benchstat-lite: parse `go test -bench` output, summarize repeated runs,
// and diff two summaries with a regression threshold — the stdlib-only
// core of cmd/benchdiff, which gates CI on the message-plane numbers
// (BENCH_messageplane.json).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkMessagePlane/soap-encode".
	Name string
	// N is the iteration count of the run.
	N int64
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64
	// BytesPerOp and AllocsPerOp come from -benchmem; -1 when absent.
	BytesPerOp  float64
	AllocsPerOp float64
}

// ParseBench reads `go test -bench` output and groups results by
// benchmark name (repeated -count runs collect under one key).
func ParseBench(r io.Reader) (map[string][]BenchResult, error) {
	out := make(map[string][]BenchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			out[res.Name] = append(out[res.Name], res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: reading bench output: %w", err)
	}
	return out, nil
}

func parseBenchLine(line string) (BenchResult, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return BenchResult{}, false, nil
	}
	res := BenchResult{Name: trimProcs(fields[0]), BytesPerOp: -1, AllocsPerOp: -1}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false, nil // "Benchmark..." banner lines etc.
	}
	res.N = n
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false, fmt.Errorf("perf: bad value %q in %q", fields[i], line)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			sawNs = true
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		}
	}
	if !sawNs {
		return BenchResult{}, false, nil
	}
	return res, true, nil
}

// trimProcs strips the trailing -N GOMAXPROCS suffix go test appends.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Summary aggregates repeated runs of one benchmark.
type Summary struct {
	// NsPerOp is the median across runs (robust to a noisy outlier run).
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp are medians too; -1 when -benchmem was
	// not used.
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// Runs is how many runs backed the summary.
	Runs int `json:"runs"`
}

// SummarizeBench reduces grouped results to per-benchmark medians.
func SummarizeBench(grouped map[string][]BenchResult) map[string]Summary {
	out := make(map[string]Summary, len(grouped))
	for name, runs := range grouped {
		if len(runs) == 0 {
			continue
		}
		pick := func(get func(BenchResult) float64) float64 {
			vals := make([]float64, len(runs))
			for i, r := range runs {
				vals[i] = get(r)
			}
			sort.Float64s(vals)
			return vals[len(vals)/2]
		}
		out[name] = Summary{
			NsPerOp:     pick(func(r BenchResult) float64 { return r.NsPerOp }),
			BytesPerOp:  pick(func(r BenchResult) float64 { return r.BytesPerOp }),
			AllocsPerOp: pick(func(r BenchResult) float64 { return r.AllocsPerOp }),
			Runs:        len(runs),
		}
	}
	return out
}

// Diff is the old→new movement of one benchmark.
type Diff struct {
	Name string  `json:"name"`
	Old  Summary `json:"old"`
	New  Summary `json:"new"`
	// TimeDeltaPct and AllocDeltaPct are percentage changes (negative is
	// an improvement).
	TimeDeltaPct  float64 `json:"timeDeltaPct"`
	AllocDeltaPct float64 `json:"allocDeltaPct"`
	// Regression marks a gated metric worsening past the threshold.
	Regression bool `json:"regression"`
}

// ContentionDiff is the old→new movement of one benchmark family's
// contention ratio: variant ns/op divided by the family's serial ns/op.
// A contention-free hot path keeps the parallel ratio near 1.0 on any
// core count; a shared lock convoy pushes it up — which makes the ratio
// a far more stable CI gate than raw saturated wall time.
type ContentionDiff struct {
	// Family is the benchmark name without the variant suffix, plus the
	// variant being ratioed ("parallel" or "saturated").
	Family  string `json:"family"`
	Variant string `json:"variant"`
	// OldRatio and NewRatio are variant-ns / serial-ns; OldRatio is 0
	// when the baseline lacks the family.
	OldRatio float64 `json:"oldRatio"`
	NewRatio float64 `json:"newRatio"`
	// DeltaPct is the percentage movement of the ratio (negative is an
	// improvement).
	DeltaPct float64 `json:"deltaPct"`
	// Regression marks a gated ratio worsening past the threshold.
	Regression bool `json:"regression"`
}

// Report is the full comparison, serialized as BENCH_*.json artifacts.
type Report struct {
	// ThresholdPct is the allowed worsening before a diff counts as a
	// regression.
	ThresholdPct float64 `json:"thresholdPct"`
	// Gate names the gated metric: "allocs", "time", "both", "none" or
	// "contention" (allocs plus the parallel-contention ratio).
	Gate string `json:"gate"`
	// New holds the current run's summaries; Old the baseline's (empty
	// when recording a first baseline).
	Old   map[string]Summary `json:"old,omitempty"`
	New   map[string]Summary `json:"new"`
	Diffs []Diff             `json:"diffs,omitempty"`
	// Contention holds the ratio diffs when the contention gate is
	// active. Only the "parallel" variant gates: saturated wall time on
	// an oversubscribed box is too noisy to fail CI on, so its ratios
	// ride along as informational rows.
	Contention []ContentionDiff `json:"contention,omitempty"`
}

func pctDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// Compare diffs two summaries. Benchmarks present on only one side are
// skipped (renames are not regressions). gate selects which metric can
// mark a regression; allocs/op is the deterministic choice for CI.
func Compare(old, new map[string]Summary, thresholdPct float64, gate string) Report {
	rep := Report{ThresholdPct: thresholdPct, Gate: gate, Old: old, New: new}
	names := make([]string, 0, len(old))
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old[name], new[name]
		d := Diff{
			Name:          name,
			Old:           o,
			New:           n,
			TimeDeltaPct:  pctDelta(o.NsPerOp, n.NsPerOp),
			AllocDeltaPct: pctDelta(o.AllocsPerOp, n.AllocsPerOp),
		}
		timeReg := d.TimeDeltaPct > thresholdPct
		allocReg := o.AllocsPerOp >= 0 && n.AllocsPerOp >= 0 && d.AllocDeltaPct > thresholdPct
		switch gate {
		case "time":
			d.Regression = timeReg
		case "both":
			d.Regression = timeReg || allocReg
		case "none", "contention":
			// contention gates allocs per name below via the ratio rows;
			// raw per-name time is reported, not gated.
			if gate == "contention" {
				d.Regression = allocReg
			}
		default: // "allocs"
			d.Regression = allocReg
		}
		rep.Diffs = append(rep.Diffs, d)
	}
	if gate == "contention" {
		rep.Contention = compareContention(old, new, thresholdPct)
	}
	return rep
}

// contentionVariants are the lowAndHigh variants ratioed against serial.
var contentionVariants = []string{"parallel", "saturated"}

// ContentionRatios extracts family+variant → variant-ns/serial-ns ratios
// from one run's summaries. Families are benchmark names of the form
// "Name/variant" where variant is serial, parallel or saturated.
func ContentionRatios(sum map[string]Summary) map[string]float64 {
	out := make(map[string]float64)
	for name, s := range sum {
		i := strings.LastIndexByte(name, '/')
		if i < 0 {
			continue
		}
		family, variant := name[:i], name[i+1:]
		ok := false
		for _, v := range contentionVariants {
			if variant == v {
				ok = true
			}
		}
		if !ok {
			continue
		}
		serial, found := sum[family+"/serial"]
		if !found || serial.NsPerOp <= 0 || s.NsPerOp <= 0 {
			continue
		}
		out[family+"/"+variant] = s.NsPerOp / serial.NsPerOp
	}
	return out
}

// The parallel-ratio gate only fires where it measures the workload and
// not the harness: families whose serial cost is below minGatedSerialNs
// are skipped — RunParallel's per-iteration synchronization is a fixed
// cost around a microsecond on a busy box, so the ratio of a cheap op
// measures the scheduler, not the lock structure. The request-path and
// directory families the gate exists for (cached invoke, dispatch,
// registry search) all sit comfortably above the floor. A ratio at or
// below contentionRatioFloor is contention-free by definition — parallel
// goroutines finishing within 1.5x of the serial loop have no convoy
// worth failing CI over, whatever the percentage movement.
const (
	minGatedSerialNs     = 5000.0
	contentionRatioFloor = 1.5
)

// compareContention diffs the ratio sets; only parallel ratios of
// gate-eligible families (see above) can mark a regression.
func compareContention(old, new map[string]Summary, thresholdPct float64) []ContentionDiff {
	oldR, newR := ContentionRatios(old), ContentionRatios(new)
	keys := make([]string, 0, len(newR))
	for k := range newR {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ContentionDiff, 0, len(keys))
	for _, k := range keys {
		i := strings.LastIndexByte(k, '/')
		d := ContentionDiff{
			Family:   k[:i],
			Variant:  k[i+1:],
			OldRatio: oldR[k],
			NewRatio: newR[k],
		}
		if d.OldRatio > 0 {
			d.DeltaPct = pctDelta(d.OldRatio, d.NewRatio)
			serial := new[d.Family+"/serial"].NsPerOp
			d.Regression = d.Variant == "parallel" &&
				serial >= minGatedSerialNs &&
				d.NewRatio > contentionRatioFloor &&
				d.DeltaPct > thresholdPct
		}
		out = append(out, d)
	}
	return out
}

// HasRegression reports whether any diff crossed the gate.
func (r Report) HasRegression() bool {
	for _, d := range r.Diffs {
		if d.Regression {
			return true
		}
	}
	for _, d := range r.Contention {
		if d.Regression {
			return true
		}
	}
	return false
}

// Format renders the report as an aligned human-readable table.
func (r Report) Format(w io.Writer) {
	if len(r.Diffs) == 0 {
		fmt.Fprintf(w, "recorded %d benchmark(s); no baseline to compare\n", len(r.New))
		names := make([]string, 0, len(r.New))
		for name := range r.New {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := r.New[name]
			fmt.Fprintf(w, "  %-50s %12.1f ns/op %10.0f allocs/op\n", name, s.NsPerOp, s.AllocsPerOp)
		}
		return
	}
	for _, d := range r.Diffs {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		fmt.Fprintf(w, "%s %-50s time %12.1f → %12.1f ns/op (%+6.1f%%)  allocs %8.0f → %8.0f (%+6.1f%%)\n",
			mark, d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.TimeDeltaPct,
			d.Old.AllocsPerOp, d.New.AllocsPerOp, d.AllocDeltaPct)
	}
	for _, d := range r.Contention {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		gated := "informational"
		if d.Variant == "parallel" {
			gated = "gated"
		}
		fmt.Fprintf(w, "%s %-50s %s/serial ratio %8.2f → %8.2f (%+6.1f%%, %s)\n",
			mark, d.Family, d.Variant, d.OldRatio, d.NewRatio, d.DeltaPct, gated)
	}
}
