package perf_test

import (
	"fmt"
	"time"

	"soc/internal/perf"
)

// ExampleSpeedup derives the Figure 3 metrics from two measured times.
func ExampleSpeedup() {
	t1 := 8 * time.Second
	t4 := 2500 * time.Millisecond
	s, _ := perf.Speedup(t1, t4)
	e, _ := perf.Efficiency(t1, t4, 4)
	fmt.Printf("speedup %.2fx, efficiency %.0f%%\n", s, e*100)
	// Output: speedup 3.20x, efficiency 80%
}

// ExampleAmdahl shows the scaling ceiling a serial fraction imposes.
func ExampleAmdahl() {
	for _, p := range []int{4, 32} {
		s, _ := perf.Amdahl(0.05, p)
		fmt.Printf("p=%d: %.2fx\n", p, s)
	}
	// Output:
	// p=4: 3.48x
	// p=32: 12.55x
}
