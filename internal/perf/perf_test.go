package perf

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSpeedup(t *testing.T) {
	s, err := Speedup(8*time.Second, 2*time.Second)
	if err != nil {
		t.Fatalf("Speedup: %v", err)
	}
	if !almostEqual(s, 4, 1e-9) {
		t.Errorf("speedup = %v, want 4", s)
	}
}

func TestSpeedupRejectsNonPositive(t *testing.T) {
	cases := []struct{ t1, tp time.Duration }{
		{0, time.Second}, {time.Second, 0}, {-time.Second, time.Second},
	}
	for _, c := range cases {
		if _, err := Speedup(c.t1, c.tp); err == nil {
			t.Errorf("Speedup(%v,%v) accepted invalid input", c.t1, c.tp)
		}
	}
}

func TestEfficiency(t *testing.T) {
	e, err := Efficiency(8*time.Second, 2*time.Second, 8)
	if err != nil {
		t.Fatalf("Efficiency: %v", err)
	}
	if !almostEqual(e, 0.5, 1e-9) {
		t.Errorf("efficiency = %v, want 0.5", e)
	}
	if _, err := Efficiency(time.Second, time.Second, 0); err == nil {
		t.Error("Efficiency accepted p=0")
	}
}

func TestWorkAndCost(t *testing.T) {
	w, err := Work(3*time.Second, 4)
	if err != nil {
		t.Fatalf("Work: %v", err)
	}
	if w != 12*time.Second {
		t.Errorf("work = %v, want 12s", w)
	}
	c, err := Cost(3*time.Second, 4)
	if err != nil || c != w {
		t.Errorf("cost = %v err=%v, want %v", c, err, w)
	}
}

func TestAmdahlLimits(t *testing.T) {
	// Fully parallel program: speedup = p.
	s, err := Amdahl(0, 16)
	if err != nil || !almostEqual(s, 16, 1e-9) {
		t.Errorf("Amdahl(0,16) = %v,%v want 16", s, err)
	}
	// Fully serial program: speedup = 1 regardless of p.
	s, err = Amdahl(1, 1024)
	if err != nil || !almostEqual(s, 1, 1e-9) {
		t.Errorf("Amdahl(1,1024) = %v,%v want 1", s, err)
	}
	// 10% serial on 32 cores: the classic ~7.8x ceiling region.
	s, err = Amdahl(0.1, 32)
	if err != nil || !almostEqual(s, 1/(0.1+0.9/32), 1e-9) {
		t.Errorf("Amdahl(0.1,32) = %v,%v", s, err)
	}
}

func TestGustafson(t *testing.T) {
	s, err := Gustafson(0.1, 32)
	if err != nil || !almostEqual(s, 32-0.1*31, 1e-9) {
		t.Errorf("Gustafson(0.1,32) = %v,%v", s, err)
	}
}

func TestSerialFractionInvertsAmdahl(t *testing.T) {
	for _, f := range []float64{0.01, 0.1, 0.25, 0.5, 0.9} {
		for _, p := range []int{2, 4, 8, 32} {
			s, err := Amdahl(f, p)
			if err != nil {
				t.Fatalf("Amdahl(%v,%d): %v", f, p, err)
			}
			got, err := SerialFraction(s, p)
			if err != nil {
				t.Fatalf("SerialFraction: %v", err)
			}
			if !almostEqual(got, f, 1e-9) {
				t.Errorf("SerialFraction(Amdahl(%v,%d)) = %v", f, p, got)
			}
		}
	}
}

func TestSpeedupEfficiencyProperty(t *testing.T) {
	// Property: for any valid t1, tp, p: efficiency*p == speedup.
	prop := func(t1ms, tpms uint16, p uint8) bool {
		t1 := time.Duration(int64(t1ms)+1) * time.Millisecond
		tp := time.Duration(int64(tpms)+1) * time.Millisecond
		np := int(p%64) + 1
		s, err1 := Speedup(t1, tp)
		e, err2 := Efficiency(t1, tp, np)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(e*float64(np), s, 1e-9*s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAmdahlMonotoneInP(t *testing.T) {
	// Property: Amdahl speedup is nondecreasing in p for fixed f.
	prop := func(fRaw uint8, pRaw uint8) bool {
		f := float64(fRaw) / 256.0
		p := int(pRaw%100) + 1
		s1, err1 := Amdahl(f, p)
		s2, err2 := Amdahl(f, p+1)
		return err1 == nil && err2 == nil && s2+1e-12 >= s1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	samples := []Sample{{4 * time.Millisecond}, {2 * time.Millisecond}, {6 * time.Millisecond}}
	st, err := Summarize(samples)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if st.N != 3 || st.Min != 2*time.Millisecond || st.Max != 6*time.Millisecond {
		t.Errorf("stats = %+v", st)
	}
	if st.Median != 4*time.Millisecond {
		t.Errorf("median = %v, want 4ms", st.Median)
	}
	if st.Mean != 4*time.Millisecond {
		t.Errorf("mean = %v, want 4ms", st.Mean)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	samples := []Sample{{2 * time.Millisecond}, {4 * time.Millisecond}}
	st, err := Summarize(samples)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if st.Median != 3*time.Millisecond {
		t.Errorf("even median = %v, want 3ms", st.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) succeeded")
	}
}

func TestMeasureRuns(t *testing.T) {
	n := 0
	st, err := Measure(5, func() { n++ })
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if n != 5 || st.N != 5 {
		t.Errorf("ran %d times, stats.N=%d; want 5", n, st.N)
	}
	if _, err := Measure(0, func() {}); err == nil {
		t.Error("Measure(0) succeeded")
	}
	if _, err := Measure(1, nil); err == nil {
		t.Error("Measure(nil fn) succeeded")
	}
}

func TestScalingStudy(t *testing.T) {
	procs := []int{1, 2, 4}
	times := []time.Duration{8 * time.Second, 4 * time.Second, 3 * time.Second}
	pts, err := ScalingStudy(procs, times)
	if err != nil {
		t.Fatalf("ScalingStudy: %v", err)
	}
	if !almostEqual(pts[1].Speedup, 2, 1e-9) || !almostEqual(pts[1].Efficiency, 1, 1e-9) {
		t.Errorf("p=2 point = %+v", pts[1])
	}
	if !almostEqual(pts[2].Speedup, 8.0/3, 1e-9) {
		t.Errorf("p=4 speedup = %v", pts[2].Speedup)
	}
}

func TestScalingStudyRequiresBaseline(t *testing.T) {
	_, err := ScalingStudy([]int{2, 4}, []time.Duration{time.Second, time.Second})
	if err == nil {
		t.Error("ScalingStudy without p=1 succeeded")
	}
	_, err = ScalingStudy([]int{1}, nil)
	if err == nil {
		t.Error("ScalingStudy with mismatched lengths succeeded")
	}
}

func TestFormatScalingContainsRows(t *testing.T) {
	pts := []ScalingPoint{{P: 1, Elapsed: time.Second, Speedup: 1, Efficiency: 1}}
	out := FormatScaling(pts)
	if out == "" || len(out) < 10 {
		t.Errorf("FormatScaling output too short: %q", out)
	}
}
