package perf

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: soc
cpu: Intel(R) Xeon(R)
BenchmarkMessagePlane/soap-encode-4         	  240459	      4936 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/soap-encode-4         	  252601	      5048 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/soap-encode-4         	  236397	      4990 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/dispatch-4            	   46689	     25794 ns/op	   19594 B/op	     188 allocs/op
BenchmarkNoMem-8                            	 1000000	      1000 ns/op
PASS
ok  	soc	5.448s
`

func TestParseBench(t *testing.T) {
	grouped, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	enc := grouped["BenchmarkMessagePlane/soap-encode"]
	if len(enc) != 3 {
		t.Fatalf("encode runs = %d, want 3", len(enc))
	}
	if enc[0].NsPerOp != 4936 || enc[0].AllocsPerOp != 53 || enc[0].BytesPerOp != 2512 {
		t.Errorf("first run = %+v", enc[0])
	}
	nomem := grouped["BenchmarkNoMem"]
	if len(nomem) != 1 || nomem[0].AllocsPerOp != -1 {
		t.Errorf("no-benchmem line = %+v", nomem)
	}
}

func TestSummarizeMedian(t *testing.T) {
	grouped, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeBench(grouped)
	enc := sum["BenchmarkMessagePlane/soap-encode"]
	if enc.NsPerOp != 4990 { // median of 4936, 4990, 5048
		t.Errorf("median ns/op = %v, want 4990", enc.NsPerOp)
	}
	if enc.AllocsPerOp != 53 || enc.Runs != 3 {
		t.Errorf("summary = %+v", enc)
	}
}

func TestCompareGates(t *testing.T) {
	oldS := map[string]Summary{
		"B/x":    {NsPerOp: 100, AllocsPerOp: 10, Runs: 1},
		"B/y":    {NsPerOp: 100, AllocsPerOp: 10, Runs: 1},
		"B/gone": {NsPerOp: 1, AllocsPerOp: 1, Runs: 1},
	}
	newS := map[string]Summary{
		"B/x":   {NsPerOp: 300, AllocsPerOp: 10, Runs: 1}, // time regression only
		"B/y":   {NsPerOp: 90, AllocsPerOp: 13, Runs: 1},  // alloc regression only
		"B/new": {NsPerOp: 1, AllocsPerOp: 1, Runs: 1},
	}
	for _, tc := range []struct {
		gate string
		want bool
		reg  map[string]bool
	}{
		{"allocs", true, map[string]bool{"B/x": false, "B/y": true}},
		{"time", true, map[string]bool{"B/x": true, "B/y": false}},
		{"both", true, map[string]bool{"B/x": true, "B/y": true}},
		{"none", false, map[string]bool{"B/x": false, "B/y": false}},
	} {
		rep := Compare(oldS, newS, 10, tc.gate)
		if len(rep.Diffs) != 2 {
			t.Fatalf("%s: diffs = %d, want 2 (one-sided benchmarks skipped)", tc.gate, len(rep.Diffs))
		}
		if rep.HasRegression() != tc.want {
			t.Errorf("%s: HasRegression = %v, want %v", tc.gate, rep.HasRegression(), tc.want)
		}
		for _, d := range rep.Diffs {
			if want, ok := tc.reg[d.Name]; ok && d.Regression != want {
				t.Errorf("%s: %s regression = %v, want %v", tc.gate, d.Name, d.Regression, want)
			}
		}
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	oldS := map[string]Summary{"B/x": {NsPerOp: 100, AllocsPerOp: 100, Runs: 1}}
	newS := map[string]Summary{"B/x": {NsPerOp: 109, AllocsPerOp: 109, Runs: 1}}
	if rep := Compare(oldS, newS, 10, "both"); rep.HasRegression() {
		t.Error("9% worsening flagged at a 10% threshold")
	}
}
