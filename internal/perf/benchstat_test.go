package perf

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: soc
cpu: Intel(R) Xeon(R)
BenchmarkMessagePlane/soap-encode-4         	  240459	      4936 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/soap-encode-4         	  252601	      5048 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/soap-encode-4         	  236397	      4990 ns/op	    2512 B/op	      53 allocs/op
BenchmarkMessagePlane/dispatch-4            	   46689	     25794 ns/op	   19594 B/op	     188 allocs/op
BenchmarkNoMem-8                            	 1000000	      1000 ns/op
PASS
ok  	soc	5.448s
`

func TestParseBench(t *testing.T) {
	grouped, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	enc := grouped["BenchmarkMessagePlane/soap-encode"]
	if len(enc) != 3 {
		t.Fatalf("encode runs = %d, want 3", len(enc))
	}
	if enc[0].NsPerOp != 4936 || enc[0].AllocsPerOp != 53 || enc[0].BytesPerOp != 2512 {
		t.Errorf("first run = %+v", enc[0])
	}
	nomem := grouped["BenchmarkNoMem"]
	if len(nomem) != 1 || nomem[0].AllocsPerOp != -1 {
		t.Errorf("no-benchmem line = %+v", nomem)
	}
}

func TestSummarizeMedian(t *testing.T) {
	grouped, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeBench(grouped)
	enc := sum["BenchmarkMessagePlane/soap-encode"]
	if enc.NsPerOp != 4990 { // median of 4936, 4990, 5048
		t.Errorf("median ns/op = %v, want 4990", enc.NsPerOp)
	}
	if enc.AllocsPerOp != 53 || enc.Runs != 3 {
		t.Errorf("summary = %+v", enc)
	}
}

func TestCompareGates(t *testing.T) {
	oldS := map[string]Summary{
		"B/x":    {NsPerOp: 100, AllocsPerOp: 10, Runs: 1},
		"B/y":    {NsPerOp: 100, AllocsPerOp: 10, Runs: 1},
		"B/gone": {NsPerOp: 1, AllocsPerOp: 1, Runs: 1},
	}
	newS := map[string]Summary{
		"B/x":   {NsPerOp: 300, AllocsPerOp: 10, Runs: 1}, // time regression only
		"B/y":   {NsPerOp: 90, AllocsPerOp: 13, Runs: 1},  // alloc regression only
		"B/new": {NsPerOp: 1, AllocsPerOp: 1, Runs: 1},
	}
	for _, tc := range []struct {
		gate string
		want bool
		reg  map[string]bool
	}{
		{"allocs", true, map[string]bool{"B/x": false, "B/y": true}},
		{"time", true, map[string]bool{"B/x": true, "B/y": false}},
		{"both", true, map[string]bool{"B/x": true, "B/y": true}},
		{"none", false, map[string]bool{"B/x": false, "B/y": false}},
	} {
		rep := Compare(oldS, newS, 10, tc.gate)
		if len(rep.Diffs) != 2 {
			t.Fatalf("%s: diffs = %d, want 2 (one-sided benchmarks skipped)", tc.gate, len(rep.Diffs))
		}
		if rep.HasRegression() != tc.want {
			t.Errorf("%s: HasRegression = %v, want %v", tc.gate, rep.HasRegression(), tc.want)
		}
		for _, d := range rep.Diffs {
			if want, ok := tc.reg[d.Name]; ok && d.Regression != want {
				t.Errorf("%s: %s regression = %v, want %v", tc.gate, d.Name, d.Regression, want)
			}
		}
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	oldS := map[string]Summary{"B/x": {NsPerOp: 100, AllocsPerOp: 100, Runs: 1}}
	newS := map[string]Summary{"B/x": {NsPerOp: 109, AllocsPerOp: 109, Runs: 1}}
	if rep := Compare(oldS, newS, 10, "both"); rep.HasRegression() {
		t.Error("9% worsening flagged at a 10% threshold")
	}
}

func TestContentionRatios(t *testing.T) {
	sum := map[string]Summary{
		"BenchmarkContention/hit/serial":    {NsPerOp: 100},
		"BenchmarkContention/hit/parallel":  {NsPerOp: 110},
		"BenchmarkContention/hit/saturated": {NsPerOp: 12800},
		"BenchmarkContention/orphan":        {NsPerOp: 50}, // no variant suffix
	}
	got := ContentionRatios(sum)
	if len(got) != 2 {
		t.Fatalf("ratios = %v, want parallel and saturated entries", got)
	}
	if r := got["BenchmarkContention/hit/parallel"]; r < 1.09 || r > 1.11 {
		t.Fatalf("parallel ratio = %v, want 1.1", r)
	}
	if r := got["BenchmarkContention/hit/saturated"]; r != 128 {
		t.Fatalf("saturated ratio = %v, want 128", r)
	}
}

func TestCompareContentionGate(t *testing.T) {
	mk := func(serial, par, sat float64) map[string]Summary {
		return map[string]Summary{
			"B/hit/serial":    {NsPerOp: serial, AllocsPerOp: 1},
			"B/hit/parallel":  {NsPerOp: par, AllocsPerOp: 1},
			"B/hit/saturated": {NsPerOp: sat, AllocsPerOp: 1},
		}
	}
	// Parallel ratio 1.0 → 2.0 on a 10µs op: a lock convoy appeared.
	rep := Compare(mk(10000, 10000, 1300000), mk(10000, 20000, 1300000), 10, "contention")
	if !rep.HasRegression() {
		t.Fatal("parallel ratio +100% not flagged by contention gate")
	}
	// Saturated ratio doubling alone is informational, not a failure.
	rep = Compare(mk(10000, 10500, 1300000), mk(10000, 10500, 2600000), 10, "contention")
	if rep.HasRegression() {
		t.Fatal("saturated ratio movement must not gate")
	}
	if len(rep.Contention) != 2 {
		t.Fatalf("contention rows = %d, want 2", len(rep.Contention))
	}
	// Sub-microsecond families never gate on ratio: RunParallel's own
	// synchronization dominates them.
	rep = Compare(mk(100, 100, 13000), mk(100, 300, 13000), 10, "contention")
	if rep.HasRegression() {
		t.Fatal("nanosecond-scale ratio movement must not gate")
	}
	// A ratio still at or under the contention-free floor never gates,
	// whatever the percentage movement.
	rep = Compare(mk(10000, 10000, 1300000), mk(10000, 14000, 1300000), 10, "contention")
	if rep.HasRegression() {
		t.Fatal("ratio 1.4 is under the convoy floor and must not gate")
	}
	// Alloc regressions still gate under contention.
	worse := mk(10000, 10500, 1300000)
	worse["B/hit/serial"] = Summary{NsPerOp: 10000, AllocsPerOp: 2}
	if rep := Compare(mk(10000, 10500, 1300000), worse, 10, "contention"); !rep.HasRegression() {
		t.Fatal("alloc doubling not flagged under contention gate")
	}
}
