// Package perf provides the performance metrics and measurement harness
// used throughout the course units on parallel and distributed computing:
// speedup, efficiency, work, cost, Amdahl's and Gustafson's laws, and a
// repetition-based timing harness that reports stable statistics.
//
// The definitions follow the standard ones taught in CSE445 unit 2
// ("Performance metrics: speedup, efficiency, work, cost, Amdahl's law").
package perf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ErrBadInput reports metric inputs outside their domain (e.g. zero
// processors or a negative duration).
var ErrBadInput = errors.New("perf: input out of domain")

// Speedup returns T1/Tp, the ratio of sequential to parallel execution time.
func Speedup(t1, tp time.Duration) (float64, error) {
	if t1 <= 0 || tp <= 0 {
		return 0, fmt.Errorf("%w: t1=%v tp=%v", ErrBadInput, t1, tp)
	}
	return float64(t1) / float64(tp), nil
}

// Efficiency returns Speedup/p, the per-processor utilization in [0, 1]
// for well-behaved programs (super-linear speedup can exceed 1).
func Efficiency(t1, tp time.Duration, p int) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("%w: p=%d", ErrBadInput, p)
	}
	s, err := Speedup(t1, tp)
	if err != nil {
		return 0, err
	}
	return s / float64(p), nil
}

// Work returns p*Tp, the processor-time product actually consumed.
func Work(tp time.Duration, p int) (time.Duration, error) {
	if p <= 0 || tp <= 0 {
		return 0, fmt.Errorf("%w: p=%d tp=%v", ErrBadInput, p, tp)
	}
	return time.Duration(int64(tp) * int64(p)), nil
}

// Cost is a synonym for Work in the course terminology: the cost of a
// parallel computation is processors times parallel time.
func Cost(tp time.Duration, p int) (time.Duration, error) { return Work(tp, p) }

// Amdahl returns the speedup predicted by Amdahl's law for a program whose
// serial fraction is f (0 <= f <= 1) on p processors:
//
//	S(p) = 1 / (f + (1-f)/p)
func Amdahl(serialFraction float64, p int) (float64, error) {
	if serialFraction < 0 || serialFraction > 1 || p <= 0 {
		return 0, fmt.Errorf("%w: f=%v p=%d", ErrBadInput, serialFraction, p)
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(p)), nil
}

// Gustafson returns the scaled speedup predicted by Gustafson's law:
//
//	S(p) = p - f*(p-1)
//
// where f is the serial fraction of the scaled workload.
func Gustafson(serialFraction float64, p int) (float64, error) {
	if serialFraction < 0 || serialFraction > 1 || p <= 0 {
		return 0, fmt.Errorf("%w: f=%v p=%d", ErrBadInput, serialFraction, p)
	}
	return float64(p) - serialFraction*float64(p-1), nil
}

// SerialFraction inverts Amdahl's law: given an observed speedup s on p
// processors it estimates the serial fraction (the Karp–Flatt metric).
func SerialFraction(speedup float64, p int) (float64, error) {
	if speedup <= 0 || p <= 1 {
		return 0, fmt.Errorf("%w: s=%v p=%d", ErrBadInput, speedup, p)
	}
	return (1/speedup - 1/float64(p)) / (1 - 1/float64(p)), nil
}

// Sample is one timed measurement.
type Sample struct {
	Elapsed time.Duration
}

// Stats summarizes repeated measurements of the same computation.
type Stats struct {
	N      int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	StdDev time.Duration
}

// Summarize computes order statistics over a set of samples.
func Summarize(samples []Sample) (Stats, error) {
	if len(samples) == 0 {
		return Stats{}, fmt.Errorf("%w: no samples", ErrBadInput)
	}
	ds := make([]time.Duration, len(samples))
	for i, s := range samples {
		ds[i] = s.Elapsed
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum, sumSq float64
	for _, d := range ds {
		f := float64(d)
		sum += f
		sumSq += f * f
	}
	n := float64(len(ds))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	med := ds[len(ds)/2]
	if len(ds)%2 == 0 {
		med = (ds[len(ds)/2-1] + ds[len(ds)/2]) / 2
	}
	return Stats{
		N:      len(ds),
		Min:    ds[0],
		Max:    ds[len(ds)-1],
		Mean:   time.Duration(mean),
		Median: med,
		StdDev: time.Duration(math.Sqrt(variance)),
	}, nil
}

// Measure times fn reps times and returns the summary statistics. The
// minimum is the conventional estimator for CPU-bound microbenchmarks; the
// median is robust for I/O-bound ones.
func Measure(reps int, fn func()) (Stats, error) {
	if reps <= 0 || fn == nil {
		return Stats{}, fmt.Errorf("%w: reps=%d", ErrBadInput, reps)
	}
	samples := make([]Sample, reps)
	for i := range samples {
		start := time.Now()
		fn()
		samples[i] = Sample{Elapsed: time.Since(start)}
	}
	return Summarize(samples)
}

// ScalingPoint is one row of a scaling study: the processor count with its
// measured time and the derived metrics relative to the 1-processor time.
type ScalingPoint struct {
	P          int
	Elapsed    time.Duration
	Speedup    float64
	Efficiency float64
}

// ScalingStudy derives speedup and efficiency for measured times at the
// given processor counts. times[i] corresponds to procs[i]; procs must
// include 1, which is used as the baseline.
func ScalingStudy(procs []int, times []time.Duration) ([]ScalingPoint, error) {
	if len(procs) == 0 || len(procs) != len(times) {
		return nil, fmt.Errorf("%w: %d procs vs %d times", ErrBadInput, len(procs), len(times))
	}
	var t1 time.Duration
	for i, p := range procs {
		if p == 1 {
			t1 = times[i]
		}
	}
	if t1 <= 0 {
		return nil, fmt.Errorf("%w: missing 1-processor baseline", ErrBadInput)
	}
	points := make([]ScalingPoint, len(procs))
	for i, p := range procs {
		s, err := Speedup(t1, times[i])
		if err != nil {
			return nil, err
		}
		e, err := Efficiency(t1, times[i], p)
		if err != nil {
			return nil, err
		}
		points[i] = ScalingPoint{P: p, Elapsed: times[i], Speedup: s, Efficiency: e}
	}
	return points, nil
}

// FormatScaling renders a scaling study as the kind of table Figure 3 of
// the paper plots: cores, time, speedup, efficiency.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %9s %11s\n", "cores", "time", "speedup", "efficiency")
	for _, pt := range points {
		fmt.Fprintf(&b, "%6d %14v %9.2f %10.1f%%\n", pt.P, pt.Elapsed.Round(time.Microsecond), pt.Speedup, pt.Efficiency*100)
	}
	return b.String()
}
