package eventbus

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := New(4)
	sub, err := b.Subscribe("orders/created")
	if err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish("orders/created", 42)
	if err != nil || n != 1 {
		t.Fatalf("Publish: %d %v", n, err)
	}
	e := <-sub.C
	if e.Topic != "orders/created" || e.Payload != 42 {
		t.Errorf("event = %+v", e)
	}
}

func TestWildcardMatching(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"a/*", "a/b", true},
		{"a/*", "a/b/c", false},
		{"a/#", "a/b/c", true},
		{"#", "anything/at/all", true},
		{"*/created", "orders/created", true},
		{"*/created", "orders/deleted", false},
		{"a/b/c", "a/b", false},
	}
	for _, c := range cases {
		if got := Matches(c.pattern, c.topic); got != c.want {
			t.Errorf("Matches(%q,%q) = %v", c.pattern, c.topic, got)
		}
	}
}

func TestWildcardSubscriptions(t *testing.T) {
	b := New(4)
	star, _ := b.Subscribe("orders/*")
	hash, _ := b.Subscribe("orders/#")
	exact, _ := b.Subscribe("orders/created")
	n, _ := b.Publish("orders/created", "x")
	if n != 3 {
		t.Errorf("delivered to %d, want 3", n)
	}
	n, _ = b.Publish("orders/a/b", "y")
	if n != 1 {
		t.Errorf("deep topic delivered to %d, want 1 (# only)", n)
	}
	<-star.C
	<-hash.C
	<-exact.C
}

func TestPatternValidation(t *testing.T) {
	b := New(1)
	for _, bad := range []string{"", "a//b", "a/#/b"} {
		if _, err := b.Subscribe(bad); err == nil {
			t.Errorf("Subscribe(%q) accepted", bad)
		}
	}
	if _, err := b.Publish("a/*", 1); err == nil {
		t.Error("wildcard topic accepted")
	}
	if _, err := b.Publish("", 1); err == nil {
		t.Error("empty topic accepted")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := New(1)
	sub, _ := b.Subscribe("t")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if _, err := b.Publish("t", i); err != nil {
				t.Errorf("Publish: %v", err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	if sub.Dropped() != 4 {
		t.Errorf("dropped = %d, want 4", sub.Dropped())
	}
	published, deliveries, drops := b.Stats()
	if published != 5 || deliveries != 1 || drops != 4 {
		t.Errorf("stats = %d/%d/%d", published, deliveries, drops)
	}
}

func TestCancelAndClose(t *testing.T) {
	b := New(1)
	sub, _ := b.Subscribe("t")
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Error("cancelled channel still open")
	}
	sub.Cancel() // idempotent
	n, _ := b.Publish("t", 1)
	if n != 0 {
		t.Errorf("delivered to cancelled sub: %d", n)
	}
	sub2, _ := b.Subscribe("t")
	b.Close()
	if _, ok := <-sub2.C; ok {
		t.Error("closed bus channel still open")
	}
	if _, err := b.Publish("t", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
	if _, err := b.Subscribe("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close: %v", err)
	}
	b.Close() // idempotent
}

func TestWaitAny(t *testing.T) {
	b := New(4)
	a, _ := b.Subscribe("a")
	c, _ := b.Subscribe("c")
	go func() {
		time.Sleep(5 * time.Millisecond)
		_, _ = b.Publish("c", "payload")
	}()
	e, idx, err := WaitAny(context.Background(), a, c)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || e.Payload != "payload" {
		t.Errorf("idx=%d e=%+v", idx, e)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := WaitAny(ctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout: %v", err)
	}
	if _, _, err := WaitAny(context.Background()); err == nil {
		t.Error("empty WaitAny accepted")
	}
}

func TestWaitAll(t *testing.T) {
	b := New(4)
	a, _ := b.Subscribe("a")
	c, _ := b.Subscribe("c")
	go func() {
		_, _ = b.Publish("c", 2)
		_, _ = b.Publish("a", 1)
	}()
	events, err := WaitAll(context.Background(), a, c)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Payload != 1 || events[1].Payload != 2 {
		t.Errorf("events = %+v", events)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := WaitAll(ctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout: %v", err)
	}
	if _, err := WaitAll(context.Background()); err == nil {
		t.Error("empty WaitAll accepted")
	}
}
