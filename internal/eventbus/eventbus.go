// Package eventbus implements the event-driven architecture unit of
// CSE446: a topic-based publish/subscribe bus with hierarchical topics and
// wildcard subscriptions, buffered asynchronous delivery, and the
// WaitAll/WaitAny event-coordination combinators taught with the CCR-style
// programming model.
package eventbus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrClosed reports use of a closed bus.
var ErrClosed = errors.New("eventbus: closed")

// Event is one published message.
type Event struct {
	Topic   string
	Payload any
}

// Subscription receives matching events on C until cancelled.
type Subscription struct {
	// C delivers matching events.
	C <-chan Event
	// Pattern is the subscribed topic pattern.
	Pattern string

	bus     *Bus
	ch      chan Event
	id      int64
	dropped int64
}

// Bus is a topic pub/sub bus. Topics are slash-separated paths
// ("orders/created"); subscription patterns may use "*" for one segment
// and "#" for any suffix ("orders/*", "audit/#").
type Bus struct {
	mu     sync.Mutex
	nextID int64
	subs   map[int64]*Subscription
	closed bool
	// buffer is each subscriber's channel capacity.
	buffer int
	// published counts all events; deliveries counts per-sub handoffs.
	published  int64
	deliveries int64
	drops      int64
}

// New returns a bus whose subscribers buffer up to buffer events
// (minimum 1). Slow subscribers drop events rather than block publishers.
func New(buffer int) *Bus {
	if buffer < 1 {
		buffer = 16
	}
	return &Bus{subs: make(map[int64]*Subscription), buffer: buffer}
}

// Subscribe registers interest in a topic pattern.
func (b *Bus) Subscribe(pattern string) (*Subscription, error) {
	if err := validatePattern(pattern); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.nextID++
	ch := make(chan Event, b.buffer)
	sub := &Subscription{C: ch, ch: ch, Pattern: pattern, bus: b, id: b.nextID}
	b.subs[sub.id] = sub
	return sub, nil
}

func validatePattern(p string) error {
	if p == "" {
		return errors.New("eventbus: empty pattern")
	}
	segs := strings.Split(p, "/")
	for i, s := range segs {
		if s == "" {
			return fmt.Errorf("eventbus: empty segment in %q", p)
		}
		if s == "#" && i != len(segs)-1 {
			return fmt.Errorf("eventbus: # must be final in %q", p)
		}
	}
	return nil
}

// Cancel removes the subscription and closes its channel.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if _, ok := s.bus.subs[s.id]; ok {
		delete(s.bus.subs, s.id)
		close(s.ch)
	}
}

// Dropped reports events lost to this subscriber's full buffer.
func (s *Subscription) Dropped() int64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Matches reports whether a topic matches a pattern.
func Matches(pattern, topic string) bool {
	ps := strings.Split(pattern, "/")
	ts := strings.Split(topic, "/")
	for i, p := range ps {
		if p == "#" {
			return true
		}
		if i >= len(ts) {
			return false
		}
		if p != "*" && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// Publish delivers the event to every matching subscriber without
// blocking; full subscribers lose the event (counted in Dropped). It
// returns the number of successful deliveries.
func (b *Bus) Publish(topic string, payload any) (int, error) {
	if strings.Contains(topic, "*") || strings.Contains(topic, "#") {
		return 0, fmt.Errorf("eventbus: topic %q may not contain wildcards", topic)
	}
	if err := validatePattern(topic); err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	b.published++
	delivered := 0
	for _, sub := range b.subs {
		if !Matches(sub.Pattern, topic) {
			continue
		}
		select {
		case sub.ch <- Event{Topic: topic, Payload: payload}:
			delivered++
			b.deliveries++
		default:
			sub.dropped++
			b.drops++
		}
	}
	return delivered, nil
}

// Close shuts the bus; all subscriber channels close.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		close(sub.ch)
		delete(b.subs, id)
	}
}

// Stats reports publish/delivery/drop counters.
func (b *Bus) Stats() (published, deliveries, drops int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.deliveries, b.drops
}

// WaitAny blocks until any subscription delivers, returning the event and
// the index of the subscription that fired.
func WaitAny(ctx context.Context, subs ...*Subscription) (Event, int, error) {
	if len(subs) == 0 {
		return Event{}, -1, errors.New("eventbus: no subscriptions")
	}
	// Funnel pattern: one goroutine per subscription forwarding the
	// first event.
	type hit struct {
		e   Event
		idx int
	}
	ch := make(chan hit, len(subs))
	done := make(chan struct{})
	defer close(done)
	for i, s := range subs {
		go func(i int, s *Subscription) {
			select {
			case e, ok := <-s.C:
				if ok {
					select {
					case ch <- hit{e, i}:
					case <-done:
					}
				}
			case <-done:
			case <-ctx.Done():
			}
		}(i, s)
	}
	select {
	case h := <-ch:
		return h.e, h.idx, nil
	case <-ctx.Done():
		return Event{}, -1, ctx.Err()
	}
}

// WaitAll blocks until every subscription has delivered at least one
// event, returning them in subscription order.
func WaitAll(ctx context.Context, subs ...*Subscription) ([]Event, error) {
	if len(subs) == 0 {
		return nil, errors.New("eventbus: no subscriptions")
	}
	out := make([]Event, len(subs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s *Subscription) {
			defer wg.Done()
			select {
			case e, ok := <-s.C:
				if !ok {
					mu.Lock()
					if firstErr == nil {
						firstErr = ErrClosed
					}
					mu.Unlock()
					return
				}
				out[i] = e
			case <-ctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				mu.Unlock()
			}
		}(i, s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
