package eventbus

import (
	"strings"
	"testing"
	"testing/quick"
)

func sanitizeTopic(raw []uint8) string {
	if len(raw) == 0 {
		return "a"
	}
	segs := make([]string, 0, len(raw)%4+1)
	words := []string{"orders", "users", "audit", "robot", "created", "deleted"}
	for i := 0; i < len(raw)%4+1; i++ {
		segs = append(segs, words[int(raw[i%len(raw)])%len(words)])
	}
	return strings.Join(segs, "/")
}

func TestMatchesReflexiveProperty(t *testing.T) {
	// Property: a concrete topic always matches itself as a pattern.
	prop := func(raw []uint8) bool {
		topic := sanitizeTopic(raw)
		return Matches(topic, topic)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHashMatchesEverySuffixProperty(t *testing.T) {
	// Property: prefix/# matches prefix itself extended by any suffix.
	prop := func(rawA, rawB []uint8) bool {
		prefix := sanitizeTopic(rawA)
		suffix := sanitizeTopic(rawB)
		return Matches(prefix+"/#", prefix+"/"+suffix)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStarMatchesExactlyOneSegmentProperty(t *testing.T) {
	// Property: replacing any single segment of a topic with * still
	// matches, and the starred pattern never matches a topic with a
	// different segment count.
	prop := func(raw []uint8, pick uint8) bool {
		topic := sanitizeTopic(raw)
		segs := strings.Split(topic, "/")
		i := int(pick) % len(segs)
		patSegs := append([]string(nil), segs...)
		patSegs[i] = "*"
		pattern := strings.Join(patSegs, "/")
		if !Matches(pattern, topic) {
			return false
		}
		longer := topic + "/extra"
		return !Matches(pattern, longer)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPublishDeliveryCountProperty(t *testing.T) {
	// Property: publishing to n exact subscribers delivers n times.
	prop := func(nRaw uint8) bool {
		n := int(nRaw%8) + 1
		b := New(4)
		for i := 0; i < n; i++ {
			if _, err := b.Subscribe("t/x"); err != nil {
				return false
			}
		}
		delivered, err := b.Publish("t/x", 1)
		return err == nil && delivered == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
