// Package session implements the web-application state management unit of
// CSE445 (unit 5): server-side sessions with cookie correlation and TTL,
// HMAC-signed client-side view-state (the ASP.NET-style hidden field),
// shared application state, and the caching layer with dependency
// invalidation that the course discusses for web data management.
package session

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNoSession reports a missing or expired session.
var ErrNoSession = errors.New("session: no such session")

// ErrTampered reports view-state whose signature does not verify.
var ErrTampered = errors.New("session: view-state tampered")

// Session is one user session.
type Session struct {
	ID      string
	Created time.Time
	Expires time.Time
	mu      sync.RWMutex
	values  map[string]any
}

// Get reads a session value.
func (s *Session) Get(key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.values[key]
	return v, ok
}

// GetString reads a string value ("" when absent).
func (s *Session) GetString(key string) string {
	v, _ := s.Get(key)
	str, _ := v.(string)
	return str
}

// Set writes a session value.
func (s *Session) Set(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = v
}

// Delete removes a session value.
func (s *Session) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
}

// Keys returns the sorted value keys.
func (s *Session) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.values))
	for k := range s.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Manager creates, resolves and expires sessions.
type Manager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	ttl      time.Duration
	now      func() time.Time
	// CookieName is the correlation cookie (default "SOCSESSION").
	CookieName string
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithTTL sets the session lifetime (default 30 minutes).
func WithTTL(d time.Duration) ManagerOption { return func(m *Manager) { m.ttl = d } }

// WithClock sets the time source for tests.
func WithClock(now func() time.Time) ManagerOption { return func(m *Manager) { m.now = now } }

// NewManager returns an empty session manager.
func NewManager(opts ...ManagerOption) *Manager {
	m := &Manager{
		sessions:   make(map[string]*Session),
		ttl:        30 * time.Minute,
		now:        time.Now,
		CookieName: "SOCSESSION",
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create starts a new session.
func (m *Manager) Create() *Session {
	now := m.now()
	s := &Session{
		ID:      newID(),
		Created: now,
		Expires: now.Add(m.ttl),
		values:  make(map[string]any),
	}
	m.mu.Lock()
	m.sessions[s.ID] = s
	m.mu.Unlock()
	return s
}

// Get resolves a session by id, renewing its expiry (sliding window).
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	now := m.now()
	if now.After(s.Expires) {
		delete(m.sessions, id)
		return nil, fmt.Errorf("%w: %q expired", ErrNoSession, id)
	}
	s.Expires = now.Add(m.ttl)
	return s, nil
}

// Destroy removes a session.
func (m *Manager) Destroy(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
}

// Len counts live (possibly expired but uncollected) sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Sweep removes expired sessions, returning how many were collected.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	n := 0
	for id, s := range m.sessions {
		if now.After(s.Expires) {
			delete(m.sessions, id)
			n++
		}
	}
	return n
}

// FromRequest resolves the request's session from the cookie, creating
// one (and setting the cookie) when absent or expired.
func (m *Manager) FromRequest(w http.ResponseWriter, r *http.Request) *Session {
	if c, err := r.Cookie(m.CookieName); err == nil {
		if s, err := m.Get(c.Value); err == nil {
			return s
		}
	}
	s := m.Create()
	http.SetCookie(w, &http.Cookie{
		Name:     m.CookieName,
		Value:    s.ID,
		Path:     "/",
		HttpOnly: true,
	})
	return s
}

// ViewState signs and verifies client-side page state: the web-form
// pattern in which per-page state rides in a hidden field and must be
// protected against tampering.
type ViewState struct {
	key []byte
}

// NewViewState returns a signer with the given secret key.
func NewViewState(key []byte) (*ViewState, error) {
	if len(key) < 16 {
		return nil, errors.New("session: view-state key must be at least 16 bytes")
	}
	return &ViewState{key: append([]byte(nil), key...)}, nil
}

// Encode serializes state to a signed, base64 token.
func (v *ViewState) Encode(state map[string]string) (string, error) {
	payload, err := json.Marshal(state)
	if err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, v.key)
	mac.Write(payload)
	sig := mac.Sum(nil)
	token := base64.URLEncoding.EncodeToString(payload) + "." + base64.URLEncoding.EncodeToString(sig)
	return token, nil
}

// Decode verifies and deserializes a token.
func (v *ViewState) Decode(token string) (map[string]string, error) {
	parts := strings.SplitN(token, ".", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("%w: malformed token", ErrTampered)
	}
	payload, err := base64.URLEncoding.DecodeString(parts[0])
	if err != nil {
		return nil, fmt.Errorf("%w: bad payload encoding", ErrTampered)
	}
	sig, err := base64.URLEncoding.DecodeString(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad signature encoding", ErrTampered)
	}
	mac := hmac.New(sha256.New, v.key)
	mac.Write(payload)
	if !hmac.Equal(sig, mac.Sum(nil)) {
		return nil, ErrTampered
	}
	var state map[string]string
	if err := json.Unmarshal(payload, &state); err != nil {
		return nil, fmt.Errorf("%w: bad payload", ErrTampered)
	}
	return state, nil
}

// AppState is process-wide shared state (the "application" scope of web
// frameworks), safe for concurrent use.
type AppState struct {
	mu sync.RWMutex
	m  map[string]any
}

// NewAppState returns an empty application state.
func NewAppState() *AppState { return &AppState{m: make(map[string]any)} }

// Get reads a value.
func (a *AppState) Get(key string) (any, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	v, ok := a.m[key]
	return v, ok
}

// Set writes a value.
func (a *AppState) Set(key string, v any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m[key] = v
}

// Update applies fn atomically to the value at key and stores the result.
func (a *AppState) Update(key string, fn func(cur any) any) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.m[key] = fn(a.m[key])
}
