package session

import (
	"container/list"
	"errors"
	"sync"
	"time"
)

// Cache is the web-data cache of the course's state-management unit: LRU
// eviction, per-entry TTL, dependency keys for grouped invalidation (the
// ASP.NET "cache dependency" pattern), and hit/miss accounting for the
// state-management experiment.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	order    *list.List // front = most recent
	items    map[string]*list.Element
	byDep    map[string]map[string]bool // dependency → keys
	hits     uint64
	misses   uint64
}

type cacheItem struct {
	key     string
	value   any
	expires time.Time
	deps    []string
}

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithCacheTTL sets the default entry TTL (default 5 minutes).
func WithCacheTTL(d time.Duration) CacheOption { return func(c *Cache) { c.ttl = d } }

// WithCacheClock sets the time source for tests.
func WithCacheClock(now func() time.Time) CacheOption { return func(c *Cache) { c.now = now } }

// NewCache returns an LRU+TTL cache with the given capacity.
func NewCache(capacity int, opts ...CacheOption) (*Cache, error) {
	if capacity <= 0 {
		return nil, errors.New("session: cache capacity must be positive")
	}
	c := &Cache{
		capacity: capacity,
		ttl:      5 * time.Minute,
		now:      time.Now,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		byDep:    make(map[string]map[string]bool),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Put stores a value under key with the default TTL and optional
// dependency keys.
func (c *Cache) Put(key string, value any, deps ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	for c.order.Len() >= c.capacity {
		c.removeLocked(c.order.Back())
	}
	item := &cacheItem{key: key, value: value, expires: c.now().Add(c.ttl), deps: deps}
	el := c.order.PushFront(item)
	c.items[key] = el
	for _, d := range deps {
		if c.byDep[d] == nil {
			c.byDep[d] = make(map[string]bool)
		}
		c.byDep[d][key] = true
	}
}

// Get returns the cached value and whether it was present and fresh.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	item := el.Value.(*cacheItem)
	if c.now().After(item.expires) {
		c.removeLocked(el)
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return item.value, true
}

// GetOrCompute returns the cached value or computes, stores, and returns
// it. Concurrent computations of the same key may race; last write wins —
// acceptable for idempotent loads.
func (c *Cache) GetOrCompute(key string, compute func() (any, error), deps ...string) (any, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.Put(key, v, deps...)
	return v, nil
}

// Invalidate removes one key.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
}

// InvalidateDependency removes every entry depending on dep, returning
// how many were dropped.
func (c *Cache) InvalidateDependency(dep string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byDep[dep]
	n := 0
	for key := range keys {
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
			n++
		}
	}
	delete(c.byDep, dep)
	return n
}

func (c *Cache) removeLocked(el *list.Element) {
	item := el.Value.(*cacheItem)
	c.order.Remove(el)
	delete(c.items, item.key)
	for _, d := range item.deps {
		if set := c.byDep[d]; set != nil {
			delete(set, item.key)
			if len(set) == 0 {
				delete(c.byDep, d)
			}
		}
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports hit/miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRatio is hits/(hits+misses), 0 when unused.
func (c *Cache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
