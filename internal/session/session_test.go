package session

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSessionLifecycle(t *testing.T) {
	m := NewManager()
	s := m.Create()
	if s.ID == "" || m.Len() != 1 {
		t.Fatalf("create: %+v", s)
	}
	s.Set("user", "ada")
	s.Set("count", 3)
	got, err := m.Get(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GetString("user") != "ada" {
		t.Errorf("user = %q", got.GetString("user"))
	}
	if v, ok := got.Get("count"); !ok || v != 3 {
		t.Errorf("count = %v", v)
	}
	keys := got.Keys()
	if len(keys) != 2 || keys[0] != "count" {
		t.Errorf("keys = %v", keys)
	}
	got.Delete("count")
	if _, ok := got.Get("count"); ok {
		t.Error("delete failed")
	}
	m.Destroy(s.ID)
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNoSession) {
		t.Errorf("after destroy: %v", err)
	}
}

func TestSessionExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(WithClock(func() time.Time { return now }), WithTTL(time.Minute))
	s := m.Create()
	now = now.Add(30 * time.Second)
	if _, err := m.Get(s.ID); err != nil {
		t.Fatalf("mid-ttl: %v", err)
	}
	// Sliding window: the Get above renewed to +90s.
	now = now.Add(59 * time.Second)
	if _, err := m.Get(s.ID); err != nil {
		t.Fatalf("slid window: %v", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNoSession) {
		t.Errorf("expired: %v", err)
	}
}

func TestSweep(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(WithClock(func() time.Time { return now }), WithTTL(time.Minute))
	m.Create()
	m.Create()
	keep := m.Create()
	now = now.Add(2 * time.Minute)
	_ = keep // expired too; renew impossible now
	if n := m.Sweep(); n != 3 {
		t.Errorf("swept %d, want 3", n)
	}
	if m.Len() != 0 {
		t.Errorf("len = %d", m.Len())
	}
}

func TestFromRequestCookieFlow(t *testing.T) {
	m := NewManager()
	// First request: no cookie → create + Set-Cookie.
	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/", nil)
	s1 := m.FromRequest(w, r)
	cookies := w.Result().Cookies()
	if len(cookies) != 1 || cookies[0].Name != "SOCSESSION" || cookies[0].Value != s1.ID {
		t.Fatalf("cookies = %v", cookies)
	}
	if !cookies[0].HttpOnly {
		t.Error("cookie not HttpOnly")
	}
	// Second request with the cookie: same session.
	r2 := httptest.NewRequest("GET", "/", nil)
	r2.AddCookie(&http.Cookie{Name: "SOCSESSION", Value: s1.ID})
	w2 := httptest.NewRecorder()
	s2 := m.FromRequest(w2, r2)
	if s2.ID != s1.ID {
		t.Error("session not resumed")
	}
	if len(w2.Result().Cookies()) != 0 {
		t.Error("cookie re-set on resume")
	}
	// Bogus cookie: new session.
	r3 := httptest.NewRequest("GET", "/", nil)
	r3.AddCookie(&http.Cookie{Name: "SOCSESSION", Value: "forged"})
	w3 := httptest.NewRecorder()
	s3 := m.FromRequest(w3, r3)
	if s3.ID == "forged" || s3.ID == s1.ID {
		t.Error("forged session accepted")
	}
}

func TestViewStateRoundTrip(t *testing.T) {
	vs, err := NewViewState([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	state := map[string]string{"page": "signup", "step": "2"}
	token, err := vs.Encode(state)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vs.Decode(token)
	if err != nil {
		t.Fatal(err)
	}
	if got["page"] != "signup" || got["step"] != "2" {
		t.Errorf("got = %v", got)
	}
}

func TestViewStateTamperDetection(t *testing.T) {
	vs, _ := NewViewState([]byte("0123456789abcdef"))
	token, _ := vs.Encode(map[string]string{"role": "user"})
	// Flip a payload byte.
	parts := strings.SplitN(token, ".", 2)
	raw := []byte(parts[0])
	raw[0] ^= 1
	if _, err := vs.Decode(string(raw) + "." + parts[1]); !errors.Is(err, ErrTampered) {
		t.Errorf("payload tamper: %v", err)
	}
	// Wrong key.
	other, _ := NewViewState([]byte("fedcba9876543210"))
	if _, err := other.Decode(token); !errors.Is(err, ErrTampered) {
		t.Errorf("wrong key: %v", err)
	}
	// Garbage tokens.
	for _, bad := range []string{"", "nodot", "a.b", "!!!.!!!"} {
		if _, err := vs.Decode(bad); !errors.Is(err, ErrTampered) {
			t.Errorf("Decode(%q): %v", bad, err)
		}
	}
}

func TestViewStateKeyValidation(t *testing.T) {
	if _, err := NewViewState([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestViewStateProperty(t *testing.T) {
	vs, _ := NewViewState([]byte("0123456789abcdef"))
	prop := func(k, v string) bool {
		token, err := vs.Encode(map[string]string{k: v})
		if err != nil {
			return false
		}
		got, err := vs.Decode(token)
		return err == nil && got[k] == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAppState(t *testing.T) {
	a := NewAppState()
	a.Set("visits", 0)
	for i := 0; i < 10; i++ {
		a.Update("visits", func(cur any) any { return cur.(int) + 1 })
	}
	if v, _ := a.Get("visits"); v != 10 {
		t.Errorf("visits = %v", v)
	}
	if _, ok := a.Get("ghost"); ok {
		t.Error("missing key found")
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(3)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %v,%v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Error("phantom hit")
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d/%d", h, m)
	}
	if c.HitRatio() != 0.5 {
		t.Errorf("ratio = %v", c.HitRatio())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recency")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheTTL(t *testing.T) {
	now := time.Unix(0, 0)
	c, _ := NewCache(10, WithCacheTTL(time.Minute), WithCacheClock(func() time.Time { return now }))
	c.Put("k", "v")
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Error("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("stale entry served")
	}
}

func TestCacheDependencyInvalidation(t *testing.T) {
	c, _ := NewCache(10)
	c.Put("user:1:profile", "p1", "user:1")
	c.Put("user:1:orders", "o1", "user:1", "orders")
	c.Put("user:2:profile", "p2", "user:2")
	if n := c.InvalidateDependency("user:1"); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get("user:1:profile"); ok {
		t.Error("dependent entry survived")
	}
	if _, ok := c.Get("user:2:profile"); !ok {
		t.Error("unrelated entry dropped")
	}
	if n := c.InvalidateDependency("user:1"); n != 0 {
		t.Errorf("second invalidation dropped %d", n)
	}
}

func TestCacheInvalidateSingle(t *testing.T) {
	c, _ := NewCache(10)
	c.Put("k", 1)
	c.Invalidate("k")
	if _, ok := c.Get("k"); ok {
		t.Error("invalidated entry served")
	}
	c.Invalidate("never-existed") // must not panic
}

func TestCacheGetOrCompute(t *testing.T) {
	c, _ := NewCache(10)
	calls := 0
	load := func() (any, error) { calls++; return "value", nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", load)
		if err != nil || v != "value" {
			t.Fatalf("GetOrCompute: %v %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
	boom := errors.New("load failed")
	if _, err := c.GetOrCompute("bad", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestCacheReplaceKeepsCapacity(t *testing.T) {
	c, _ := NewCache(2)
	c.Put("a", 1)
	c.Put("a", 2) // replace, not grow
	c.Put("b", 3)
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("a = %v", v)
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Error("capacity 0 accepted")
	}
}
