package session

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// These tests pin the full request-cycle behavior of the session layer:
// state set during one HTTP request is visible in the next request that
// presents the same cookie, distinct clients never share state, and a
// session survives concurrent mutation under the race detector.

// visitHandler counts visits and accumulates a per-session cart string —
// a miniature of the Figure 4 shopping-cart webapp.
func visitHandler(m *Manager) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := m.FromRequest(w, r)
		visits, _ := s.Get("visits")
		n, _ := visits.(int)
		s.Set("visits", n+1)
		if item := r.URL.Query().Get("add"); item != "" {
			s.Set("cart", s.GetString("cart")+item+";")
		}
		fmt.Fprintf(w, "%d|%s", n+1, s.GetString("cart"))
	})
}

func TestStatePersistsAcrossRequests(t *testing.T) {
	m := NewManager()
	srv := httptest.NewServer(visitHandler(m))
	defer srv.Close()

	jar := &singleCookie{}
	get := func(path string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		jar.apply(req)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		jar.capture(resp)
		buf := make([]byte, 256)
		n, _ := resp.Body.Read(buf)
		return string(buf[:n])
	}

	if got := get("/?add=widget"); got != "1|widget;" {
		t.Fatalf("first request: %q", got)
	}
	if got := get("/?add=gadget"); got != "2|widget;gadget;" {
		t.Fatalf("second request lost state: %q", got)
	}
	if got := get("/"); got != "3|widget;gadget;" {
		t.Fatalf("third request: %q", got)
	}
	if m.Len() != 1 {
		t.Fatalf("%d sessions for one client, want 1", m.Len())
	}
}

func TestDistinctClientsGetDistinctSessions(t *testing.T) {
	m := NewManager()
	srv := httptest.NewServer(visitHandler(m))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		// No cookie sent: every bare request is a new client.
		resp, err := srv.Client().Get(srv.URL + "/?add=item" + strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if m.Len() != 3 {
		t.Fatalf("%d sessions for 3 cookie-less clients, want 3", m.Len())
	}
}

func TestSessionConcurrentMutation(t *testing.T) {
	m := NewManager()
	s := m.Create()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := "k" + strconv.Itoa(w)
			for i := 0; i < 100; i++ {
				s.Set(key, i)
				if _, ok := s.Get(key); !ok {
					t.Errorf("worker %d lost its key", w)
					return
				}
				s.Keys()
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.Keys()); got != workers {
		t.Fatalf("%d keys after concurrent writes, want %d", got, workers)
	}
}

func TestExpiredSessionReplacedInRequestCycle(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(WithTTL(time.Minute), WithClock(func() time.Time { return now }))
	srv := httptest.NewServer(visitHandler(m))
	defer srv.Close()

	jar := &singleCookie{}
	do := func() string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/?add=x", nil)
		if err != nil {
			t.Fatal(err)
		}
		jar.apply(req)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		jar.capture(resp)
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		return string(buf[:n])
	}

	if got := do(); got != "1|x;" {
		t.Fatalf("first request: %q", got)
	}
	now = now.Add(2 * time.Minute) // session TTL elapses
	if got := do(); got != "1|x;" {
		t.Fatalf("expired session kept its state: %q", got)
	}
}

// singleCookie is a minimal cookie jar for one session cookie.
type singleCookie struct{ cookie *http.Cookie }

func (j *singleCookie) apply(req *http.Request) {
	if j.cookie != nil {
		req.AddCookie(j.cookie)
	}
}

func (j *singleCookie) capture(resp *http.Response) {
	for _, c := range resp.Cookies() {
		j.cookie = c
	}
}
