// Package registry implements the service broker of the SOA triangle
// (provider → broker ← client): a directory where providers publish
// service entries and clients discover them. It supplies the pieces the
// paper's §V describes for the ASU repository and service search engine:
// a category taxonomy, a keyword inverted index with TF-IDF ranking,
// liveness leases with heartbeats (addressing the "services are often
// offline or removed without notice" complaint about free directories),
// and a REST API with a matching client.
package registry

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInvalid reports a malformed entry or query.
var ErrInvalid = errors.New("registry: invalid input")

// ErrNotFound reports a missing entry.
var ErrNotFound = errors.New("registry: not found")

// Entry is one published service.
type Entry struct {
	// Name uniquely identifies the service in the registry.
	Name string `json:"name"`
	// Namespace is the service's XML namespace.
	Namespace string `json:"namespace"`
	// Doc is the human description, indexed for keyword search.
	Doc string `json:"doc"`
	// Category is a slash-separated taxonomy path, e.g. "security/encryption".
	Category string `json:"category"`
	// Endpoint is the base URL where the service is hosted.
	Endpoint string `json:"endpoint"`
	// Bindings lists supported protocols, e.g. ["soap", "rest"].
	Bindings []string `json:"bindings"`
	// Operations lists operation names, indexed for search.
	Operations []string `json:"operations"`
	// Provider identifies who published the entry.
	Provider string `json:"provider"`
	// Published is when the entry was first registered.
	Published time.Time `json:"published"`
	// LeaseExpires is when the entry's lease lapses; expired entries
	// are reported unavailable and eventually evicted.
	LeaseExpires time.Time `json:"leaseExpires"`
}

// Available reports whether the entry's lease is current at t.
func (e *Entry) Available(t time.Time) bool { return t.Before(e.LeaseExpires) }

// snapshot is one immutable registry state. Readers load it atomically
// and never take a lock; writers build a copied successor under wmu and
// publish it with one atomic store (RCU). Entries and posting maps are
// shared structurally between snapshots — a write copies only the outer
// maps and the inner values it touches, and nothing reachable from a
// published snapshot is ever mutated again.
type snapshot struct {
	entries map[string]*Entry
	// index is the inverted keyword index: token → entry name →
	// normalized term frequency. It is maintained incrementally on
	// Publish/Unpublish/Evict so Search never re-tokenizes the corpus;
	// liveness is filtered at query time (a lapsed lease hides an entry
	// without touching the index).
	index map[string]map[string]float64
	// docTF remembers each entry's term-frequency vector so its postings
	// can be removed when the entry changes or leaves.
	docTF map[string]map[string]float64
	// minLease is the earliest lease expiry across entries. While the
	// query clock is before it, every entry is live and search skips all
	// per-entry liveness checks (the common steady-state fast path).
	minLease time.Time
}

// Registry is an in-memory service directory, safe for concurrent use.
// Lookups are lock-free snapshot reads; publishes serialize on a writer
// mutex and never block a reader.
type Registry struct {
	wmu   sync.Mutex
	snap  atomic.Pointer[snapshot]
	lease time.Duration
	now   func() time.Time
}

// Option configures a Registry.
type Option func(*Registry)

// WithLease sets the lease duration (default 5 minutes).
func WithLease(d time.Duration) Option { return func(r *Registry) { r.lease = d } }

// WithClock sets the time source, for deterministic tests.
func WithClock(now func() time.Time) Option { return func(r *Registry) { r.now = now } }

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		lease: 5 * time.Minute,
		now:   time.Now,
	}
	r.snap.Store(&snapshot{
		entries: map[string]*Entry{},
		index:   map[string]map[string]float64{},
		docTF:   map[string]map[string]float64{},
	})
	for _, o := range opts {
		o(r)
	}
	return r
}

// load returns the current immutable snapshot.
func (r *Registry) load() *snapshot { return r.snap.Load() }

// cloneForWrite copies the current snapshot's outer maps. The caller must
// hold wmu, mutate only via the snapshot's copy-on-write helpers (or by
// installing fresh *Entry values), and install the result with publish.
func (r *Registry) cloneForWrite() *snapshot {
	old := r.snap.Load()
	ns := &snapshot{
		entries: make(map[string]*Entry, len(old.entries)+1),
		index:   make(map[string]map[string]float64, len(old.index)),
		docTF:   make(map[string]map[string]float64, len(old.docTF)),
	}
	for k, v := range old.entries {
		ns.entries[k] = v
	}
	for k, v := range old.index {
		ns.index[k] = v
	}
	for k, v := range old.docTF {
		ns.docTF[k] = v
	}
	return ns
}

// publish recomputes the snapshot's lease horizon and installs it as the
// current state. The caller must hold wmu.
func (r *Registry) publish(ns *snapshot) {
	first := true
	for _, e := range ns.entries {
		if first || e.LeaseExpires.Before(ns.minLease) {
			ns.minLease = e.LeaseExpires
			first = false
		}
	}
	r.snap.Store(ns)
}

var categoryRE = regexp.MustCompile(`^[a-z0-9-]+(/[a-z0-9-]+)*$`)

// validateEntry applies the publish-time structural checks.
func validateEntry(e Entry) error {
	if e.Name == "" || e.Endpoint == "" {
		return fmt.Errorf("%w: name and endpoint are required", ErrInvalid)
	}
	if e.Category != "" && !categoryRE.MatchString(e.Category) {
		return fmt.Errorf("%w: bad category %q", ErrInvalid, e.Category)
	}
	return nil
}

// Publish registers (or re-registers) an entry and grants a fresh lease.
func (r *Registry) Publish(e Entry) error {
	if err := validateEntry(e); err != nil {
		return err
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	now := r.now()
	ns := r.cloneForWrite()
	if old, ok := ns.entries[e.Name]; ok {
		e.Published = old.Published
	} else {
		e.Published = now
	}
	e.LeaseExpires = now.Add(r.lease)
	copied := e
	ns.entries[e.Name] = &copied
	ns.indexEntry(&copied)
	r.publish(ns)
	return nil
}

// indexEntry (re)computes the entry's term-frequency vector and installs
// its postings, copying each touched posting map (never mutating one
// shared with a published snapshot).
func (s *snapshot) indexEntry(e *Entry) {
	s.unindex(e.Name)
	toks := docTokens(e)
	tf := make(map[string]float64, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	norm := float64(len(toks))
	for t := range tf {
		tf[t] /= norm
	}
	s.docTF[e.Name] = tf
	for t, v := range tf {
		old := s.index[t]
		post := make(map[string]float64, len(old)+1)
		for n, pv := range old {
			post[n] = pv
		}
		post[e.Name] = v
		s.index[t] = post
	}
}

// unindex removes the entry's postings, copying each touched posting map.
func (s *snapshot) unindex(name string) {
	tf, ok := s.docTF[name]
	if !ok {
		return
	}
	for t := range tf {
		old := s.index[t]
		if len(old) <= 1 {
			delete(s.index, t)
			continue
		}
		post := make(map[string]float64, len(old)-1)
		for n, v := range old {
			if n != name {
				post[n] = v
			}
		}
		s.index[t] = post
	}
	delete(s.docTF, name)
}

// prepare resolves what Publish would install for e — validation,
// Published preservation for re-registrations, a fresh lease — without
// mutating the registry. It is the write-ahead half of a durable publish:
// the resolved entry is logged first and then installed verbatim via
// Restore, so log replay reproduces the exact same state.
func (r *Registry) prepare(e Entry) (Entry, error) {
	if err := validateEntry(e); err != nil {
		return Entry{}, err
	}
	s := r.load()
	now := r.now()
	if old, ok := s.entries[e.Name]; ok {
		e.Published = old.Published
	} else {
		e.Published = now
	}
	e.LeaseExpires = now.Add(r.lease)
	return e, nil
}

// Restore installs an entry verbatim — Published and LeaseExpires
// included — and rebuilds its index postings. It is the replay primitive
// of the durable registry: restoring the same entry always produces the
// same state, which keeps crash recovery deterministic.
func (r *Registry) Restore(e Entry) error {
	if err := validateEntry(e); err != nil {
		return err
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	ns := r.cloneForWrite()
	copied := e
	ns.entries[e.Name] = &copied
	ns.indexEntry(&copied)
	r.publish(ns)
	return nil
}

// setLease pins an entry's lease expiry to an exact instant — the replay
// primitive behind durable heartbeats.
func (r *Registry) setLease(name string, t time.Time) error {
	return r.updateEntry(name, func(e *Entry) { e.LeaseExpires = t })
}

// Heartbeat renews the lease of an entry.
func (r *Registry) Heartbeat(name string) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	expires := r.now().Add(r.lease)
	return r.updateEntryLocked(name, func(e *Entry) { e.LeaseExpires = expires })
}

// setPublished pins an entry's publication time — used when loading a
// directory document that recorded one.
func (r *Registry) setPublished(name string, when time.Time) error {
	return r.updateEntry(name, func(e *Entry) { e.Published = when })
}

// updateEntry applies fn to a copy of the named entry and publishes the
// resulting snapshot (postings are unaffected: indexed fields never
// change through this path).
func (r *Registry) updateEntry(name string, fn func(*Entry)) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	return r.updateEntryLocked(name, fn)
}

func (r *Registry) updateEntryLocked(name string, fn func(*Entry)) error {
	ns := r.cloneForWrite()
	e, ok := ns.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	copied := *e
	fn(&copied)
	ns.entries[name] = &copied
	r.publish(ns)
	return nil
}

// Unpublish removes an entry.
func (r *Registry) Unpublish(name string) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	ns := r.cloneForWrite()
	if _, ok := ns.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(ns.entries, name)
	ns.unindex(name)
	r.publish(ns)
	return nil
}

// Get returns the entry by name.
func (r *Registry) Get(name string) (Entry, error) {
	e, ok := r.load().entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return *e, nil
}

// List returns all entries sorted by name. When liveOnly, lapsed leases
// are filtered out.
func (r *Registry) List(liveOnly bool) []Entry {
	s := r.load()
	now := r.now()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		if liveOnly && !e.Available(now) {
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCategory returns live entries whose category equals or falls under the
// given taxonomy prefix ("security" matches "security/encryption").
func (r *Registry) ByCategory(prefix string) []Entry {
	var out []Entry
	for _, e := range r.List(true) {
		if e.Category == prefix || strings.HasPrefix(e.Category, prefix+"/") {
			out = append(out, e)
		}
	}
	return out
}

// Categories returns the sorted distinct categories of live entries.
func (r *Registry) Categories() []string {
	seen := map[string]bool{}
	for _, e := range r.List(true) {
		if e.Category != "" {
			seen[e.Category] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Evict removes entries whose lease lapsed more than grace ago; it returns
// the evicted names.
func (r *Registry) Evict(grace time.Duration) []string {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	now := r.now()
	var evicted []string
	ns := r.cloneForWrite()
	for name, e := range ns.entries {
		if now.Sub(e.LeaseExpires) > grace {
			delete(ns.entries, name)
			ns.unindex(name)
			evicted = append(evicted, name)
		}
	}
	if len(evicted) > 0 {
		r.publish(ns)
	}
	sort.Strings(evicted)
	return evicted
}

// Match is one ranked search result.
type Match struct {
	Entry Entry   `json:"entry"`
	Score float64 `json:"score"`
}

var tokenRE = regexp.MustCompile(`[a-z0-9]+`)

func tokenize(s string) []string {
	return tokenRE.FindAllString(strings.ToLower(s), -1)
}

// docTokens returns the searchable token multiset of an entry.
func docTokens(e *Entry) []string {
	var parts []string
	parts = append(parts, tokenize(e.Name)...)
	parts = append(parts, tokenize(camelSplit(e.Name))...)
	parts = append(parts, tokenize(e.Doc)...)
	parts = append(parts, tokenize(strings.ReplaceAll(e.Category, "/", " "))...)
	for _, op := range e.Operations {
		parts = append(parts, tokenize(camelSplit(op))...)
	}
	return parts
}

// camelSplit breaks CamelCase identifiers into words so "ShoppingCart"
// matches the query "cart".
func camelSplit(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Search ranks live entries against the query with TF-IDF cosine-like
// scoring and returns matches in descending score order. Empty queries
// are invalid. Scoring walks the inverted index postings for the query
// tokens only — the corpus is never re-tokenized per query — and full
// entries are materialized only for the top `limit` results, after
// ranking.
func (r *Registry) Search(query string, limit int) ([]Match, error) {
	qTokens := tokenize(query)
	if len(qTokens) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrInvalid)
	}
	s := r.load()
	ranked := s.searchScored(qTokens, r.now())
	sortScored(ranked)
	if limit > 0 && len(ranked) > limit {
		ranked = ranked[:limit]
	}
	if len(ranked) == 0 {
		return nil, nil
	}
	matches := make([]Match, len(ranked))
	for i, sc := range ranked {
		matches[i] = Match{Entry: *s.entries[sc.name], Score: sc.score}
	}
	return matches, nil
}

// scored is a ranked result before entry materialization: copying a full
// Entry per candidate is the dominant cost of a wide search, so ranking
// carries only (name, score) and the caller copies the survivors.
type scored struct {
	name  string
	score float64
}

// sortScored orders by score descending, name ascending — the Search
// result contract.
func sortScored(ranked []scored) {
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
}

// searchScored scores live entries against the query tokens, unsorted.
// Term frequencies come from the index as built at publish time; document
// frequency and corpus size are computed over live entries at query time,
// keeping scores identical to a full scan of the live corpus. When the
// snapshot's lease horizon says every entry is live (the steady state),
// all per-entry liveness checks collapse to map-length reads.
func (s *snapshot) searchScored(qTokens []string, now time.Time) []scored {
	if len(s.entries) == 0 {
		return nil
	}
	allLive := now.Before(s.minLease)
	n := len(s.entries)
	if !allLive {
		n = 0
		for _, e := range s.entries {
			if e.Available(now) {
				n++
			}
		}
		if n == 0 {
			return nil
		}
	}
	nf := float64(n)
	var scores map[string]float64
	for _, q := range qTokens {
		post := s.index[q]
		if len(post) == 0 {
			continue
		}
		df := len(post)
		if !allLive {
			df = 0
			for name := range post {
				if e, ok := s.entries[name]; ok && e.Available(now) {
					df++
				}
			}
			if df == 0 {
				continue
			}
		}
		idf := math.Log(1 + nf/float64(df))
		if scores == nil {
			scores = make(map[string]float64, len(post))
		}
		if allLive {
			for name, tf := range post {
				scores[name] += tf * idf
			}
		} else {
			for name, tf := range post {
				if e, ok := s.entries[name]; ok && e.Available(now) {
					scores[name] += tf * idf
				}
			}
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]scored, 0, len(scores))
	for name, sc := range scores {
		out = append(out, scored{name: name, score: sc})
	}
	return out
}

// Len reports the number of entries (including lapsed ones).
func (r *Registry) Len() int {
	return len(r.load().entries)
}
