// Package registry implements the service broker of the SOA triangle
// (provider → broker ← client): a directory where providers publish
// service entries and clients discover them. It supplies the pieces the
// paper's §V describes for the ASU repository and service search engine:
// a category taxonomy, a keyword inverted index with TF-IDF ranking,
// liveness leases with heartbeats (addressing the "services are often
// offline or removed without notice" complaint about free directories),
// and a REST API with a matching client.
package registry

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInvalid reports a malformed entry or query.
var ErrInvalid = errors.New("registry: invalid input")

// ErrNotFound reports a missing entry.
var ErrNotFound = errors.New("registry: not found")

// Entry is one published service.
type Entry struct {
	// Name uniquely identifies the service in the registry.
	Name string `json:"name"`
	// Namespace is the service's XML namespace.
	Namespace string `json:"namespace"`
	// Doc is the human description, indexed for keyword search.
	Doc string `json:"doc"`
	// Category is a slash-separated taxonomy path, e.g. "security/encryption".
	Category string `json:"category"`
	// Endpoint is the base URL where the service is hosted.
	Endpoint string `json:"endpoint"`
	// Bindings lists supported protocols, e.g. ["soap", "rest"].
	Bindings []string `json:"bindings"`
	// Operations lists operation names, indexed for search.
	Operations []string `json:"operations"`
	// Provider identifies who published the entry.
	Provider string `json:"provider"`
	// Published is when the entry was first registered.
	Published time.Time `json:"published"`
	// LeaseExpires is when the entry's lease lapses; expired entries
	// are reported unavailable and eventually evicted.
	LeaseExpires time.Time `json:"leaseExpires"`
}

// Available reports whether the entry's lease is current at t.
func (e *Entry) Available(t time.Time) bool { return t.Before(e.LeaseExpires) }

// Registry is an in-memory service directory, safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// index is the inverted keyword index: token → entry name →
	// normalized term frequency. It is maintained incrementally on
	// Publish/Unpublish/Evict so Search never re-tokenizes the corpus;
	// liveness is filtered at query time (a lapsed lease hides an entry
	// without touching the index).
	index map[string]map[string]float64
	// docTF remembers each entry's term-frequency vector so its postings
	// can be removed when the entry changes or leaves.
	docTF map[string]map[string]float64
	// lease is the duration granted on publish and heartbeat.
	lease time.Duration
	now   func() time.Time
}

// Option configures a Registry.
type Option func(*Registry)

// WithLease sets the lease duration (default 5 minutes).
func WithLease(d time.Duration) Option { return func(r *Registry) { r.lease = d } }

// WithClock sets the time source, for deterministic tests.
func WithClock(now func() time.Time) Option { return func(r *Registry) { r.now = now } }

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		entries: make(map[string]*Entry),
		index:   make(map[string]map[string]float64),
		docTF:   make(map[string]map[string]float64),
		lease:   5 * time.Minute,
		now:     time.Now,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

var categoryRE = regexp.MustCompile(`^[a-z0-9-]+(/[a-z0-9-]+)*$`)

// validateEntry applies the publish-time structural checks.
func validateEntry(e Entry) error {
	if e.Name == "" || e.Endpoint == "" {
		return fmt.Errorf("%w: name and endpoint are required", ErrInvalid)
	}
	if e.Category != "" && !categoryRE.MatchString(e.Category) {
		return fmt.Errorf("%w: bad category %q", ErrInvalid, e.Category)
	}
	return nil
}

// Publish registers (or re-registers) an entry and grants a fresh lease.
func (r *Registry) Publish(e Entry) error {
	if err := validateEntry(e); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if old, ok := r.entries[e.Name]; ok {
		e.Published = old.Published
	} else {
		e.Published = now
	}
	e.LeaseExpires = now.Add(r.lease)
	copied := e
	r.entries[e.Name] = &copied
	r.indexLocked(&copied)
	return nil
}

// indexLocked (re)computes the entry's term-frequency vector and installs
// its postings. Must hold the write lock.
func (r *Registry) indexLocked(e *Entry) {
	r.unindexLocked(e.Name)
	toks := docTokens(e)
	tf := make(map[string]float64, len(toks))
	for _, t := range toks {
		tf[t]++
	}
	norm := float64(len(toks))
	for t := range tf {
		tf[t] /= norm
	}
	r.docTF[e.Name] = tf
	for t, v := range tf {
		post := r.index[t]
		if post == nil {
			post = make(map[string]float64)
			r.index[t] = post
		}
		post[e.Name] = v
	}
}

// unindexLocked removes the entry's postings. Must hold the write lock.
func (r *Registry) unindexLocked(name string) {
	tf, ok := r.docTF[name]
	if !ok {
		return
	}
	for t := range tf {
		post := r.index[t]
		delete(post, name)
		if len(post) == 0 {
			delete(r.index, t)
		}
	}
	delete(r.docTF, name)
}

// prepare resolves what Publish would install for e — validation,
// Published preservation for re-registrations, a fresh lease — without
// mutating the registry. It is the write-ahead half of a durable publish:
// the resolved entry is logged first and then installed verbatim via
// Restore, so log replay reproduces the exact same state.
func (r *Registry) prepare(e Entry) (Entry, error) {
	if err := validateEntry(e); err != nil {
		return Entry{}, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	if old, ok := r.entries[e.Name]; ok {
		e.Published = old.Published
	} else {
		e.Published = now
	}
	e.LeaseExpires = now.Add(r.lease)
	return e, nil
}

// Restore installs an entry verbatim — Published and LeaseExpires
// included — and rebuilds its index postings. It is the replay primitive
// of the durable registry: restoring the same entry always produces the
// same state, which keeps crash recovery deterministic.
func (r *Registry) Restore(e Entry) error {
	if err := validateEntry(e); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copied := e
	r.entries[e.Name] = &copied
	r.indexLocked(&copied)
	return nil
}

// setLease pins an entry's lease expiry to an exact instant — the replay
// primitive behind durable heartbeats.
func (r *Registry) setLease(name string, t time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.LeaseExpires = t
	return nil
}

// Heartbeat renews the lease of an entry.
func (r *Registry) Heartbeat(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.LeaseExpires = r.now().Add(r.lease)
	return nil
}

// Unpublish removes an entry.
func (r *Registry) Unpublish(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.entries, name)
	r.unindexLocked(name)
	return nil
}

// Get returns the entry by name.
func (r *Registry) Get(name string) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return *e, nil
}

// List returns all entries sorted by name. When liveOnly, lapsed leases
// are filtered out.
func (r *Registry) List(liveOnly bool) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		if liveOnly && !e.Available(now) {
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCategory returns live entries whose category equals or falls under the
// given taxonomy prefix ("security" matches "security/encryption").
func (r *Registry) ByCategory(prefix string) []Entry {
	var out []Entry
	for _, e := range r.List(true) {
		if e.Category == prefix || strings.HasPrefix(e.Category, prefix+"/") {
			out = append(out, e)
		}
	}
	return out
}

// Categories returns the sorted distinct categories of live entries.
func (r *Registry) Categories() []string {
	seen := map[string]bool{}
	for _, e := range r.List(true) {
		if e.Category != "" {
			seen[e.Category] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Evict removes entries whose lease lapsed more than grace ago; it returns
// the evicted names.
func (r *Registry) Evict(grace time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var evicted []string
	for name, e := range r.entries {
		if now.Sub(e.LeaseExpires) > grace {
			delete(r.entries, name)
			r.unindexLocked(name)
			evicted = append(evicted, name)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// Match is one ranked search result.
type Match struct {
	Entry Entry   `json:"entry"`
	Score float64 `json:"score"`
}

var tokenRE = regexp.MustCompile(`[a-z0-9]+`)

func tokenize(s string) []string {
	return tokenRE.FindAllString(strings.ToLower(s), -1)
}

// docTokens returns the searchable token multiset of an entry.
func docTokens(e *Entry) []string {
	var parts []string
	parts = append(parts, tokenize(e.Name)...)
	parts = append(parts, tokenize(camelSplit(e.Name))...)
	parts = append(parts, tokenize(e.Doc)...)
	parts = append(parts, tokenize(strings.ReplaceAll(e.Category, "/", " "))...)
	for _, op := range e.Operations {
		parts = append(parts, tokenize(camelSplit(op))...)
	}
	return parts
}

// camelSplit breaks CamelCase identifiers into words so "ShoppingCart"
// matches the query "cart".
func camelSplit(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Search ranks live entries against the query with TF-IDF cosine-like
// scoring and returns matches in descending score order. Empty queries
// are invalid. Scoring walks the inverted index postings for the query
// tokens only — the corpus is never re-tokenized per query.
func (r *Registry) Search(query string, limit int) ([]Match, error) {
	qTokens := tokenize(query)
	if len(qTokens) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrInvalid)
	}
	matches := r.searchMatches(qTokens)
	sortMatches(matches)
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	return matches, nil
}

func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Entry.Name < matches[j].Entry.Name
	})
}

// searchMatches scores live entries against the query tokens, unsorted.
// Term frequencies come from the index as built at publish time; document
// frequency and corpus size are computed over live entries at query time,
// keeping scores identical to a full scan of the live corpus.
func (r *Registry) searchMatches(qTokens []string) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	n := 0
	for _, e := range r.entries {
		if e.Available(now) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	nf := float64(n)
	var scores map[string]float64
	for _, q := range qTokens {
		post := r.index[q]
		if len(post) == 0 {
			continue
		}
		df := 0
		for name := range post {
			if e, ok := r.entries[name]; ok && e.Available(now) {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + nf/float64(df))
		if scores == nil {
			scores = make(map[string]float64, len(post))
		}
		for name, tf := range post {
			if e, ok := r.entries[name]; ok && e.Available(now) {
				scores[name] += tf * idf
			}
		}
	}
	var matches []Match
	for name, sc := range scores {
		matches = append(matches, Match{Entry: *r.entries[name], Score: sc})
	}
	return matches
}

// Len reports the number of entries (including lapsed ones).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
