// Package registry implements the service broker of the SOA triangle
// (provider → broker ← client): a directory where providers publish
// service entries and clients discover them. It supplies the pieces the
// paper's §V describes for the ASU repository and service search engine:
// a category taxonomy, a keyword inverted index with TF-IDF ranking,
// liveness leases with heartbeats (addressing the "services are often
// offline or removed without notice" complaint about free directories),
// and a REST API with a matching client.
package registry

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInvalid reports a malformed entry or query.
var ErrInvalid = errors.New("registry: invalid input")

// ErrNotFound reports a missing entry.
var ErrNotFound = errors.New("registry: not found")

// Entry is one published service.
type Entry struct {
	// Name uniquely identifies the service in the registry.
	Name string `json:"name"`
	// Namespace is the service's XML namespace.
	Namespace string `json:"namespace"`
	// Doc is the human description, indexed for keyword search.
	Doc string `json:"doc"`
	// Category is a slash-separated taxonomy path, e.g. "security/encryption".
	Category string `json:"category"`
	// Endpoint is the base URL where the service is hosted.
	Endpoint string `json:"endpoint"`
	// Bindings lists supported protocols, e.g. ["soap", "rest"].
	Bindings []string `json:"bindings"`
	// Operations lists operation names, indexed for search.
	Operations []string `json:"operations"`
	// Provider identifies who published the entry.
	Provider string `json:"provider"`
	// Published is when the entry was first registered.
	Published time.Time `json:"published"`
	// LeaseExpires is when the entry's lease lapses; expired entries
	// are reported unavailable and eventually evicted.
	LeaseExpires time.Time `json:"leaseExpires"`
}

// Available reports whether the entry's lease is current at t.
func (e *Entry) Available(t time.Time) bool { return t.Before(e.LeaseExpires) }

// Registry is an in-memory service directory, safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// lease is the duration granted on publish and heartbeat.
	lease time.Duration
	now   func() time.Time
}

// Option configures a Registry.
type Option func(*Registry)

// WithLease sets the lease duration (default 5 minutes).
func WithLease(d time.Duration) Option { return func(r *Registry) { r.lease = d } }

// WithClock sets the time source, for deterministic tests.
func WithClock(now func() time.Time) Option { return func(r *Registry) { r.now = now } }

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		entries: make(map[string]*Entry),
		lease:   5 * time.Minute,
		now:     time.Now,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

var categoryRE = regexp.MustCompile(`^[a-z0-9-]+(/[a-z0-9-]+)*$`)

// Publish registers (or re-registers) an entry and grants a fresh lease.
func (r *Registry) Publish(e Entry) error {
	if e.Name == "" || e.Endpoint == "" {
		return fmt.Errorf("%w: name and endpoint are required", ErrInvalid)
	}
	if e.Category != "" && !categoryRE.MatchString(e.Category) {
		return fmt.Errorf("%w: bad category %q", ErrInvalid, e.Category)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if old, ok := r.entries[e.Name]; ok {
		e.Published = old.Published
	} else {
		e.Published = now
	}
	e.LeaseExpires = now.Add(r.lease)
	copied := e
	r.entries[e.Name] = &copied
	return nil
}

// Heartbeat renews the lease of an entry.
func (r *Registry) Heartbeat(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.LeaseExpires = r.now().Add(r.lease)
	return nil
}

// Unpublish removes an entry.
func (r *Registry) Unpublish(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.entries, name)
	return nil
}

// Get returns the entry by name.
func (r *Registry) Get(name string) (Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return *e, nil
}

// List returns all entries sorted by name. When liveOnly, lapsed leases
// are filtered out.
func (r *Registry) List(liveOnly bool) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	now := r.now()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		if liveOnly && !e.Available(now) {
			continue
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCategory returns live entries whose category equals or falls under the
// given taxonomy prefix ("security" matches "security/encryption").
func (r *Registry) ByCategory(prefix string) []Entry {
	var out []Entry
	for _, e := range r.List(true) {
		if e.Category == prefix || strings.HasPrefix(e.Category, prefix+"/") {
			out = append(out, e)
		}
	}
	return out
}

// Categories returns the sorted distinct categories of live entries.
func (r *Registry) Categories() []string {
	seen := map[string]bool{}
	for _, e := range r.List(true) {
		if e.Category != "" {
			seen[e.Category] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Evict removes entries whose lease lapsed more than grace ago; it returns
// the evicted names.
func (r *Registry) Evict(grace time.Duration) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var evicted []string
	for name, e := range r.entries {
		if now.Sub(e.LeaseExpires) > grace {
			delete(r.entries, name)
			evicted = append(evicted, name)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// Match is one ranked search result.
type Match struct {
	Entry Entry   `json:"entry"`
	Score float64 `json:"score"`
}

var tokenRE = regexp.MustCompile(`[a-z0-9]+`)

func tokenize(s string) []string {
	return tokenRE.FindAllString(strings.ToLower(s), -1)
}

// docTokens returns the searchable token multiset of an entry.
func docTokens(e *Entry) []string {
	var parts []string
	parts = append(parts, tokenize(e.Name)...)
	parts = append(parts, tokenize(camelSplit(e.Name))...)
	parts = append(parts, tokenize(e.Doc)...)
	parts = append(parts, tokenize(strings.ReplaceAll(e.Category, "/", " "))...)
	for _, op := range e.Operations {
		parts = append(parts, tokenize(camelSplit(op))...)
	}
	return parts
}

// camelSplit breaks CamelCase identifiers into words so "ShoppingCart"
// matches the query "cart".
func camelSplit(s string) string {
	var b strings.Builder
	for i, r := range s {
		if i > 0 && r >= 'A' && r <= 'Z' {
			b.WriteByte(' ')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Search ranks live entries against the query with TF-IDF cosine-like
// scoring and returns matches in descending score order. Empty queries
// are invalid.
func (r *Registry) Search(query string, limit int) ([]Match, error) {
	qTokens := tokenize(query)
	if len(qTokens) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrInvalid)
	}
	entries := r.List(true)
	if len(entries) == 0 {
		return nil, nil
	}
	// Document frequency per token.
	df := map[string]int{}
	tfs := make([]map[string]float64, len(entries))
	for i := range entries {
		toks := docTokens(&entries[i])
		tf := map[string]float64{}
		for _, t := range toks {
			tf[t]++
		}
		for t := range tf {
			df[t]++
		}
		// Normalize by document length.
		for t := range tf {
			tf[t] /= float64(len(toks))
		}
		tfs[i] = tf
	}
	n := float64(len(entries))
	var matches []Match
	for i := range entries {
		score := 0.0
		for _, q := range qTokens {
			tf := tfs[i][q]
			if tf == 0 {
				continue
			}
			idf := math.Log(1 + n/float64(df[q]))
			score += tf * idf
		}
		if score > 0 {
			matches = append(matches, Match{Entry: entries[i], Score: score})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Entry.Name < matches[j].Entry.Name
	})
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	return matches, nil
}

// Len reports the number of entries (including lapsed ones).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
