package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"soc/internal/callplane"
	"soc/internal/rest"
	"soc/internal/telemetry"
)

// API exposes a Registry over REST:
//
//	GET    /registry/services            list (all|live)
//	POST   /registry/services            publish (JSON Entry)
//	GET    /registry/services/{name}     fetch one
//	DELETE /registry/services/{name}     unpublish
//	POST   /registry/services/{name}/heartbeat
//	GET    /registry/search?q=...&limit=N
//	GET    /registry/categories
//	GET    /registry/categories/{cat}    entries under a taxonomy prefix
type API struct {
	reg    Directory
	router *rest.Router
}

// Directory is the registry surface the REST API serves. Both *Registry
// (in-memory) and *DurableRegistry (write-ahead logged) implement it, so
// a deployment picks durability without touching the API layer.
type Directory interface {
	Publish(e Entry) error
	Unpublish(name string) error
	Heartbeat(name string) error
	Get(name string) (Entry, error)
	List(liveOnly bool) []Entry
	Search(query string, limit int) ([]Match, error)
	Categories() []string
	ByCategory(prefix string) []Entry
}

// NewAPI wraps a registry in its REST API.
func NewAPI(reg Directory) *API {
	a := &API{reg: reg, router: rest.NewRouter()}
	a.router.Use(rest.Recovery())
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(a.router.GET("/registry/services", a.list))
	must(a.router.POST("/registry/services", a.publish))
	must(a.router.GET("/registry/services/{name}", a.get))
	must(a.router.DELETE("/registry/services/{name}", a.unpublish))
	must(a.router.POST("/registry/services/{name}/heartbeat", a.heartbeat))
	must(a.router.GET("/registry/search", a.search))
	must(a.router.GET("/registry/categories", a.categories))
	must(a.router.GET("/registry/categories/{cat}", a.byCategory))
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.router.ServeHTTP(w, r) }

// Use appends middleware to the API's router (first registered
// outermost) — e.g. rest.Tracing to join registry lookups into the
// caller's trace tree.
func (a *API) Use(mw ...rest.Middleware) { a.router.Use(mw...) }

func (a *API) list(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	liveOnly := r.URL.Query().Get("all") == ""
	rest.WriteResponse(w, r, http.StatusOK, a.reg.List(liveOnly))
}

func (a *API) publish(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	var e Entry
	if err := rest.ReadJSON(r, &e, 0); err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := a.reg.Publish(e); err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	stored, _ := a.reg.Get(e.Name)
	rest.WriteResponse(w, r, http.StatusCreated, stored)
}

func (a *API) get(w http.ResponseWriter, r *http.Request, p rest.Params) {
	e, err := a.reg.Get(p["name"])
	if err != nil {
		rest.WriteError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	rest.WriteResponse(w, r, http.StatusOK, e)
}

func (a *API) unpublish(w http.ResponseWriter, r *http.Request, p rest.Params) {
	if err := a.reg.Unpublish(p["name"]); err != nil {
		rest.WriteError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) heartbeat(w http.ResponseWriter, r *http.Request, p rest.Params) {
	if err := a.reg.Heartbeat(p["name"]); err != nil {
		rest.WriteError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *API) search(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	q := r.URL.Query().Get("q")
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
	matches, err := a.reg.Search(q, limit)
	if err != nil {
		rest.WriteError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if matches == nil {
		matches = []Match{}
	}
	rest.WriteResponse(w, r, http.StatusOK, matches)
}

func (a *API) categories(w http.ResponseWriter, r *http.Request, _ rest.Params) {
	rest.WriteResponse(w, r, http.StatusOK, a.reg.Categories())
}

func (a *API) byCategory(w http.ResponseWriter, r *http.Request, p rest.Params) {
	entries := a.reg.ByCategory(p["cat"])
	if entries == nil {
		entries = []Entry{}
	}
	rest.WriteResponse(w, r, http.StatusOK, entries)
}

// Client talks to a remote registry API — a thin binding over the call
// plane: requests carry the caller's deadline and trace context, and each
// operation records a client span.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// Tracer records client spans; nil uses the process default.
	Tracer *telemetry.Tracer
}

// NewClient returns a registry client.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 15 * time.Second}
}

func (c *Client) tracer() *telemetry.Tracer {
	if c.Tracer != nil {
		return c.Tracer
	}
	return telemetry.Default()
}

func (c *Client) do(ctx context.Context, op, method, path string, body any, out any) error {
	sp, ctx := c.tracer().StartSpan(ctx, telemetry.KindClient, "registry."+op)
	if sp != nil {
		sp.Target = c.BaseURL
		sp.Annotate("binding", "registry")
	}
	err := c.exchange(ctx, method, path, body, out)
	sp.EndErr(err)
	return err
}

func (c *Client) exchange(ctx context.Context, method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(data)
	}
	req, err := callplane.NewRequest(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("registry: transport: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%w: status %d: %s", ErrInvalid, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("registry: decoding: %w", err)
		}
	}
	return nil
}

// Publish registers the entry remotely.
func (c *Client) Publish(ctx context.Context, e Entry) error {
	return c.do(ctx, "Publish", http.MethodPost, "/registry/services", e, nil)
}

// Heartbeat renews the remote lease.
func (c *Client) Heartbeat(ctx context.Context, name string) error {
	return c.do(ctx, "Heartbeat", http.MethodPost, "/registry/services/"+url.PathEscape(name)+"/heartbeat", nil, nil)
}

// Unpublish removes the remote entry.
func (c *Client) Unpublish(ctx context.Context, name string) error {
	return c.do(ctx, "Unpublish", http.MethodDelete, "/registry/services/"+url.PathEscape(name), nil, nil)
}

// Get fetches one entry.
func (c *Client) Get(ctx context.Context, name string) (Entry, error) {
	var e Entry
	err := c.do(ctx, "Get", http.MethodGet, "/registry/services/"+url.PathEscape(name), nil, &e)
	return e, err
}

// List fetches live entries.
func (c *Client) List(ctx context.Context) ([]Entry, error) {
	var out []Entry
	err := c.do(ctx, "List", http.MethodGet, "/registry/services", nil, &out)
	return out, err
}

// Search performs a ranked keyword search.
func (c *Client) Search(ctx context.Context, query string, limit int) ([]Match, error) {
	var out []Match
	path := "/registry/search?q=" + url.QueryEscape(query)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	err := c.do(ctx, "Search", http.MethodGet, path, nil, &out)
	return out, err
}
