package registry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := seeded(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<directory>") || !strings.Contains(buf.String(), `name="Encryption"`) {
		t.Errorf("serialized form:\n%s", buf.String())
	}
	restored := New()
	n, err := restored.Load(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 4 {
		t.Fatalf("Load: %d %v", n, err)
	}
	for _, want := range seedEntries() {
		got, err := restored.Get(want.Name)
		if err != nil {
			t.Fatalf("Get(%s): %v", want.Name, err)
		}
		if got.Namespace != want.Namespace || got.Doc != want.Doc ||
			got.Category != want.Category || got.Endpoint != want.Endpoint {
			t.Errorf("%s: %+v != %+v", want.Name, got, want)
		}
		if strings.Join(got.Bindings, ",") != strings.Join(want.Bindings, ",") {
			t.Errorf("%s bindings = %v", want.Name, got.Bindings)
		}
		if strings.Join(got.Operations, ",") != strings.Join(want.Operations, ",") {
			t.Errorf("%s operations = %v", want.Name, got.Operations)
		}
	}
	// Loaded entries are live (fresh leases) and searchable.
	matches, err := restored.Search("captcha", 1)
	if err != nil || len(matches) == 0 || matches[0].Entry.Name != "ImageVerifier" {
		t.Errorf("post-load search: %v %v", matches, err)
	}
}

func TestSavePreservesPublishedTime(t *testing.T) {
	now := time.Date(2014, 2, 7, 12, 0, 0, 0, time.UTC)
	r := New(WithClock(func() time.Time { return now }))
	_ = r.Publish(Entry{Name: "A", Endpoint: "http://a"})
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if _, err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, _ := restored.Get("A")
	if !got.Published.Equal(now) {
		t.Errorf("published = %v, want %v", got.Published, now)
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	cases := []string{
		"not xml",
		"<wrong/>",
		"<directory><other/></directory>",
		`<directory><service name=""><endpoint>http://x</endpoint></service></directory>`,
	}
	for _, c := range cases {
		r := New()
		if _, err := r.Load(strings.NewReader(c)); !errors.Is(err, ErrInvalid) {
			t.Errorf("Load(%q) = %v", c, err)
		}
	}
}

func TestLoadEmptyDirectory(t *testing.T) {
	r := New()
	n, err := r.Load(strings.NewReader("<directory/>"))
	if err != nil || n != 0 {
		t.Errorf("empty load: %d %v", n, err)
	}
}
