package registry

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"soc/internal/wal"
	"soc/internal/xmlkit"
)

// The registry persists as an XML directory document — the same data
// shape the ASU repository's registration page collects:
//
//	<directory>
//	  <service name="..." category="..." provider="...">
//	    <namespace>...</namespace>
//	    <doc>...</doc>
//	    <endpoint>...</endpoint>
//	    <bindings>soap,rest</bindings>
//	    <operations>Encrypt,Decrypt</operations>
//	    <published>RFC3339</published>
//	  </service>
//	</directory>

// Save writes every entry (live or lapsed) to w as XML.
func (r *Registry) Save(w io.Writer) error {
	root := xmlkit.NewElement("directory")
	for _, e := range r.List(false) {
		el := root.AppendChild(xmlkit.NewElement("service"))
		el.SetAttr("name", e.Name)
		if e.Category != "" {
			el.SetAttr("category", e.Category)
		}
		if e.Provider != "" {
			el.SetAttr("provider", e.Provider)
		}
		appendText := func(name, value string) {
			if value == "" {
				return
			}
			c := el.AppendChild(xmlkit.NewElement(name))
			c.AppendChild(xmlkit.NewText(value))
		}
		appendText("namespace", e.Namespace)
		appendText("doc", e.Doc)
		appendText("endpoint", e.Endpoint)
		appendText("bindings", strings.Join(e.Bindings, ","))
		appendText("operations", strings.Join(e.Operations, ","))
		appendText("published", e.Published.UTC().Format(time.RFC3339))
	}
	doc := &xmlkit.Document{Root: root}
	return doc.Write(w)
}

// SaveFile writes the XML directory document to path atomically: temp
// file + fsync + rename + directory fsync, so a crash mid-export leaves
// either the previous document or the new one, never a truncated mix.
func (r *Registry) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		return err
	}
	return wal.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// Load publishes every service element of an XML directory document into
// the registry (granting fresh leases) and returns how many were loaded.
func (r *Registry) Load(rd io.Reader) (int, error) {
	doc, err := xmlkit.ParseDocument(rd)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if doc.Root.Name != "directory" {
		return 0, fmt.Errorf("%w: root is <%s>, want <directory>", ErrInvalid, doc.Root.Name)
	}
	n := 0
	for _, el := range doc.Root.Elements() {
		if el.Name != "service" {
			return n, fmt.Errorf("%w: unexpected element <%s>", ErrInvalid, el.Name)
		}
		name, _ := el.Attr("name")
		category, _ := el.Attr("category")
		provider, _ := el.Attr("provider")
		e := Entry{
			Name:       name,
			Category:   category,
			Provider:   provider,
			Namespace:  el.ChildText("namespace"),
			Doc:        el.ChildText("doc"),
			Endpoint:   el.ChildText("endpoint"),
			Bindings:   splitList(el.ChildText("bindings")),
			Operations: splitList(el.ChildText("operations")),
		}
		if err := r.Publish(e); err != nil {
			return n, fmt.Errorf("%w: service %q: %v", ErrInvalid, name, err)
		}
		// Preserve the recorded publication time when present.
		if ts := el.ChildText("published"); ts != "" {
			if when, err := time.Parse(time.RFC3339, ts); err == nil {
				//soclint:ignore errdiscard the entry was published two lines up; a concurrent unpublish just forfeits the recorded time
				_ = r.setPublished(name, when)
			}
		}
		n++
	}
	return n, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
