package registry

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func seedEntries() []Entry {
	return []Entry{
		{Name: "Encryption", Doc: "AES encryption and decryption service", Category: "security/encryption",
			Endpoint: "http://venus/enc", Bindings: []string{"soap", "rest"}, Operations: []string{"Encrypt", "Decrypt"}},
		{Name: "ShoppingCart", Doc: "stateful shopping cart for web stores", Category: "commerce",
			Endpoint: "http://venus/cart", Bindings: []string{"rest"}, Operations: []string{"AddItem", "RemoveItem", "Checkout"}},
		{Name: "Mortgage", Doc: "mortgage application approval with credit score check", Category: "finance/lending",
			Endpoint: "http://venus/mortgage", Bindings: []string{"rest"}, Operations: []string{"Apply", "CheckStatus"}},
		{Name: "ImageVerifier", Doc: "captcha image generation to verify humans", Category: "security/captcha",
			Endpoint: "http://venus/captcha", Bindings: []string{"rest"}, Operations: []string{"NewChallenge", "Verify"}},
	}
}

func seeded(t *testing.T, opts ...Option) *Registry {
	t.Helper()
	r := New(opts...)
	for _, e := range seedEntries() {
		if err := r.Publish(e); err != nil {
			t.Fatalf("Publish(%s): %v", e.Name, err)
		}
	}
	return r
}

func TestPublishValidation(t *testing.T) {
	r := New()
	if err := r.Publish(Entry{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty entry: %v", err)
	}
	if err := r.Publish(Entry{Name: "X", Endpoint: "http://x", Category: "Bad Category!"}); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad category: %v", err)
	}
	if err := r.Publish(Entry{Name: "X", Endpoint: "http://x", Category: "a/b-c/d2"}); err != nil {
		t.Errorf("good category rejected: %v", err)
	}
}

func TestPublishPreservesFirstPublishedTime(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := New(WithClock(clock))
	_ = r.Publish(Entry{Name: "A", Endpoint: "http://a"})
	first, _ := r.Get("A")
	now = now.Add(time.Hour)
	_ = r.Publish(Entry{Name: "A", Endpoint: "http://a2"})
	second, _ := r.Get("A")
	if !second.Published.Equal(first.Published) {
		t.Errorf("published changed on re-publish: %v vs %v", second.Published, first.Published)
	}
	if second.Endpoint != "http://a2" {
		t.Errorf("endpoint not updated")
	}
}

func TestGetListUnpublish(t *testing.T) {
	r := seeded(t)
	e, err := r.Get("Mortgage")
	if err != nil || e.Category != "finance/lending" {
		t.Errorf("Get: %+v %v", e, err)
	}
	if _, err := r.Get("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing Get: %v", err)
	}
	if got := r.List(true); len(got) != 4 || got[0].Name != "Encryption" {
		t.Errorf("List = %v", got)
	}
	if err := r.Unpublish("Mortgage"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unpublish("Mortgage"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double unpublish: %v", err)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestLeaseExpiryAndHeartbeat(t *testing.T) {
	now := time.Unix(0, 0)
	r := New(WithClock(func() time.Time { return now }), WithLease(time.Minute))
	_ = r.Publish(Entry{Name: "A", Endpoint: "http://a"})
	_ = r.Publish(Entry{Name: "B", Endpoint: "http://b"})
	now = now.Add(30 * time.Second)
	if err := r.Heartbeat("A"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Second) // A alive (75s < 30+60), B lapsed (75s > 60)
	live := r.List(true)
	if len(live) != 1 || live[0].Name != "A" {
		t.Errorf("live = %v", live)
	}
	all := r.List(false)
	if len(all) != 2 {
		t.Errorf("all = %v", all)
	}
	if err := r.Heartbeat("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("heartbeat missing: %v", err)
	}
}

func TestEvict(t *testing.T) {
	now := time.Unix(0, 0)
	r := New(WithClock(func() time.Time { return now }), WithLease(time.Minute))
	_ = r.Publish(Entry{Name: "A", Endpoint: "http://a"})
	_ = r.Publish(Entry{Name: "B", Endpoint: "http://b"})
	now = now.Add(2 * time.Minute)
	_ = r.Heartbeat("B")
	evicted := r.Evict(30 * time.Second)
	if len(evicted) != 1 || evicted[0] != "A" {
		t.Errorf("evicted = %v", evicted)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestByCategoryAndCategories(t *testing.T) {
	r := seeded(t)
	sec := r.ByCategory("security")
	if len(sec) != 2 {
		t.Errorf("security = %v", sec)
	}
	enc := r.ByCategory("security/encryption")
	if len(enc) != 1 || enc[0].Name != "Encryption" {
		t.Errorf("security/encryption = %v", enc)
	}
	if got := r.ByCategory("sec"); got != nil {
		t.Errorf("prefix must be taxonomy-path based, got %v", got)
	}
	cats := r.Categories()
	if len(cats) != 4 || cats[0] != "commerce" {
		t.Errorf("categories = %v", cats)
	}
}

func TestSearchRanking(t *testing.T) {
	r := seeded(t)
	matches, err := r.Search("encryption", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Entry.Name != "Encryption" {
		t.Errorf("encryption query = %v", matches)
	}
	// CamelCase splitting: "cart" must find ShoppingCart.
	matches, err = r.Search("cart", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Entry.Name != "ShoppingCart" {
		t.Errorf("cart query = %v", matches)
	}
	// Operation names are indexed.
	matches, _ = r.Search("checkout", 0)
	if len(matches) != 1 || matches[0].Entry.Name != "ShoppingCart" {
		t.Errorf("checkout query = %v", matches)
	}
	// Multi-term query.
	matches, _ = r.Search("credit score mortgage", 0)
	if len(matches) == 0 || matches[0].Entry.Name != "Mortgage" {
		t.Errorf("multi-term = %v", matches)
	}
	if _, err := r.Search("", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty query: %v", err)
	}
	if _, err := r.Search("!!!", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("no-token query: %v", err)
	}
}

func TestSearchLimitAndOrder(t *testing.T) {
	r := seeded(t)
	matches, err := r.Search("service image verify security", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) > 2 {
		t.Errorf("limit ignored: %d", len(matches))
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Errorf("not sorted: %v", matches)
		}
	}
}

func TestSearchSkipsLapsedEntries(t *testing.T) {
	now := time.Unix(0, 0)
	r := New(WithClock(func() time.Time { return now }), WithLease(time.Minute))
	_ = r.Publish(Entry{Name: "Encryption", Doc: "encryption", Endpoint: "http://e"})
	now = now.Add(2 * time.Minute)
	matches, err := r.Search("encryption", 0)
	if err != nil || len(matches) != 0 {
		t.Errorf("lapsed entry surfaced: %v %v", matches, err)
	}
}

func TestAPIEndToEnd(t *testing.T) {
	reg := New()
	ts := httptest.NewServer(NewAPI(reg))
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	for _, e := range seedEntries() {
		if err := c.Publish(ctx, e); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	list, err := c.List(ctx)
	if err != nil || len(list) != 4 {
		t.Fatalf("List: %d %v", len(list), err)
	}
	e, err := c.Get(ctx, "ShoppingCart")
	if err != nil || e.Category != "commerce" {
		t.Errorf("Get: %+v %v", e, err)
	}
	if err := c.Heartbeat(ctx, "ShoppingCart"); err != nil {
		t.Errorf("Heartbeat: %v", err)
	}
	matches, err := c.Search(ctx, "captcha", 5)
	if err != nil || len(matches) == 0 || matches[0].Entry.Name != "ImageVerifier" {
		t.Errorf("Search: %v %v", matches, err)
	}
	if err := c.Unpublish(ctx, "Mortgage"); err != nil {
		t.Errorf("Unpublish: %v", err)
	}
	if _, err := c.Get(ctx, "Mortgage"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after unpublish: %v", err)
	}
	if err := c.Heartbeat(ctx, "Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Heartbeat ghost: %v", err)
	}
	if err := c.Publish(ctx, Entry{Name: "", Endpoint: ""}); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid publish: %v", err)
	}
	if _, err := c.Search(ctx, "", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty search: %v", err)
	}
}

func TestConcurrentPublishSearch(t *testing.T) {
	r := seeded(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Publish(Entry{Name: "Churn", Doc: "temporary churn service", Endpoint: "http://c"})
			_ = r.Unpublish("Churn")
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := r.Search("service", 0); err != nil {
			t.Fatalf("Search during churn: %v", err)
		}
	}
	<-done
}
