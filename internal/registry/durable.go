package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"soc/internal/wal"
)

// A walRecord is one logged mutation. Publish carries the fully resolved
// entry (Published and LeaseExpires included) and renew the exact expiry,
// so replay is verbatim — no clock reads during recovery, which keeps
// recovered state deterministic.
type walRecord struct {
	Op      string    `json:"op"` // "publish", "unpublish" or "renew"
	Entry   *Entry    `json:"entry,omitempty"`
	Name    string    `json:"name,omitempty"`
	Expires time.Time `json:"expires,omitempty"`
}

// DurableOptions tunes the persistence side of a DurableRegistry.
type DurableOptions struct {
	// WAL tunes the underlying log (segment size, snapshot retention).
	WAL wal.Options
	// SnapshotEvery folds the log into a snapshot (and compacts) after
	// this many appended records. 0 means 64; negative disables automatic
	// snapshots.
	SnapshotEvery int
}

// DurableRegistry is a Registry whose mutations survive crashes: every
// publish, unpublish and heartbeat is appended (and fsynced) to a
// write-ahead log BEFORE it is applied in memory, so an acknowledged
// mutation is on disk by the time the caller sees it succeed — the
// acked ⇒ durable contract the simulation harness verifies. Reads are the
// embedded Registry's. Periodically the whole directory is folded into a
// snapshot and the log compacted.
type DurableRegistry struct {
	*Registry

	// wmu serializes mutators so the log order equals the apply order.
	wmu       sync.Mutex
	log       *wal.Log
	info      wal.RecoveryInfo
	snapEvery int
	appended  int
}

// OpenDurable recovers (or initializes) a durable registry from fs. The
// registry options apply to the in-memory directory as usual; recovered
// state is replayed verbatim from the newest intact snapshot plus the log
// suffix, salvaging torn tails.
func OpenDurable(fs wal.FS, dopts DurableOptions, opts ...Option) (*DurableRegistry, error) {
	log, rec, err := wal.Open(fs, dopts.WAL)
	if err != nil {
		return nil, fmt.Errorf("registry: opening wal: %w", err)
	}
	snapEvery := dopts.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 64
	}
	d := &DurableRegistry{
		Registry:  New(opts...),
		log:       log,
		info:      rec.Info,
		snapEvery: snapEvery,
	}
	if rec.Snapshot != nil {
		var entries []Entry
		if err := json.Unmarshal(rec.Snapshot, &entries); err != nil {
			return nil, fmt.Errorf("registry: decoding snapshot: %w", err)
		}
		for _, e := range entries {
			if err := d.Registry.Restore(e); err != nil {
				return nil, fmt.Errorf("registry: restoring %q: %w", e.Name, err)
			}
		}
	}
	for _, r := range rec.Records {
		var wr walRecord
		if err := json.Unmarshal(r.Data, &wr); err != nil {
			return nil, fmt.Errorf("registry: decoding wal record %d: %w", r.Index, err)
		}
		if err := d.apply(wr); err != nil {
			return nil, fmt.Errorf("registry: replaying wal record %d: %w", r.Index, err)
		}
	}
	return d, nil
}

// apply installs one logged mutation. "unpublish" and "renew" tolerate a
// missing entry: a snapshot taken after the mutation already reflects it.
func (d *DurableRegistry) apply(wr walRecord) error {
	switch wr.Op {
	case "publish":
		if wr.Entry == nil {
			return fmt.Errorf("%w: publish record without entry", ErrInvalid)
		}
		return d.Registry.Restore(*wr.Entry)
	case "unpublish":
		if err := d.Registry.Unpublish(wr.Name); err != nil && !isNotFound(err) {
			return err
		}
		return nil
	case "renew":
		if err := d.Registry.setLease(wr.Name, wr.Expires); err != nil && !isNotFound(err) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown wal op %q", ErrInvalid, wr.Op)
	}
}

func isNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// append logs one record durably; only then may the caller apply it.
func (d *DurableRegistry) append(wr walRecord) error {
	data, err := json.Marshal(wr)
	if err != nil {
		return fmt.Errorf("registry: encoding wal record: %w", err)
	}
	if _, err := d.log.Append(data); err != nil {
		return fmt.Errorf("registry: logging %s: %w", wr.Op, err)
	}
	d.appended++
	return nil
}

// maybeSnapshot folds the log once enough records accumulated. It MUST
// run after the latest record is applied in memory — a snapshot is named
// for the last appended index, so its contents have to include that
// mutation or recovery would skip the record as covered and lose it.
func (d *DurableRegistry) maybeSnapshot() {
	if d.snapEvery <= 0 || d.appended < d.snapEvery {
		return
	}
	// Best effort: a failed snapshot loses nothing (the log retains every
	// segment until a snapshot installs), so retry after the next batch
	// rather than failing an already-durable mutation.
	if d.snapshotLocked() == nil {
		d.appended = 0
	}
}

// snapshotLocked folds the full directory into a wal snapshot. Callers
// hold wmu.
func (d *DurableRegistry) snapshotLocked() error {
	entries := d.Registry.List(false)
	data, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("registry: encoding snapshot: %w", err)
	}
	return d.log.Snapshot(data)
}

// Publish logs the resolved entry, then installs it. The entry is on
// disk before Publish returns nil.
func (d *DurableRegistry) Publish(e Entry) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	resolved, err := d.Registry.prepare(e)
	if err != nil {
		return err
	}
	if err := d.append(walRecord{Op: "publish", Entry: &resolved}); err != nil {
		return err
	}
	if err := d.Registry.Restore(resolved); err != nil {
		return err
	}
	d.maybeSnapshot()
	return nil
}

// Unpublish logs the removal, then applies it.
func (d *DurableRegistry) Unpublish(name string) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if _, err := d.Registry.Get(name); err != nil {
		return err
	}
	if err := d.append(walRecord{Op: "unpublish", Name: name}); err != nil {
		return err
	}
	if err := d.Registry.Unpublish(name); err != nil {
		return err
	}
	d.maybeSnapshot()
	return nil
}

// Heartbeat logs the exact renewed expiry, then applies it.
func (d *DurableRegistry) Heartbeat(name string) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if _, err := d.Registry.Get(name); err != nil {
		return err
	}
	expires := d.Registry.now().Add(d.Registry.lease)
	if err := d.append(walRecord{Op: "renew", Name: name, Expires: expires}); err != nil {
		return err
	}
	if err := d.Registry.setLease(name, expires); err != nil {
		return err
	}
	d.maybeSnapshot()
	return nil
}

// Snapshot forces a snapshot + compaction now.
func (d *DurableRegistry) Snapshot() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if err := d.snapshotLocked(); err != nil {
		return err
	}
	d.appended = 0
	return nil
}

// Recovery reports what the opening recovery found (snapshot index,
// replayed records, salvage decisions).
func (d *DurableRegistry) Recovery() wal.RecoveryInfo { return d.info }

// Close seals the log. The directory stays readable.
func (d *DurableRegistry) Close() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	return d.log.Close()
}
