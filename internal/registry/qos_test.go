package registry

import (
	"errors"
	"testing"
	"time"
)

func qosSeeded(t *testing.T) *QoSRegistry {
	t.Helper()
	r := NewQoS(seeded(t))
	return r
}

func TestReportQoSValidation(t *testing.T) {
	r := qosSeeded(t)
	if err := r.ReportQoS("Encryption", QoS{Uptime: 0.99, MeanRTT: 10 * time.Millisecond, Samples: 5}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportQoS("Ghost", QoS{Uptime: 1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown service: %v", err)
	}
	for _, bad := range []QoS{{Uptime: -0.1}, {Uptime: 1.5}, {Uptime: 0.5, Samples: -1}, {Uptime: 0.5, MeanRTT: -time.Second}} {
		if err := r.ReportQoS("Encryption", bad); !errors.Is(err, ErrInvalid) {
			t.Errorf("ReportQoS(%+v): %v", bad, err)
		}
	}
	q, ok := r.QoSOf("Encryption")
	if !ok || q.Uptime != 0.99 {
		t.Errorf("QoSOf = %+v %v", q, ok)
	}
	if _, ok := r.QoSOf("ShoppingCart"); ok {
		t.Error("phantom QoS")
	}
}

func TestSearchQoSReordersByQuality(t *testing.T) {
	r := NewQoS(New())
	// Two services with identical keyword relevance.
	for _, name := range []string{"WeatherA", "WeatherB"} {
		if err := r.Publish(Entry{Name: name, Doc: "weather forecast service", Endpoint: "http://x/" + name}); err != nil {
			t.Fatal(err)
		}
	}
	// A is flaky and slow; B is solid.
	if err := r.ReportQoS("WeatherA", QoS{Uptime: 0.4, MeanRTT: 900 * time.Millisecond, Samples: 20}); err != nil {
		t.Fatal(err)
	}
	if err := r.ReportQoS("WeatherB", QoS{Uptime: 0.99, MeanRTT: 20 * time.Millisecond, Samples: 20}); err != nil {
		t.Fatal(err)
	}
	matches, err := r.SearchQoS("weather forecast", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].Entry.Name != "WeatherB" {
		t.Fatalf("order = %v", matches)
	}
	if matches[0].Quality <= matches[1].Quality {
		t.Errorf("quality ordering wrong: %v", matches)
	}
	if matches[0].Relevance != matches[1].Relevance {
		t.Errorf("relevance should tie: %v vs %v", matches[0].Relevance, matches[1].Relevance)
	}
}

func TestSearchQoSNeutralPrior(t *testing.T) {
	r := NewQoS(New())
	for _, name := range []string{"KnownGood", "Unknown", "KnownBad"} {
		if err := r.Publish(Entry{Name: name, Doc: "echo test service", Endpoint: "http://x"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = r.ReportQoS("KnownGood", QoS{Uptime: 1.0, MeanRTT: time.Millisecond, Samples: 10})
	_ = r.ReportQoS("KnownBad", QoS{Uptime: 0.2, MeanRTT: 2 * time.Second, Samples: 10})
	matches, err := r.SearchQoS("echo test", 0)
	if err != nil || len(matches) != 3 {
		t.Fatalf("matches = %v %v", matches, err)
	}
	order := []string{matches[0].Entry.Name, matches[1].Entry.Name, matches[2].Entry.Name}
	if order[0] != "KnownGood" || order[1] != "Unknown" || order[2] != "KnownBad" {
		t.Errorf("order = %v", order)
	}
}

func TestSearchQoSLimit(t *testing.T) {
	r := qosSeeded(t)
	matches, err := r.SearchQoS("service", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) > 2 {
		t.Errorf("limit ignored: %d", len(matches))
	}
	if _, err := r.SearchQoS("", 0); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDependable(t *testing.T) {
	r := qosSeeded(t)
	_ = r.ReportQoS("Encryption", QoS{Uptime: 0.99, MeanRTT: 5 * time.Millisecond, Samples: 50})
	_ = r.ReportQoS("ShoppingCart", QoS{Uptime: 0.6, MeanRTT: 5 * time.Millisecond, Samples: 50})
	_ = r.ReportQoS("Mortgage", QoS{Uptime: 0.95, MeanRTT: 400 * time.Millisecond, Samples: 50})
	deps := r.Dependable(0.9)
	if len(deps) != 2 {
		t.Fatalf("dependable = %v", deps)
	}
	// Encryption (fast) outranks Mortgage (slow) despite similar uptime.
	if deps[0].Entry.Name != "Encryption" || deps[1].Entry.Name != "Mortgage" {
		t.Errorf("order = %s, %s", deps[0].Entry.Name, deps[1].Entry.Name)
	}
	// Unmeasured services are excluded from the dependable list.
	for _, d := range deps {
		if d.Entry.Name == "ImageVerifier" {
			t.Error("unmeasured service listed as dependable")
		}
	}
}

func TestObserveProbeAccumulates(t *testing.T) {
	r := NewQoS(New())
	if err := r.Publish(Entry{Name: "Live", Doc: "probe target", Endpoint: "http://x/live"}); err != nil {
		t.Fatal(err)
	}
	// 3 successes at 10ms, 1 failure.
	for i := 0; i < 3; i++ {
		if err := r.ObserveProbe("Live", true, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.ObserveProbe("Live", false, 0); err != nil {
		t.Fatal(err)
	}
	q, ok := r.QoSOf("Live")
	if !ok {
		t.Fatal("no QoS record after probes")
	}
	if q.Samples != 4 {
		t.Errorf("samples = %d, want 4", q.Samples)
	}
	if q.Uptime < 0.74 || q.Uptime > 0.76 {
		t.Errorf("uptime = %v, want 0.75", q.Uptime)
	}
	if q.MeanRTT != 10*time.Millisecond {
		t.Errorf("meanRTT = %v, want 10ms (failures must not dilute it)", q.MeanRTT)
	}

	if err := r.ObserveProbe("Ghost", true, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown service: %v", err)
	}
	if err := r.ObserveProbe("Live", true, -time.Second); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative rtt: %v", err)
	}
}

func TestObserveProbeFeedsDiscovery(t *testing.T) {
	r := NewQoS(New())
	for _, name := range []string{"EchoUp", "EchoDown"} {
		if err := r.Publish(Entry{Name: name, Doc: "echo probe service", Endpoint: "http://x/" + name}); err != nil {
			t.Fatal(err)
		}
	}
	feedUp, feedDown := r.ProbeFeed("EchoUp"), r.ProbeFeed("EchoDown")
	for i := 0; i < 20; i++ {
		feedUp("http://replica-a", true, 5*time.Millisecond)
		feedDown("http://replica-b", false, 0)
	}
	matches, err := r.SearchQoS("echo probe", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].Entry.Name != "EchoUp" {
		t.Fatalf("discovery order = %+v, want EchoUp first", matches)
	}
	dependable := r.Dependable(0.9)
	if len(dependable) != 1 || dependable[0].Entry.Name != "EchoUp" {
		t.Errorf("dependable = %+v, want only EchoUp", dependable)
	}
}

func TestObserveCallExcludesCachedSamples(t *testing.T) {
	r := NewQoS(New())
	if err := r.Publish(Entry{Name: "Quote", Doc: "call target", Endpoint: "http://x/quote"}); err != nil {
		t.Fatal(err)
	}
	// Two real calls at 20ms, then a storm of near-instant cache hits.
	for i := 0; i < 2; i++ {
		if err := r.ObserveCall("Quote", true, 20*time.Millisecond, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := r.ObserveCall("Quote", true, 10*time.Microsecond, true); err != nil {
			t.Fatal(err)
		}
	}
	q, ok := r.QoSOf("Quote")
	if !ok {
		t.Fatal("no QoS record after calls")
	}
	if q.Samples != 2 {
		t.Errorf("samples = %d, want 2 (cached calls must not count)", q.Samples)
	}
	if q.MeanRTT != 20*time.Millisecond {
		t.Errorf("meanRTT = %v, want 20ms (cache hits must not flatter it)", q.MeanRTT)
	}
}
