package registry

import (
	"fmt"
	"sync"
	"testing"
)

// TestLookupDuringPublishConsistent drives readers through the RCU
// snapshot path while a writer republishes the same entry with paired
// Doc/Endpoint values: every Get must observe one of the two complete
// versions, never a torn mix — the atomicity the copy-on-write snapshot
// exists to guarantee.
func TestLookupDuringPublishConsistent(t *testing.T) {
	r := seeded(t)
	versions := map[string]string{
		"alpha flavored directory entry": "http://alpha",
		"bravo flavored directory entry": "http://bravo",
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			doc, ep := "alpha flavored directory entry", "http://alpha"
			if i%2 == 1 {
				doc, ep = "bravo flavored directory entry", "http://bravo"
			}
			if err := r.Publish(Entry{Name: "Flip", Doc: doc, Endpoint: ep}); err != nil {
				t.Errorf("republish: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		e, err := r.Get("Flip")
		if err != nil {
			continue // not yet published on the first iterations
		}
		if want, ok := versions[e.Doc]; !ok || e.Endpoint != want {
			t.Fatalf("torn read: doc %q with endpoint %q", e.Doc, e.Endpoint)
		}
	}
	<-done
}

// TestSearchDuringHeartbeatAndEvict runs the full read surface (Search,
// List, ByCategory, Categories) against concurrent lease renewal and
// eviction — the mixed read/write schedule the striped QoS store and the
// snapshot swap must survive under the race detector.
func TestSearchDuringHeartbeatAndEvict(t *testing.T) {
	r := seeded(t)
	for i := 0; i < 32; i++ {
		e := Entry{
			Name:     fmt.Sprintf("Bulk%d", i),
			Doc:      "bulk service used for concurrent eviction pressure",
			Endpoint: "http://bulk",
			Category: "bulk",
		}
		if err := r.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			//soclint:ignore errdiscard entries may lapse mid-loop; readers tolerate it
			_ = r.Heartbeat(fmt.Sprintf("Bulk%d", i%32))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.Evict(0)
		}
	}()
	for i := 0; i < 300; i++ {
		if _, err := r.Search("service", 0); err != nil {
			t.Fatalf("Search during heartbeat/evict: %v", err)
		}
		r.List(true)
		r.ByCategory("bulk")
		r.Categories()
	}
	wg.Wait()
}
