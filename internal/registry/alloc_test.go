//go:build !race

package registry

import (
	"fmt"
	"testing"
)

// TestSearchAllocCeiling pins the per-query allocation budget of a
// ranked keyword lookup. Before the inverted index, every query
// re-tokenized the whole corpus (tens of allocations per entry); with
// the index, query cost is bounded by the matching postings.
func TestSearchAllocCeiling(t *testing.T) {
	r := New()
	for i := 0; i < 50; i++ {
		err := r.Publish(Entry{
			Name:       fmt.Sprintf("Service%d", i),
			Namespace:  "urn:x",
			Doc:        fmt.Sprintf("sample keyword service number %d for testing", i),
			Category:   "testing/sample",
			Endpoint:   "http://example.invalid",
			Operations: []string{"DoWork", "GetStatus"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		matches, err := r.Search("keyword status", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 5 {
			t.Fatalf("got %d matches", len(matches))
		}
	})
	// Budget: the scores map, the match slice (50 entries match), and
	// sort machinery — but nothing proportional to corpus tokenization.
	if allocs > 75 {
		t.Errorf("Search allocates %.1f/op, ceiling 75", allocs)
	}
}
