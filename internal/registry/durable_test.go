package registry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"soc/internal/faultinject"
	"soc/internal/wal"
)

func simClock(start time.Time) (func() time.Time, func(time.Duration)) {
	cur := start
	return func() time.Time { return cur }, func(d time.Duration) { cur = cur.Add(d) }
}

func testEntry(name string) Entry {
	return Entry{
		Name:       name,
		Namespace:  "urn:test:" + name,
		Doc:        "test service " + name,
		Category:   "testing/durable",
		Endpoint:   "http://localhost/" + name,
		Bindings:   []string{"rest"},
		Operations: []string{"Ping"},
		Provider:   "durable-test",
	}
}

func TestDurableRegistryRecoversMutations(t *testing.T) {
	fs := wal.NewMemFS(1)
	now, advance := simClock(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	open := func() *DurableRegistry {
		d, err := OpenDurable(fs, DurableOptions{}, WithClock(now), WithLease(time.Hour))
		if err != nil {
			t.Fatalf("OpenDurable: %v", err)
		}
		return d
	}

	d := open()
	for _, name := range []string{"Alpha", "Beta", "Gamma"} {
		if err := d.Publish(testEntry(name)); err != nil {
			t.Fatalf("Publish %s: %v", name, err)
		}
	}
	advance(10 * time.Minute)
	if err := d.Heartbeat("Beta"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if err := d.Unpublish("Gamma"); err != nil {
		t.Fatalf("Unpublish: %v", err)
	}
	before := d.List(false)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2 := open()
	after := d2.List(false)
	if len(after) != 2 || len(before) != 2 {
		t.Fatalf("recovered %d entries, want 2 (%v)", len(after), after)
	}
	for i := range before {
		if !entriesEqual(before[i], after[i]) {
			t.Fatalf("entry %d diverged:\nbefore %+v\nafter  %+v", i, before[i], after[i])
		}
	}
	// Exact lease times must survive: Beta renewed at +10m, Alpha not.
	alpha, _ := d2.Get("Alpha")
	beta, _ := d2.Get("Beta")
	if !alpha.LeaseExpires.Equal(time.Date(2030, 1, 1, 1, 0, 0, 0, time.UTC)) {
		t.Fatalf("Alpha lease = %v", alpha.LeaseExpires)
	}
	if !beta.LeaseExpires.Equal(time.Date(2030, 1, 1, 1, 10, 0, 0, time.UTC)) {
		t.Fatalf("Beta lease = %v", beta.LeaseExpires)
	}
	if _, err := d2.Get("Gamma"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Gamma survived its unpublish: %v", err)
	}
	// Search index must be rebuilt on recovery.
	matches, err := d2.Search("alpha", 0)
	if err != nil || len(matches) == 0 || matches[0].Entry.Name != "Alpha" {
		t.Fatalf("recovered index search = %v, %v", matches, err)
	}
}

func entriesEqual(a, b Entry) bool {
	if a.Name != b.Name || a.Endpoint != b.Endpoint || !a.Published.Equal(b.Published) ||
		!a.LeaseExpires.Equal(b.LeaseExpires) || a.Doc != b.Doc || a.Category != b.Category {
		return false
	}
	return true
}

func TestDurableRegistrySnapshotCompaction(t *testing.T) {
	fs := wal.NewMemFS(2)
	now, _ := simClock(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
	d, err := OpenDurable(fs, DurableOptions{
		WAL:           wal.Options{SegmentBytes: 512},
		SnapshotEvery: 5,
	}, WithClock(now), WithLease(time.Hour))
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	for i := 0; i < 23; i++ {
		if err := d.Publish(testEntry(fmt.Sprintf("Svc%02d", i))); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	d2, err := OpenDurable(fs, DurableOptions{WAL: wal.Options{SegmentBytes: 512}},
		WithClock(now), WithLease(time.Hour))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := d2.Len(); got != 23 {
		t.Fatalf("recovered %d entries, want 23", got)
	}
	info := d2.Recovery()
	if info.SnapshotIndex == 0 {
		t.Fatalf("no snapshot was taken: %+v", info)
	}
	// Compaction must have actually removed covered segments: far fewer
	// than 23 records should need replaying.
	if info.Replayed >= 23 {
		t.Fatalf("snapshot did not absorb the log: %+v", info)
	}
}

// TestDurableRegistryAckedSurvivesFaultsAndCrashes is the registry-level
// acked ⇒ durable property under an actively hostile disk: whatever the
// injector fails, an acked mutation must be visible after crash+recovery.
func TestDurableRegistryAckedSurvivesFaultsAndCrashes(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		di, err := faultinject.NewDisk(faultinject.DiskPlan{Seed: seed, Rule: faultinject.DiskRule{
			WriteErrorRate: 0.05, ShortWriteRate: 0.08, SyncErrorRate: 0.08,
		}})
		if err != nil {
			t.Fatalf("NewDisk: %v", err)
		}
		mem := wal.NewMemFS(seed)
		now, advance := simClock(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC))
		d, err := OpenDurable(di.FS(mem), DurableOptions{
			WAL:           wal.Options{SegmentBytes: 1024},
			SnapshotEvery: 7,
		}, WithClock(now), WithLease(time.Hour))
		if err != nil {
			t.Fatalf("seed %d: OpenDurable: %v", seed, err)
		}
		acked := map[string]Entry{}
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("Svc%02d", i%13)
			var opErr error
			switch i % 3 {
			case 0, 1:
				opErr = d.Publish(testEntry(name))
				if opErr == nil {
					e, _ := d.Get(name)
					acked[name] = e
				}
			case 2:
				opErr = d.Unpublish(name)
				if opErr == nil {
					delete(acked, name)
				}
			}
			advance(time.Minute)
			_ = opErr // failures are legal; only acks bind
		}
		mem.Crash()
		d2, err := OpenDurable(mem, DurableOptions{WAL: wal.Options{SegmentBytes: 1024}},
			WithClock(now), WithLease(time.Hour))
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		for name, want := range acked {
			got, err := d2.Get(name)
			if err != nil {
				t.Fatalf("seed %d: acked entry %q lost: %v (recovery %s, disk %v)",
					seed, name, err, d2.Recovery(), di.Counts())
			}
			if !entriesEqual(want, got) {
				t.Fatalf("seed %d: entry %q diverged:\nacked     %+v\nrecovered %+v", seed, name, want, got)
			}
		}
	}
}

func TestDurableRegistryNackedPublishNotApplied(t *testing.T) {
	di, err := faultinject.NewDisk(faultinject.DiskPlan{Seed: 1, Rule: faultinject.DiskRule{WriteErrorRate: 1}})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	mem := wal.NewMemFS(1)
	d, err := OpenDurable(di.FS(mem), DurableOptions{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if err := d.Publish(testEntry("Doomed")); err == nil {
		t.Fatal("publish must fail when the log write fails")
	}
	if _, err := d.Get("Doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("nacked publish was applied in memory: %v", err)
	}
}
