package registry

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"
)

// QoS is the measured quality-of-service record of an endpoint — the
// paper's §V motivates exactly this: free public services are "too slow
// to use" and "often offline", so a consumer-centric broker (the
// Tsai/Chen consumer-centric SOA of reference [27]) must rank candidates
// by observed quality, not just keyword relevance.
type QoS struct {
	// Uptime is the observed availability in [0, 1].
	Uptime float64 `json:"uptime"`
	// MeanRTT is the observed mean round-trip time.
	MeanRTT time.Duration `json:"meanRTT"`
	// Samples is how many probes back the record.
	Samples int `json:"samples"`
}

// qosShardCount stripes the QoS store so per-call ObserveCall writes from
// concurrent dispatches don't convoy on one mutex. Power of two for mask
// selection.
const qosShardCount = 16

// qosShard is one stripe of the QoS store.
type qosShard struct {
	mu sync.RWMutex
	m  map[string]QoS
}

// qosStore tracks QoS per service name alongside a registry, lock-striped
// by name hash.
type qosStore struct {
	seed   maphash.Seed
	shards [qosShardCount]qosShard
}

func (s *qosStore) shard(name string) *qosShard {
	return &s.shards[maphash.String(s.seed, name)&(qosShardCount-1)]
}

func (s *qosStore) get(name string) (QoS, bool) {
	sh := s.shard(name)
	sh.mu.RLock()
	q, ok := sh.m[name]
	sh.mu.RUnlock()
	return q, ok
}

func (s *qosStore) set(name string, q QoS) {
	sh := s.shard(name)
	sh.mu.Lock()
	sh.m[name] = q
	sh.mu.Unlock()
}

// update applies fn to the record for name under the stripe write lock.
func (s *qosStore) update(name string, fn func(QoS) QoS) {
	sh := s.shard(name)
	sh.mu.Lock()
	sh.m[name] = fn(sh.m[name])
	sh.mu.Unlock()
}

// QoSRegistry decorates a Registry with QoS records and quality-weighted
// search.
type QoSRegistry struct {
	*Registry
	qos qosStore
}

// NewQoS wraps a registry.
func NewQoS(r *Registry) *QoSRegistry {
	qr := &QoSRegistry{Registry: r}
	qr.qos.seed = maphash.MakeSeed()
	for i := range qr.qos.shards {
		qr.qos.shards[i].m = map[string]QoS{}
	}
	return qr
}

// ReportQoS records (or replaces) the measured QoS of a service.
func (r *QoSRegistry) ReportQoS(name string, q QoS) error {
	if q.Uptime < 0 || q.Uptime > 1 || q.Samples < 0 || q.MeanRTT < 0 {
		return fmt.Errorf("%w: qos %+v", ErrInvalid, q)
	}
	if _, err := r.Get(name); err != nil {
		return err
	}
	r.qos.set(name, q)
	return nil
}

// ObserveProbe folds one health-probe outcome into the service's QoS
// record incrementally: uptime becomes the running success ratio and
// MeanRTT the running mean of successful-probe round trips. This is the
// bridge from reliability.HealthChecker's OnProbe hook into discovery —
// replicas observed down sink in SearchQoS and drop out of Dependable.
func (r *QoSRegistry) ObserveProbe(name string, up bool, rtt time.Duration) error {
	if rtt < 0 {
		return fmt.Errorf("%w: negative rtt %v", ErrInvalid, rtt)
	}
	if _, err := r.Get(name); err != nil {
		return err
	}
	r.qos.update(name, func(q QoS) QoS {
		n := float64(q.Samples)
		upVal := 0.0
		if up {
			upVal = 1
			// Only successful probes measure a real round trip; failures are
			// often instant (connection refused) and would flatter the mean.
			succ := q.Uptime * n // successful samples so far
			q.MeanRTT = time.Duration((float64(q.MeanRTT)*succ + float64(rtt)) / (succ + 1))
		}
		q.Uptime = (q.Uptime*n + upVal) / (n + 1)
		q.Samples++
		return q
	})
	return nil
}

// ObserveCall folds one observed service call into the QoS record — the
// call-plane bridge from live traffic into discovery. Calls answered by
// the idempotent-response cache are dropped entirely: a cache hit's
// near-zero RTT measures the cache, not the service, and counting it
// would flatter every latency-derived quality score (and its success
// says nothing about whether the provider is still up).
func (r *QoSRegistry) ObserveCall(name string, up bool, rtt time.Duration, cached bool) error {
	if cached {
		return nil
	}
	return r.ObserveProbe(name, up, rtt)
}

// ProbeFeed adapts ObserveProbe to reliability.HealthChecker's OnProbe
// signature for a fixed service name, ignoring the replica URL (the
// registry tracks the service, the checker tracks its replicas).
func (r *QoSRegistry) ProbeFeed(name string) func(replica string, up bool, rtt time.Duration) {
	return func(_ string, up bool, rtt time.Duration) {
		//soclint:ignore errdiscard probes may outlive an unpublished service; a stale name is not an event the checker can act on
		_ = r.ObserveProbe(name, up, rtt)
	}
}

// QoSOf returns the recorded QoS and whether one exists.
func (r *QoSRegistry) QoSOf(name string) (QoS, bool) {
	return r.qos.get(name)
}

// QoSMatch is a quality-weighted search result.
type QoSMatch struct {
	Entry     Entry   `json:"entry"`
	Relevance float64 `json:"relevance"`
	Quality   float64 `json:"quality"`
	Score     float64 `json:"score"`
}

// rttReference is the RTT at which the latency factor halves.
const rttReference = 200 * time.Millisecond

// quality maps a QoS record to [0, 1]: uptime discounted by latency.
// Services with no record get a neutral prior of 0.5, so measured-good
// services outrank unknowns and unknowns outrank measured-bad ones.
func quality(q QoS, ok bool) float64 {
	if !ok || q.Samples == 0 {
		return 0.5
	}
	latencyFactor := float64(rttReference) / float64(rttReference+q.MeanRTT)
	return q.Uptime * latencyFactor
}

// qosScored is a quality-weighted candidate before entry materialization.
type qosScored struct {
	name      string
	relevance float64
	quality   float64
	score     float64
}

// SearchQoS ranks live entries by relevance × quality. It scores from
// the unsorted candidate set, sorts exactly once on the final
// quality-weighted score (the relevance ordering Search would impose is
// thrown away here, so computing it would be wasted work), and copies
// full entries only for the top `limit` survivors.
func (r *QoSRegistry) SearchQoS(query string, limit int) ([]QoSMatch, error) {
	qTokens := tokenize(query)
	if len(qTokens) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrInvalid)
	}
	s := r.Registry.load()
	ranked := s.searchScored(qTokens, r.Registry.now())
	weighted := make([]qosScored, 0, len(ranked))
	for _, m := range ranked {
		q, ok := r.qos.get(m.name)
		qual := quality(q, ok)
		weighted = append(weighted, qosScored{
			name:      m.name,
			relevance: m.score,
			quality:   qual,
			score:     m.score * qual,
		})
	}
	sort.Slice(weighted, func(i, j int) bool {
		if weighted[i].score != weighted[j].score {
			return weighted[i].score > weighted[j].score
		}
		return weighted[i].name < weighted[j].name
	})
	if limit > 0 && len(weighted) > limit {
		weighted = weighted[:limit]
	}
	out := make([]QoSMatch, len(weighted))
	for i, w := range weighted {
		out[i] = QoSMatch{
			Entry:     *s.entries[w.name],
			Relevance: w.relevance,
			Quality:   w.quality,
			Score:     w.score,
		}
	}
	return out, nil
}

// Dependable returns live entries whose uptime meets the threshold,
// sorted by quality descending — the broker-side answer to "which free
// services can a class assignment actually rely on".
func (r *QoSRegistry) Dependable(minUptime float64) []QoSMatch {
	var out []QoSMatch
	for _, e := range r.List(true) {
		q, ok := r.QoSOf(e.Name)
		if !ok || q.Uptime < minUptime {
			continue
		}
		out = append(out, QoSMatch{Entry: e, Quality: quality(q, true), Score: quality(q, true)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	return out
}
