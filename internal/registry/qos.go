package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// QoS is the measured quality-of-service record of an endpoint — the
// paper's §V motivates exactly this: free public services are "too slow
// to use" and "often offline", so a consumer-centric broker (the
// Tsai/Chen consumer-centric SOA of reference [27]) must rank candidates
// by observed quality, not just keyword relevance.
type QoS struct {
	// Uptime is the observed availability in [0, 1].
	Uptime float64 `json:"uptime"`
	// MeanRTT is the observed mean round-trip time.
	MeanRTT time.Duration `json:"meanRTT"`
	// Samples is how many probes back the record.
	Samples int `json:"samples"`
}

// qosStore tracks QoS per service name alongside a registry.
type qosStore struct {
	mu sync.RWMutex
	m  map[string]QoS
}

// QoSRegistry decorates a Registry with QoS records and quality-weighted
// search.
type QoSRegistry struct {
	*Registry
	qos qosStore
}

// NewQoS wraps a registry.
func NewQoS(r *Registry) *QoSRegistry {
	return &QoSRegistry{Registry: r, qos: qosStore{m: map[string]QoS{}}}
}

// ReportQoS records (or replaces) the measured QoS of a service.
func (r *QoSRegistry) ReportQoS(name string, q QoS) error {
	if q.Uptime < 0 || q.Uptime > 1 || q.Samples < 0 || q.MeanRTT < 0 {
		return fmt.Errorf("%w: qos %+v", ErrInvalid, q)
	}
	if _, err := r.Get(name); err != nil {
		return err
	}
	r.qos.mu.Lock()
	defer r.qos.mu.Unlock()
	r.qos.m[name] = q
	return nil
}

// ObserveProbe folds one health-probe outcome into the service's QoS
// record incrementally: uptime becomes the running success ratio and
// MeanRTT the running mean of successful-probe round trips. This is the
// bridge from reliability.HealthChecker's OnProbe hook into discovery —
// replicas observed down sink in SearchQoS and drop out of Dependable.
func (r *QoSRegistry) ObserveProbe(name string, up bool, rtt time.Duration) error {
	if rtt < 0 {
		return fmt.Errorf("%w: negative rtt %v", ErrInvalid, rtt)
	}
	if _, err := r.Get(name); err != nil {
		return err
	}
	r.qos.mu.Lock()
	defer r.qos.mu.Unlock()
	q := r.qos.m[name]
	n := float64(q.Samples)
	upVal := 0.0
	if up {
		upVal = 1
		// Only successful probes measure a real round trip; failures are
		// often instant (connection refused) and would flatter the mean.
		succ := q.Uptime * n // successful samples so far
		q.MeanRTT = time.Duration((float64(q.MeanRTT)*succ + float64(rtt)) / (succ + 1))
	}
	q.Uptime = (q.Uptime*n + upVal) / (n + 1)
	q.Samples++
	r.qos.m[name] = q
	return nil
}

// ObserveCall folds one observed service call into the QoS record — the
// call-plane bridge from live traffic into discovery. Calls answered by
// the idempotent-response cache are dropped entirely: a cache hit's
// near-zero RTT measures the cache, not the service, and counting it
// would flatter every latency-derived quality score (and its success
// says nothing about whether the provider is still up).
func (r *QoSRegistry) ObserveCall(name string, up bool, rtt time.Duration, cached bool) error {
	if cached {
		return nil
	}
	return r.ObserveProbe(name, up, rtt)
}

// ProbeFeed adapts ObserveProbe to reliability.HealthChecker's OnProbe
// signature for a fixed service name, ignoring the replica URL (the
// registry tracks the service, the checker tracks its replicas).
func (r *QoSRegistry) ProbeFeed(name string) func(replica string, up bool, rtt time.Duration) {
	return func(_ string, up bool, rtt time.Duration) {
		//soclint:ignore errdiscard probes may outlive an unpublished service; a stale name is not an event the checker can act on
		_ = r.ObserveProbe(name, up, rtt)
	}
}

// QoSOf returns the recorded QoS and whether one exists.
func (r *QoSRegistry) QoSOf(name string) (QoS, bool) {
	r.qos.mu.RLock()
	defer r.qos.mu.RUnlock()
	q, ok := r.qos.m[name]
	return q, ok
}

// QoSMatch is a quality-weighted search result.
type QoSMatch struct {
	Entry     Entry   `json:"entry"`
	Relevance float64 `json:"relevance"`
	Quality   float64 `json:"quality"`
	Score     float64 `json:"score"`
}

// rttReference is the RTT at which the latency factor halves.
const rttReference = 200 * time.Millisecond

// quality maps a QoS record to [0, 1]: uptime discounted by latency.
// Services with no record get a neutral prior of 0.5, so measured-good
// services outrank unknowns and unknowns outrank measured-bad ones.
func quality(q QoS, ok bool) float64 {
	if !ok || q.Samples == 0 {
		return 0.5
	}
	latencyFactor := float64(rttReference) / float64(rttReference+q.MeanRTT)
	return q.Uptime * latencyFactor
}

// SearchQoS ranks live entries by relevance × quality. It scores from
// the unsorted candidate set and sorts exactly once on the final
// quality-weighted score (the relevance ordering Search would impose is
// thrown away here, so computing it would be wasted work).
func (r *QoSRegistry) SearchQoS(query string, limit int) ([]QoSMatch, error) {
	qTokens := tokenize(query)
	if len(qTokens) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrInvalid)
	}
	base := r.searchMatches(qTokens)
	out := make([]QoSMatch, 0, len(base))
	for _, m := range base {
		q, ok := r.QoSOf(m.Entry.Name)
		qual := quality(q, ok)
		out = append(out, QoSMatch{
			Entry:     m.Entry,
			Relevance: m.Score,
			Quality:   qual,
			Score:     m.Score * qual,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Dependable returns live entries whose uptime meets the threshold,
// sorted by quality descending — the broker-side answer to "which free
// services can a class assignment actually rely on".
func (r *QoSRegistry) Dependable(minUptime float64) []QoSMatch {
	var out []QoSMatch
	for _, e := range r.List(true) {
		q, ok := r.QoSOf(e.Name)
		if !ok || q.Uptime < minUptime {
			continue
		}
		out = append(out, QoSMatch{Entry: e, Quality: quality(q, true), Score: quality(q, true)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	return out
}
