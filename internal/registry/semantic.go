package registry

import (
	"fmt"
	"sort"
	"sync"

	"soc/internal/ontology"
)

// SemanticRegistry augments a registry with OWL-S-style service profiles
// (input/output concepts) and matchmaking against an ontology — the
// CSE446 "Ontology and Semantic Web" unit applied to service discovery:
// instead of keywords, a client asks for "something that takes a
// CreditScore and yields a Loan" and the broker reasons over the concept
// hierarchy.
type SemanticRegistry struct {
	*Registry
	onto *ontology.Store

	mu       sync.RWMutex
	profiles map[string]ontology.ServiceProfile
}

// NewSemantic wraps a registry with an ontology.
func NewSemantic(r *Registry, onto *ontology.Store) *SemanticRegistry {
	return &SemanticRegistry{
		Registry: r,
		onto:     onto,
		profiles: map[string]ontology.ServiceProfile{},
	}
}

// Annotate attaches a semantic profile to a published entry.
func (r *SemanticRegistry) Annotate(name string, inputs, outputs []string) error {
	if _, err := r.Get(name); err != nil {
		return err
	}
	if len(outputs) == 0 {
		return fmt.Errorf("%w: profile for %q needs at least one output concept", ErrInvalid, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profiles[name] = ontology.ServiceProfile{Name: name, Inputs: inputs, Outputs: outputs}
	return nil
}

// Profile returns the semantic profile of an entry.
func (r *SemanticRegistry) Profile(name string) (ontology.ServiceProfile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.profiles[name]
	return p, ok
}

// SemanticMatch is one ranked discovery result.
type SemanticMatch struct {
	Entry  Entry
	Degree ontology.MatchDegree
}

// Discover ranks live, annotated entries against the requested profile,
// best matches first; Fail-degree candidates are dropped.
func (r *SemanticRegistry) Discover(inputs, outputs []string) ([]SemanticMatch, error) {
	if len(outputs) == 0 {
		return nil, fmt.Errorf("%w: request needs at least one output concept", ErrInvalid)
	}
	request := ontology.ServiceProfile{Inputs: inputs, Outputs: outputs}
	var out []SemanticMatch
	for _, e := range r.List(true) {
		profile, ok := r.Profile(e.Name)
		if !ok {
			continue
		}
		d := r.onto.MatchService(request, profile)
		if d == ontology.Fail {
			continue
		}
		out = append(out, SemanticMatch{Entry: e, Degree: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Degree != out[j].Degree {
			return out[i].Degree < out[j].Degree
		}
		return out[i].Entry.Name < out[j].Entry.Name
	})
	return out, nil
}
