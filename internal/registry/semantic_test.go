package registry

import (
	"errors"
	"testing"

	"soc/internal/ontology"
)

func semanticFixture(t *testing.T) *SemanticRegistry {
	t.Helper()
	onto := ontology.NewStore()
	for _, tr := range [][3]string{
		{"Loan", ontology.SubClassOf, "FinancialProduct"},
		{"Mortgage", ontology.SubClassOf, "Loan"},
		{"CreditScore", ontology.SubClassOf, "Score"},
	} {
		if err := onto.Add(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	r := NewSemantic(New(), onto)
	entries := []struct {
		name    string
		inputs  []string
		outputs []string
	}{
		{"MortgageSvc", []string{"CreditScore"}, []string{"Mortgage"}},
		{"LoanSvc", []string{"CreditScore"}, []string{"Loan"}},
		{"ProductSvc", []string{"CreditScore"}, []string{"FinancialProduct"}},
		{"WeatherSvc", []string{"City"}, []string{"Forecast"}},
	}
	for _, e := range entries {
		if err := r.Publish(Entry{Name: e.name, Endpoint: "http://x/" + e.name}); err != nil {
			t.Fatal(err)
		}
		if err := r.Annotate(e.name, e.inputs, e.outputs); err != nil {
			t.Fatal(err)
		}
	}
	// One published entry without a profile: ignored by Discover.
	if err := r.Publish(Entry{Name: "Unannotated", Endpoint: "http://x/u"}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiscoverRanksByMatchDegree(t *testing.T) {
	r := semanticFixture(t)
	matches, err := r.Discover([]string{"CreditScore"}, []string{"Loan"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("matches = %v", matches)
	}
	// exact (LoanSvc) < plugin (MortgageSvc) < subsume (ProductSvc).
	want := []struct {
		name   string
		degree ontology.MatchDegree
	}{
		{"LoanSvc", ontology.Exact},
		{"MortgageSvc", ontology.Plugin},
		{"ProductSvc", ontology.Subsume},
	}
	for i, w := range want {
		if matches[i].Entry.Name != w.name || matches[i].Degree != w.degree {
			t.Errorf("match[%d] = %s/%s, want %s/%s",
				i, matches[i].Entry.Name, matches[i].Degree, w.name, w.degree)
		}
	}
}

func TestDiscoverExcludesFailsAndUnannotated(t *testing.T) {
	r := semanticFixture(t)
	matches, err := r.Discover([]string{"City"}, []string{"Forecast"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Entry.Name != "WeatherSvc" {
		t.Errorf("matches = %v", matches)
	}
	// A request that cannot supply the advert's inputs discovers nothing.
	none, err := r.Discover(nil, []string{"Forecast"})
	if err != nil || len(none) != 0 {
		t.Errorf("inputless request = %v %v", none, err)
	}
	for _, m := range matches {
		if m.Entry.Name == "Unannotated" {
			t.Error("unannotated entry discovered")
		}
	}
}

func TestAnnotateValidation(t *testing.T) {
	r := semanticFixture(t)
	if err := r.Annotate("Ghost", nil, []string{"Loan"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("annotate missing: %v", err)
	}
	if err := r.Annotate("LoanSvc", nil, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty outputs: %v", err)
	}
	if _, err := r.Discover(nil, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty request: %v", err)
	}
	if p, ok := r.Profile("LoanSvc"); !ok || p.Outputs[0] != "Loan" {
		t.Errorf("profile = %+v %v", p, ok)
	}
}
