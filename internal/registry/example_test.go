package registry_test

import (
	"fmt"

	"soc/internal/registry"
)

// Example publishes services into the broker and discovers one by
// keyword — the publish/discover half of the SOA triangle.
func Example() {
	reg := registry.New()
	_ = reg.Publish(registry.Entry{
		Name: "ShoppingCart", Doc: "stateful shopping cart for web stores",
		Category: "commerce", Endpoint: "http://venus/cart",
		Operations: []string{"AddItem", "Checkout"},
	})
	_ = reg.Publish(registry.Entry{
		Name: "Encryption", Doc: "AES encryption and decryption",
		Category: "security/encryption", Endpoint: "http://venus/enc",
	})
	matches, _ := reg.Search("checkout cart", 1)
	fmt.Println(matches[0].Entry.Name, matches[0].Entry.Endpoint)
	// Output: ShoppingCart http://venus/cart
}
