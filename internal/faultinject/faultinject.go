// Package faultinject is a deterministic fault-injection layer for chaos
// testing the dependability stack of CSE445 unit 6. A seeded Injector
// evaluates per-operation fault Rules — added latency, injected errors,
// dropped and hung requests, payload corruption, optionally concentrated
// into periodic burst windows — and exposes the same fault plan through
// two bindings:
//
//   - Middleware, a rest.Middleware that perturbs a Host's request
//     handling from the provider side, and
//   - Transport, an http.RoundTripper wrapper that perturbs a client's
//     view of the network from the consumer side.
//
// Determinism: the decision for the n-th call of an operation is a pure
// function of (seed, operation, n), so a fixed seed replays the exact
// same fault sequence regardless of goroutine scheduling or wall time.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"soc/internal/rest"
	"soc/internal/telemetry"
	"soc/internal/vtime"
)

// Burst concentrates faults into periodic windows: out of Every
// consecutive calls, the first Length calls apply the rule's fault rates
// scaled to certainty (probability 1), and the remainder apply the base
// rates. A zero Burst disables windowing.
type Burst struct {
	// Every is the window period in calls (> 0 to enable).
	Every int
	// Length is how many calls at the start of each period are forced.
	Length int
}

// active reports whether the n-th call (0-based) falls inside a burst
// window.
func (b Burst) active(n uint64) bool {
	if b.Every <= 0 || b.Length <= 0 {
		return false
	}
	return int(n%uint64(b.Every)) < b.Length
}

// Rule is the fault plan for one operation. All rates are probabilities
// in [0, 1] evaluated independently per call.
type Rule struct {
	// ErrorRate injects a failure: the middleware answers 503 without
	// invoking the handler; the transport synthesizes a 503 response.
	ErrorRate float64
	// DropRate simulates a broken connection: the middleware panics the
	// connection closed (client sees EOF); the transport returns a
	// transport-level error without issuing the request.
	DropRate float64
	// HangRate holds the request until the caller's context expires (or
	// MaxHang elapses), modelling a stuck dependency.
	HangRate float64
	// MaxHang caps a hung request so tests without deadlines still
	// terminate; 0 means 30 s.
	MaxHang time.Duration
	// LatencyRate adds Latency (+ up to LatencyJitter) before the call
	// proceeds — a latency spike, not a failure.
	LatencyRate   float64
	Latency       time.Duration
	LatencyJitter time.Duration
	// CorruptRate truncates and mangles the response payload after the
	// call succeeds, modelling partial writes and bit rot.
	CorruptRate float64
	// Burst optionally concentrates all enabled faults into windows.
	Burst Burst
}

func (r Rule) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ErrorRate", r.ErrorRate}, {"DropRate", r.DropRate},
		{"HangRate", r.HangRate}, {"LatencyRate", r.LatencyRate},
		{"CorruptRate", r.CorruptRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s %v out of [0,1]", p.name, p.v)
		}
	}
	if r.Latency < 0 || r.LatencyJitter < 0 || r.MaxHang < 0 {
		return fmt.Errorf("faultinject: negative duration in rule")
	}
	if r.Burst.Every < 0 || r.Burst.Length < 0 {
		return fmt.Errorf("faultinject: negative burst window")
	}
	return nil
}

// zero reports whether the rule injects nothing.
func (r Rule) zero() bool {
	return r.ErrorRate == 0 && r.DropRate == 0 && r.HangRate == 0 &&
		r.LatencyRate == 0 && r.CorruptRate == 0
}

// Plan is a complete fault plan: a seed, a default rule, and per-operation
// overrides keyed by "Service.Operation" (the key the host metrics use).
type Plan struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Default applies to operations with no explicit rule.
	Default Rule
	// Rules maps operation keys to their fault plans.
	Rules map[string]Rule
}

// Outcome names a fault decision, used as a counter key.
type Outcome string

// Possible outcomes of a fault decision.
const (
	Pass    Outcome = "pass"
	Errored Outcome = "error"
	Dropped Outcome = "drop"
	Hung    Outcome = "hang"
)

// decision is one call's resolved fault plan.
type decision struct {
	outcome Outcome
	latency time.Duration
	corrupt bool
}

// Injector evaluates a Plan deterministically. It is safe for concurrent
// use.
type Injector struct {
	plan Plan

	// Tracer records injected faults as zero-duration fault events in the
	// trace of the call being perturbed, so a trace tree shows which
	// attempts failed by design. Nil uses the process default.
	Tracer *telemetry.Tracer

	mu     sync.Mutex
	calls  map[string]uint64 // per-op call index
	counts map[string]uint64 // "op|outcome" and "op|corrupt"/"op|latency"
}

// New returns an injector for the plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Default.validate(); err != nil {
		return nil, err
	}
	for op, r := range plan.Rules {
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("%v (operation %q)", err, op)
		}
	}
	return &Injector{
		plan:   plan,
		calls:  map[string]uint64{},
		counts: map[string]uint64{},
	}, nil
}

func (inj *Injector) rule(op string) Rule {
	if r, ok := inj.plan.Rules[op]; ok {
		return r
	}
	return inj.plan.Default
}

// decide resolves the fault plan for the next call of op. The per-call
// PRNG is seeded from (plan seed, op, call index) so the n-th call of an
// operation always draws the same faults, independent of interleaving.
func (inj *Injector) decide(op string) decision {
	r := inj.rule(op)

	inj.mu.Lock()
	n := inj.calls[op]
	inj.calls[op] = n + 1
	inj.mu.Unlock()

	if r.zero() {
		inj.count(op, string(Pass))
		return decision{outcome: Pass}
	}

	mix := uint64(n) * 0x9E3779B97F4A7C15 // golden-ratio sequence spreads indices
	rng := rand.New(rand.NewSource(inj.plan.Seed ^ int64(mix) ^ hashOp(op)))
	errRate, dropRate, hangRate, latRate, corruptRate :=
		r.ErrorRate, r.DropRate, r.HangRate, r.LatencyRate, r.CorruptRate
	if r.Burst.active(n) {
		if errRate > 0 {
			errRate = 1
		}
		if dropRate > 0 {
			dropRate = 1
		}
		if hangRate > 0 {
			hangRate = 1
		}
		if latRate > 0 {
			latRate = 1
		}
		if corruptRate > 0 {
			corruptRate = 1
		}
	}

	d := decision{outcome: Pass}
	if latRate > 0 && rng.Float64() < latRate {
		d.latency = r.Latency
		if r.LatencyJitter > 0 {
			d.latency += time.Duration(rng.Int63n(int64(r.LatencyJitter) + 1))
		}
		inj.count(op, "latency")
	}
	// Terminal faults are mutually exclusive; evaluate in severity order.
	switch {
	case hangRate > 0 && rng.Float64() < hangRate:
		d.outcome = Hung
	case dropRate > 0 && rng.Float64() < dropRate:
		d.outcome = Dropped
	case errRate > 0 && rng.Float64() < errRate:
		d.outcome = Errored
	default:
		if corruptRate > 0 && rng.Float64() < corruptRate {
			d.corrupt = true
			inj.count(op, "corrupt")
		}
	}
	inj.count(op, string(d.outcome))
	return d
}

func hashOp(op string) int64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(op); i++ {
		h ^= uint64(op[i])
		h *= 1099511628211
	}
	return int64(h)
}

func (inj *Injector) tracer() *telemetry.Tracer {
	if inj.Tracer != nil {
		return inj.Tracer
	}
	return telemetry.Default()
}

// event records an injected fault as a child event of the perturbed
// call's span. Untraced calls stay silent — an orphan fault span with no
// trace to hang from would only clutter the ring.
func (inj *Injector) event(sc telemetry.SpanContext, op, what string) {
	if !sc.Valid() {
		return
	}
	inj.tracer().Event(sc, telemetry.KindFault, op, "fault", what)
}

func (inj *Injector) count(op, what string) {
	inj.mu.Lock()
	inj.counts[op+"|"+what]++
	inj.mu.Unlock()
}

// Counts snapshots the injection counters, keyed "operation|outcome"
// where outcome is pass, error, drop, hang, latency or corrupt.
func (inj *Injector) Counts() map[string]uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]uint64, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// Injected totals every non-pass fault injected so far.
func (inj *Injector) Injected() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var total uint64
	for k, v := range inj.counts {
		if !strings.HasSuffix(k, "|"+string(Pass)) {
			total += v
		}
	}
	return total
}

// String summarizes the counters, sorted, for test logs.
func (inj *Injector) String() string {
	counts := inj.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	return b.String()
}

// hang and sleepCtx wait on the context's clock (vtime.ClockFrom), so
// injected latency and hangs consume virtual time under simulation and
// wall time otherwise.
func (inj *Injector) hang(ctx context.Context, r Rule) {
	max := r.MaxHang
	if max <= 0 {
		max = 30 * time.Second
	}
	//soclint:ignore errdiscard a hang ends the same way whether the context expired or the cap elapsed; the caller only cares that it returned
	_ = vtime.Sleep(ctx, max)
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	//soclint:ignore errdiscard injected latency is best-effort; a cancelled context just cuts the spike short
	_ = vtime.Sleep(ctx, d)
}

// opKey derives the operation key from routed path parameters, falling
// back to parsing the URL path for unrouted wrappers.
func opKey(p rest.Params, path string) string {
	if p != nil && p["name"] != "" && p["op"] != "" {
		return p["name"] + "." + p["op"]
	}
	return pathOp(path)
}

// Middleware returns the provider-side binding: a rest.Middleware that
// applies the fault plan before (and after) the wrapped handler. Keys are
// "Service.Operation" for invocation routes and the raw path otherwise.
func (inj *Injector) Middleware() rest.Middleware {
	return func(next rest.HandlerFunc) rest.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p rest.Params) {
			op := opKey(p, r.URL.Path)
			d := inj.decide(op)
			sc, _ := telemetry.FromHTTPHeader(r.Header)
			if d.latency > 0 {
				sleepCtx(r.Context(), d.latency)
			}
			if d.corrupt {
				inj.event(sc, op, "corrupt")
			}
			if d.outcome != Pass {
				inj.event(sc, op, string(d.outcome))
			}
			switch d.outcome {
			case Hung:
				inj.hang(r.Context(), inj.rule(op))
				rest.WriteError(w, r, http.StatusServiceUnavailable, "faultinject: hung request released")
				return
			case Dropped:
				// Closing the connection mid-response is the closest the
				// handler layer gets to a dropped TCP stream; writers that
				// can't hijack abort the handler instead (net/http then
				// kills the connection without a reply).
				if hj, ok := w.(http.Hijacker); ok {
					if conn, _, err := hj.Hijack(); err == nil {
						_ = conn.Close()
						return
					}
				}
				panic(http.ErrAbortHandler)
			case Errored:
				rest.WriteError(w, r, http.StatusServiceUnavailable, "faultinject: injected error")
				return
			}
			if !d.corrupt {
				next(w, r, p)
				return
			}
			rec := &recordingWriter{header: http.Header{}}
			next(rec, r, p)
			body := corrupt(rec.buf.Bytes())
			for k, vs := range rec.header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.Header().Del("Content-Length")
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			w.WriteHeader(status)
			_, _ = w.Write(body)
		}
	}
}

// recordingWriter buffers a handler's response so the middleware can
// corrupt it before it reaches the wire.
type recordingWriter struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func (rw *recordingWriter) Header() http.Header         { return rw.header }
func (rw *recordingWriter) WriteHeader(code int)        { rw.status = code }
func (rw *recordingWriter) Write(b []byte) (int, error) { return rw.buf.Write(b) }

// corrupt deterministically mangles a payload: truncate to ~half and flip
// a byte, guaranteeing JSON/XML decoders reject it.
func corrupt(b []byte) []byte {
	if len(b) == 0 {
		return []byte{0xFF}
	}
	out := append([]byte(nil), b[:len(b)/2+1]...)
	out[len(out)-1] ^= 0xA5
	return out
}

// transport is the consumer-side binding.
type transport struct {
	inj  *Injector
	base http.RoundTripper
}

// Transport returns the consumer-side binding: an http.RoundTripper that
// applies the fault plan around base (nil means http.DefaultTransport).
// Keys are "Service.Operation" parsed from Host-convention invocation
// URLs (/services/{name}/invoke/{op} and /services/{name}/soap), and the
// raw path otherwise.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, base: base}
}

// pathOp parses the Host URL conventions back into an operation key.
func pathOp(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) >= 2 && parts[0] == "services" {
		switch {
		case len(parts) == 4 && parts[2] == "invoke":
			return parts[1] + "." + parts[3]
		case len(parts) == 3 && parts[2] == "soap":
			return parts[1] + ".soap"
		}
	}
	return path
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := pathOp(req.URL.Path)
	d := t.inj.decide(op)
	sc := telemetry.SpanContextOf(req.Context())
	if !sc.Valid() {
		sc, _ = telemetry.FromHTTPHeader(req.Header)
	}
	if d.latency > 0 {
		sleepCtx(req.Context(), d.latency)
	}
	if d.corrupt {
		t.inj.event(sc, op, "corrupt")
	}
	if d.outcome != Pass {
		t.inj.event(sc, op, string(d.outcome))
	}
	switch d.outcome {
	case Hung:
		t.inj.hang(req.Context(), t.inj.rule(op))
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faultinject: hung request released")
	case Dropped:
		return nil, fmt.Errorf("faultinject: connection dropped")
	case Errored:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"status":503,"title":"Service Unavailable","detail":"faultinject: injected error"}`)),
			Request:    req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || !d.corrupt {
		return resp, err
	}
	body, readErr := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if readErr != nil {
		return nil, readErr
	}
	mangled := corrupt(body)
	resp.Body = io.NopCloser(bytes.NewReader(mangled))
	resp.ContentLength = int64(len(mangled))
	resp.Header.Del("Content-Length")
	return resp, nil
}
