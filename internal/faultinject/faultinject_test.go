package faultinject

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"soc/internal/rest"
)

// okTransport is a stub backend answering 200 {"ok":true}.
type okTransport struct{}

func (okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(`{"ok":true}`)),
		Request:    req,
	}, nil
}

func classify(resp *http.Response, err error) string {
	switch {
	case err != nil:
		return "err"
	case resp.StatusCode != http.StatusOK:
		return "status"
	default:
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v map[string]any
		if readErr != nil || json.Unmarshal(body, &v) != nil {
			return "corrupt"
		}
		return "ok"
	}
}

func outcomes(t *testing.T, plan Plan, n int) []string {
	t.Helper()
	inj, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	rt := inj.Transport(okTransport{})
	out := make([]string, n)
	for i := range out {
		req, _ := http.NewRequest(http.MethodPost, "http://x/services/Svc/invoke/Op", nil)
		out[i] = classify(rt.RoundTrip(req))
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Rules: map[string]Rule{
			"Svc.Op": {ErrorRate: 0.3, DropRate: 0.1, CorruptRate: 0.1,
				LatencyRate: 0.2, Latency: time.Microsecond},
		},
	}
	a := outcomes(t, plan, 200)
	b := outcomes(t, plan, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	seen := map[string]int{}
	for _, o := range a {
		seen[o]++
	}
	for _, want := range []string{"ok", "err", "status", "corrupt"} {
		if seen[want] == 0 {
			t.Errorf("outcome %q never occurred in %v", want, seen)
		}
	}

	plan.Seed = 43
	c := outcomes(t, plan, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestConcurrentDecisionsMatchSequential(t *testing.T) {
	plan := Plan{Seed: 7, Rules: map[string]Rule{
		"Svc.Op": {ErrorRate: 0.5},
	}}
	seq, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	con, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	seqRT, conRT := seq.Transport(okTransport{}), con.Transport(okTransport{})
	for i := 0; i < n; i++ {
		req, _ := http.NewRequest(http.MethodGet, "http://x/services/Svc/invoke/Op", nil)
		resp, err := seqRT.RoundTrip(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, "http://x/services/Svc/invoke/Op", nil)
			resp, err := conRT.RoundTrip(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	// The per-call decisions are index-keyed, so the aggregate counters
	// must match exactly no matter how the goroutines interleaved.
	if s, c := seq.String(), con.String(); s != c {
		t.Fatalf("concurrent counters diverged:\nseq: %s\ncon: %s", s, c)
	}
}

func TestBurstWindowForcesFaults(t *testing.T) {
	plan := Plan{Seed: 1, Rules: map[string]Rule{
		"Svc.Op": {ErrorRate: 0.01, Burst: Burst{Every: 10, Length: 3}},
	}}
	got := outcomes(t, plan, 20)
	for _, i := range []int{0, 1, 2, 10, 11, 12} {
		if got[i] != "status" {
			t.Errorf("call %d in burst window: got %q, want injected error", i, got[i])
		}
	}
}

func TestHangRespectsContext(t *testing.T) {
	inj, err := New(Plan{Seed: 3, Rules: map[string]Rule{
		"Svc.Op": {HangRate: 1, MaxHang: time.Minute},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt := inj.Transport(okTransport{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://x/services/Svc/invoke/Op", nil)
	start := time.Now()
	_, rtErr := rt.RoundTrip(req)
	if rtErr == nil {
		t.Fatal("hung request returned success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored context cancellation (took %v)", elapsed)
	}
}

func TestMiddlewareInjectsByOperation(t *testing.T) {
	inj, err := New(Plan{Seed: 5, Rules: map[string]Rule{
		"Svc.Bad": {ErrorRate: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	router := rest.NewRouter()
	router.Use(inj.Middleware())
	if err := router.POST("/services/{name}/invoke/{op}", func(w http.ResponseWriter, r *http.Request, p rest.Params) {
		rest.WriteResponse(w, r, http.StatusOK, map[string]any{"ok": true})
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/services/Svc/invoke/Bad", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("faulted op: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/services/Svc/invoke/Good", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clean op: status %d, want 200", resp.StatusCode)
	}
	counts := inj.Counts()
	if counts["Svc.Bad|error"] != 1 || counts["Svc.Good|pass"] != 1 {
		t.Errorf("counters = %v", counts)
	}
	if inj.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", inj.Injected())
	}
}

func TestMiddlewareCorruptsPayload(t *testing.T) {
	inj, err := New(Plan{Seed: 5, Default: Rule{CorruptRate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	router := rest.NewRouter()
	router.Use(inj.Middleware())
	if err := router.GET("/services/{name}/invoke/{op}", func(w http.ResponseWriter, r *http.Request, p rest.Params) {
		rest.WriteResponse(w, r, http.StatusOK, map[string]any{"answer": 42, "padding": strings.Repeat("x", 64)})
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/services/Svc/invoke/Op")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("corrupted payload still decodes: %q", body)
	}
}

func TestDropAbortsConnection(t *testing.T) {
	inj, err := New(Plan{Seed: 5, Rules: map[string]Rule{"Svc.Op": {DropRate: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	router := rest.NewRouter()
	router.Use(rest.Recovery(), inj.Middleware())
	if err := router.GET("/services/{name}/invoke/{op}", func(w http.ResponseWriter, r *http.Request, p rest.Params) {
		rest.WriteResponse(w, r, http.StatusOK, map[string]any{"ok": true})
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/services/Svc/invoke/Op")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dropped request produced a response: %d", resp.StatusCode)
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Plan{
		{Default: Rule{ErrorRate: 1.5}},
		{Default: Rule{DropRate: -0.1}},
		{Default: Rule{Latency: -time.Second}},
		{Rules: map[string]Rule{"x": {Burst: Burst{Every: -1}}}},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("plan %d accepted invalid rule", i)
		}
	}
}

func TestPathOpParsing(t *testing.T) {
	cases := map[string]string{
		"/services/Calc/invoke/Add": "Calc.Add",
		"/services/Calc/soap":       "Calc.soap",
		"/healthz":                  "/healthz",
		"/services":                 "/services",
	}
	for path, want := range cases {
		if got := pathOp(path); got != want {
			t.Errorf("pathOp(%q) = %q, want %q", path, got, want)
		}
	}
}
