package faultinject

import (
	"fmt"
	"strings"
	"testing"

	"soc/internal/wal"
)

func TestDiskInjectorDeterministic(t *testing.T) {
	run := func(seed int64) string {
		di, err := NewDisk(DiskPlan{Seed: seed, Rule: DiskRule{
			WriteErrorRate: 0.1, ShortWriteRate: 0.15, SyncErrorRate: 0.1,
		}})
		if err != nil {
			t.Fatalf("NewDisk: %v", err)
		}
		fs := di.FS(wal.NewMemFS(seed))
		f, err := fs.Create("data")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		var b strings.Builder
		for i := 0; i < 100; i++ {
			n, werr := f.Write([]byte("0123456789abcdef"))
			serr := f.Sync()
			fmt.Fprintf(&b, "%d %d %v %v\n", i, n, werr != nil, serr != nil)
		}
		return b.String()
	}
	if run(3) != run(3) {
		t.Fatal("same seed diverged")
	}
	if run(3) == run(4) {
		t.Fatal("different seeds identical; seeding not wired through")
	}
}

func TestDiskInjectorShortWritePersistsStrictPrefix(t *testing.T) {
	di, err := NewDisk(DiskPlan{Seed: 1, Rule: DiskRule{ShortWriteRate: 1}})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	mem := wal.NewMemFS(1)
	fs := di.FS(mem)
	f, err := fs.Create("data")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	buf := []byte("0123456789")
	n, werr := f.Write(buf)
	if werr == nil {
		t.Fatal("short write must report an error")
	}
	if n < 0 || n >= len(buf) {
		t.Fatalf("short write persisted %d of %d bytes; want a strict prefix", n, len(buf))
	}
	raw, ok := mem.RawFile("data")
	if !ok {
		t.Fatal("file missing")
	}
	if string(raw) != string(buf[:n]) {
		t.Fatalf("file holds %q, want prefix %q", raw, buf[:n])
	}
}

func TestDiskInjectorZeroRuleAlwaysPasses(t *testing.T) {
	di, err := NewDisk(DiskPlan{Seed: 1})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	mem := wal.NewMemFS(1)
	fs := di.FS(mem)
	f, err := fs.Create("data")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if di.Injected() != 0 {
		t.Fatalf("zero rule injected %d faults: %v", di.Injected(), di.Counts())
	}
}

func TestDiskInjectorValidatesRates(t *testing.T) {
	if _, err := NewDisk(DiskPlan{Rule: DiskRule{WriteErrorRate: 1.5}}); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := NewDisk(DiskPlan{Rule: DiskRule{SyncErrorRate: -0.1}}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestWALSurvivesDiskFaults is the integration property: a log driven
// through a faulty disk acks only what recovery can reproduce. Every
// acked record must be recovered intact after a crash, whatever the
// injector did.
func TestWALSurvivesDiskFaults(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		di, err := NewDisk(DiskPlan{Seed: seed, Rule: DiskRule{
			WriteErrorRate: 0.05, ShortWriteRate: 0.1, SyncErrorRate: 0.08,
		}})
		if err != nil {
			t.Fatalf("NewDisk: %v", err)
		}
		mem := wal.NewMemFS(seed)
		l, _, err := wal.Open(di.FS(mem), wal.Options{SegmentBytes: 256})
		if err != nil {
			t.Fatalf("seed %d: Open: %v", seed, err)
		}
		acked := map[uint64]string{}
		for i := 0; i < 80; i++ {
			data := fmt.Sprintf("seed%d-rec%d", seed, i)
			if idx, err := l.Append([]byte(data)); err == nil {
				acked[idx] = data
			}
		}
		mem.Crash()
		// Recovery reads the bare disk: the injector never faults reads.
		_, rec, err := wal.Open(mem, wal.Options{SegmentBytes: 256})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		got := map[uint64]string{}
		for _, r := range rec.Records {
			got[r.Index] = string(r.Data)
		}
		for idx, want := range acked {
			if got[idx] != want {
				t.Fatalf("seed %d: acked record %d = %q lost (recovered %q); injector: %v",
					seed, idx, want, got[idx], di.Counts())
			}
		}
	}
}
