package faultinject

import (
	"fmt"
	"math/rand"
	"sync"

	"soc/internal/wal"
)

// DiskRule is the fault plan for a simulated disk. All rates are
// probabilities in [0, 1] evaluated independently per operation.
type DiskRule struct {
	// WriteErrorRate fails a Write outright: no bytes reach the file.
	WriteErrorRate float64
	// ShortWriteRate persists a strict prefix of the buffer and then
	// errors — the torn write a full disk or interrupted syscall leaves.
	ShortWriteRate float64
	// SyncErrorRate fails a Sync: data already written stays unsynced, so
	// a later crash may tear it.
	SyncErrorRate float64
}

func (r DiskRule) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"WriteErrorRate", r.WriteErrorRate},
		{"ShortWriteRate", r.ShortWriteRate},
		{"SyncErrorRate", r.SyncErrorRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

func (r DiskRule) zero() bool {
	return r.WriteErrorRate == 0 && r.ShortWriteRate == 0 && r.SyncErrorRate == 0
}

// DiskPlan seeds a DiskRule, mirroring Plan for the HTTP bindings.
type DiskPlan struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Rule applies to every file of every wrapped FS.
	Rule DiskRule
}

// DiskInjector perturbs wal.FS implementations deterministically: the
// decision for the n-th write (or sync) of a named file is a pure
// function of (seed, name, n), exactly like Injector's per-operation
// scheme — so a fixed seed replays the same disk faults regardless of
// interleaving. Safe for concurrent use.
type DiskInjector struct {
	plan DiskPlan

	mu     sync.Mutex
	calls  map[string]uint64
	counts map[string]uint64
}

// NewDisk returns a disk injector for the plan.
func NewDisk(plan DiskPlan) (*DiskInjector, error) {
	if err := plan.Rule.validate(); err != nil {
		return nil, err
	}
	return &DiskInjector{
		plan:   plan,
		calls:  map[string]uint64{},
		counts: map[string]uint64{},
	}, nil
}

// FS wraps base so every file written through it draws from the fault
// plan. Reads and namespace operations pass through untouched: the model
// faults the write path (where durability is earned), never recovery.
func (di *DiskInjector) FS(base wal.FS) wal.FS {
	return &faultFS{di: di, base: base}
}

// Counts snapshots the injection counters, keyed "file|outcome" where
// outcome is pass, werror, short or syncerror.
func (di *DiskInjector) Counts() map[string]uint64 {
	di.mu.Lock()
	defer di.mu.Unlock()
	out := make(map[string]uint64, len(di.counts))
	for k, v := range di.counts {
		out[k] = v
	}
	return out
}

// Injected totals every non-pass disk fault injected so far.
func (di *DiskInjector) Injected() uint64 {
	di.mu.Lock()
	defer di.mu.Unlock()
	var total uint64
	for k, v := range di.counts {
		if len(k) < 5 || k[len(k)-5:] != "|pass" {
			total += v
		}
	}
	return total
}

// diskOutcome is one disk operation's resolved fault.
type diskOutcome struct {
	kind string // "pass", "werror", "short", "syncerror"
	keep int    // for "short": how many bytes persist
}

// decide resolves the fault for the next operation on key ("name|write"
// or "name|sync"), seeded from (plan seed, key, call index).
func (di *DiskInjector) decide(key string, bufLen int) diskOutcome {
	r := di.plan.Rule

	di.mu.Lock()
	n := di.calls[key]
	di.calls[key] = n + 1
	di.mu.Unlock()

	if r.zero() {
		di.count(key, "pass")
		return diskOutcome{kind: "pass"}
	}

	mix := uint64(n) * 0x9E3779B97F4A7C15 // golden-ratio sequence spreads indices
	rng := rand.New(rand.NewSource(di.plan.Seed ^ int64(mix) ^ hashOp(key)))
	d := diskOutcome{kind: "pass"}
	switch {
	case bufLen >= 0 && r.WriteErrorRate > 0 && rng.Float64() < r.WriteErrorRate:
		d.kind = "werror"
	case bufLen >= 0 && r.ShortWriteRate > 0 && rng.Float64() < r.ShortWriteRate:
		d.kind = "short"
		if bufLen > 0 {
			d.keep = rng.Intn(bufLen) // strict prefix: 0..bufLen-1 bytes land
		}
	case bufLen < 0 && r.SyncErrorRate > 0 && rng.Float64() < r.SyncErrorRate:
		d.kind = "syncerror"
	}
	di.count(key, d.kind)
	return d
}

func (di *DiskInjector) count(key, what string) {
	di.mu.Lock()
	di.counts[key+"|"+what]++
	di.mu.Unlock()
}

type faultFS struct {
	di   *DiskInjector
	base wal.FS
}

func (f *faultFS) Create(name string) (wal.File, error) {
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{di: f.di, name: name, base: file}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }
func (f *faultFS) Rename(oldname, newname string) error { return f.base.Rename(oldname, newname) }
func (f *faultFS) Remove(name string) error             { return f.base.Remove(name) }
func (f *faultFS) List() ([]string, error)              { return f.base.List() }
func (f *faultFS) SyncDir() error                       { return f.base.SyncDir() }

type faultFile struct {
	di   *DiskInjector
	name string
	base wal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.di.decide(f.name+"|write", len(p))
	switch d.kind {
	case "werror":
		return 0, fmt.Errorf("faultinject: injected write error on %s", f.name)
	case "short":
		n, err := f.base.Write(p[:d.keep])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultinject: injected short write on %s: %d of %d bytes", f.name, n, len(p))
	}
	return f.base.Write(p)
}

func (f *faultFile) Sync() error {
	d := f.di.decide(f.name+"|sync", -1)
	if d.kind == "syncerror" {
		return fmt.Errorf("faultinject: injected sync error on %s", f.name)
	}
	return f.base.Sync()
}

func (f *faultFile) Truncate(size int64) error { return f.base.Truncate(size) }
func (f *faultFile) Close() error              { return f.base.Close() }
