package reliability

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedProbe fails replicas present in the fail set.
type scriptedProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptedProbe) set(replica string, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fail[replica] = failing
}

func (p *scriptedProbe) probe(_ context.Context, replica string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[replica] {
		return errors.New("down")
	}
	return nil
}

func TestHealthCheckerDemotesAndPromotes(t *testing.T) {
	sp := &scriptedProbe{fail: map[string]bool{"b": true}}
	hc, err := NewHealthChecker(HealthCheckerConfig{
		Interval:      time.Hour, // driven manually via CheckNow
		FallThreshold: 2,
		RiseThreshold: 2,
		Probe:         sp.probe,
	}, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Optimistic start: everything healthy before the first probe.
	if got := hc.Healthy(); len(got) != 2 {
		t.Fatalf("initial healthy = %v", got)
	}

	hc.CheckNow(ctx) // b fails once: below FallThreshold, still healthy
	if !hc.IsHealthy("b") {
		t.Fatal("single failure demoted b below the fall threshold")
	}
	hc.CheckNow(ctx) // second consecutive failure demotes
	if hc.IsHealthy("b") {
		t.Fatal("b not demoted after FallThreshold failures")
	}
	if got := hc.Healthy(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("healthy = %v, want [a]", got)
	}
	if hc.LastError("b") == nil {
		t.Error("LastError(b) = nil for failing replica")
	}

	sp.set("b", false)
	hc.CheckNow(ctx) // one success: below RiseThreshold
	if hc.IsHealthy("b") {
		t.Fatal("single success promoted b below the rise threshold")
	}
	hc.CheckNow(ctx) // second success promotes
	if !hc.IsHealthy("b") {
		t.Fatal("b not promoted after RiseThreshold successes")
	}

	probes, demotions, promotions := hc.Counters()
	if probes != 8 || demotions != 1 || promotions != 1 {
		t.Errorf("counters = (%d probes, %d demotions, %d promotions), want (8, 1, 1)", probes, demotions, promotions)
	}
}

func TestHealthCheckerHTTPProbeAndLoop(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	var transitions int32
	hc, err := NewHealthChecker(HealthCheckerConfig{
		Interval: 5 * time.Millisecond,
		OnTransition: func(string, bool) {
			atomic.AddInt32(&transitions, 1)
		},
	}, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hc.Start(ctx)
	defer hc.Stop()

	waitFor := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if hc.IsHealthy(srv.URL) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("replica never became healthy=%v", want)
	}

	waitFor(true)
	healthy.Store(false)
	waitFor(false)
	healthy.Store(true)
	waitFor(true)
	if n := atomic.LoadInt32(&transitions); n < 2 {
		t.Errorf("observed %d transitions, want >= 2", n)
	}
}

func TestHealthCheckerOnProbeFeed(t *testing.T) {
	var mu sync.Mutex
	type obs struct {
		up  bool
		rtt time.Duration
	}
	feed := map[string][]obs{}
	sp := &scriptedProbe{fail: map[string]bool{"down": true}}
	hc, err := NewHealthChecker(HealthCheckerConfig{
		Interval: time.Hour,
		Probe:    sp.probe,
		OnProbe: func(replica string, up bool, rtt time.Duration) {
			mu.Lock()
			feed[replica] = append(feed[replica], obs{up, rtt})
			mu.Unlock()
		},
	}, "up", "down")
	if err != nil {
		t.Fatal(err)
	}
	hc.CheckNow(context.Background())
	mu.Lock()
	defer mu.Unlock()
	if len(feed["up"]) != 1 || !feed["up"][0].up {
		t.Errorf("feed[up] = %v", feed["up"])
	}
	if len(feed["down"]) != 1 || feed["down"][0].up {
		t.Errorf("feed[down] = %v", feed["down"])
	}
}

func TestHealthCheckerValidation(t *testing.T) {
	if _, err := NewHealthChecker(HealthCheckerConfig{Interval: time.Second}); err == nil {
		t.Error("no replicas accepted")
	}
	if _, err := NewHealthChecker(HealthCheckerConfig{}, "a"); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewHealthChecker(HealthCheckerConfig{Interval: time.Second}, "a", "a"); err == nil {
		t.Error("duplicate replica accepted")
	}
}

func TestHealthCheckerStopBeforeStart(t *testing.T) {
	hc, err := NewHealthChecker(HealthCheckerConfig{Interval: time.Hour,
		Probe: func(context.Context, string) error { return nil }}, "a")
	if err != nil {
		t.Fatal(err)
	}
	hc.Start(context.Background())
	hc.Stop()
	hc.Stop() // idempotent
}
