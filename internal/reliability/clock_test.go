package reliability

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"soc/internal/vtime"
)

// These tests pin the clock-discipline contract: with a virtual clock in
// the context, every reliability primitive advances virtual time instead
// of sleeping, and breaker transitions surface through OnTransition in
// order.

func TestRetryBackoffOnVirtualClock(t *testing.T) {
	v := vtime.NewVirtual(time.Unix(0, 0))
	ctx := vtime.WithClock(context.Background(), v)
	calls := 0
	wall := time.Now()
	err := Retry(ctx, RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond}, func(context.Context) error {
		calls++
		return errors.New("boom")
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want failure after 3 attempts", err, calls)
	}
	// Backoff 100ms then 200ms — all virtual, none of it wall time.
	if got := v.Now().Sub(time.Unix(0, 0)); got != 300*time.Millisecond {
		t.Fatalf("virtual backoff advanced %v, want 300ms", got)
	}
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("retry burned %v of wall time on a virtual clock", elapsed)
	}
}

func TestWithTimeoutSynchronousPath(t *testing.T) {
	v := vtime.NewVirtual(time.Unix(0, 0))
	ctx := vtime.WithClock(context.Background(), v)

	// A function that sleeps past the virtual deadline times out without
	// spawning a goroutine or waiting in wall time.
	err := WithTimeout(ctx, 50*time.Millisecond, func(ctx context.Context) error {
		return vtime.Sleep(ctx, time.Minute)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow fn returned %v, want DeadlineExceeded", err)
	}
	if got := v.Now().Sub(time.Unix(0, 0)); got != 50*time.Millisecond {
		t.Fatalf("clock at +%v after timeout, want exactly the 50ms deadline", got)
	}

	// A fast function's result passes through untouched.
	if err := WithTimeout(ctx, 50*time.Millisecond, func(context.Context) error { return nil }); err != nil {
		t.Fatalf("fast fn: %v", err)
	}
	sentinel := errors.New("app error")
	if err := WithTimeout(ctx, 50*time.Millisecond, func(context.Context) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("fn error replaced by %v", err)
	}
}

func TestBreakerOnVirtualClock(t *testing.T) {
	v := vtime.NewVirtual(time.Unix(0, 0))
	b, err := NewBreaker(2, time.Second, v.Now)
	if err != nil {
		t.Fatalf("breaker: %v", err)
	}
	var edges []string
	b.OnTransition = func(from, to BreakerState) {
		edges = append(edges, fmt.Sprintf("%s>%s", from, to))
	}
	boom := errors.New("boom")
	fail := func(context.Context) error { return boom }
	ok := func(context.Context) error { return nil }
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if err := b.Do(ctx, fail); !errors.Is(err, boom) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if err := b.Do(ctx, ok); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}

	// Cooldown elapses in virtual time only: advance the clock and the
	// next call is the half-open probe; its success closes the circuit.
	v.Advance(time.Second)
	if err := b.Do(ctx, ok); err != nil {
		t.Fatalf("probe: %v", err)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(edges) != len(want) {
		t.Fatalf("transitions %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, edges[i], want[i], edges)
		}
	}
}

func TestBreakerProbeFailureReopensViaHook(t *testing.T) {
	v := vtime.NewVirtual(time.Unix(0, 0))
	b, err := NewBreaker(1, time.Second, v.Now)
	if err != nil {
		t.Fatalf("breaker: %v", err)
	}
	var edges []string
	b.OnTransition = func(from, to BreakerState) {
		edges = append(edges, fmt.Sprintf("%s>%s", from, to))
	}
	boom := errors.New("boom")
	//soclint:ignore errdiscard the error outcomes are asserted through the transition hook below
	_ = b.Do(context.Background(), func(context.Context) error { return boom })
	v.Advance(time.Second)
	//soclint:ignore errdiscard the error outcomes are asserted through the transition hook below
	_ = b.Do(context.Background(), func(context.Context) error { return boom })
	want := []string{"closed>open", "open>half-open", "half-open>open"}
	if fmt.Sprint(edges) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", edges, want)
	}
}

func TestStateReportsHalfOpenThroughHook(t *testing.T) {
	v := vtime.NewVirtual(time.Unix(0, 0))
	b, err := NewBreaker(1, time.Second, v.Now)
	if err != nil {
		t.Fatalf("breaker: %v", err)
	}
	var edges []string
	b.OnTransition = func(from, to BreakerState) {
		edges = append(edges, fmt.Sprintf("%s>%s", from, to))
	}
	//soclint:ignore errdiscard only the state transition matters here
	_ = b.Do(context.Background(), func(context.Context) error { return errors.New("boom") })
	v.Advance(2 * time.Second)
	// Merely observing the state after cooldown performs the open→half-open
	// transition, and the hook must see it.
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	want := []string{"closed>open", "open>half-open"}
	if fmt.Sprint(edges) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", edges, want)
	}
}
