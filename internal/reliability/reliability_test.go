package reliability

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func noSleep(context.Context, time.Duration) error { return nil }

func TestRetrySucceedsEventually(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 5, Sleep: noSleep},
		func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("flaky")
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("always down")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 4, Sleep: noSleep},
		func(context.Context) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 4 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryNonRetryable(t *testing.T) {
	fatal := errors.New("bad request")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		MaxAttempts: 5,
		Sleep:       noSleep,
		Retryable:   func(err error) bool { return !errors.Is(err, fatal) },
	}, func(context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	var delays []time.Duration
	_ = Retry(context.Background(), RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    35 * time.Millisecond,
		Sleep:       func(_ context.Context, d time.Duration) error { delays = append(delays, d); return nil },
	}, func(context.Context) error { return errors.New("x") })
	want := []time.Duration{10, 20, 35, 35}
	if len(delays) != 4 {
		t.Fatalf("delays = %v", delays)
	}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Errorf("delay[%d] = %v, want %vms", i, d, want[i])
		}
	}
}

func TestRetryValidation(t *testing.T) {
	if err := Retry(context.Background(), RetryPolicy{}, func(context.Context) error { return nil }); err == nil {
		t.Error("MaxAttempts=0 accepted")
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryPolicy{MaxAttempts: 3, Sleep: noSleep}, func(context.Context) error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b, err := NewBreaker(3, time.Minute, func() time.Time { return now })
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("down")
	fail := func(context.Context) error { return boom }
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Do(ctx, fail); !errors.Is(err, boom) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state = %v", b.State())
	}
	if err := b.Do(ctx, fail); !errors.Is(err, ErrOpen) {
		t.Errorf("open call: %v", err)
	}
	_, failed, rejected := b.Counters()
	if failed != 3 || rejected != 1 {
		t.Errorf("counters failed=%d rejected=%d", failed, rejected)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	b, _ := NewBreaker(1, time.Minute, func() time.Time { return now })
	ctx := context.Background()
	_ = b.Do(ctx, func(context.Context) error { return errors.New("x") })
	if b.State() != Open {
		t.Fatal("not open")
	}
	now = now.Add(2 * time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v", b.State())
	}
	// Successful probe closes.
	if err := b.Do(ctx, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Errorf("state after probe = %v", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b, _ := NewBreaker(1, time.Minute, func() time.Time { return now })
	ctx := context.Background()
	_ = b.Do(ctx, func(context.Context) error { return errors.New("x") })
	now = now.Add(2 * time.Minute)
	_ = b.Do(ctx, func(context.Context) error { return errors.New("still down") })
	if b.State() != Open {
		t.Errorf("state = %v", b.State())
	}
	// And the cooldown restarted: not half-open yet.
	now = now.Add(30 * time.Second)
	if b.State() != Open {
		t.Errorf("state after partial cooldown = %v", b.State())
	}
}

func TestBreakerSingleProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b, _ := NewBreaker(1, time.Minute, func() time.Time { return now })
	ctx := context.Background()
	_ = b.Do(ctx, func(context.Context) error { return errors.New("x") })
	now = now.Add(2 * time.Minute)

	probeStarted := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = b.Do(ctx, func(context.Context) error {
			close(probeStarted)
			<-release
			return nil
		})
	}()
	<-probeStarted
	// Concurrent caller while the probe is in flight: rejected.
	if err := b.Do(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrOpen) {
		t.Errorf("concurrent call during probe: %v", err)
	}
	close(release)
	wg.Wait()
	if b.State() != Closed {
		t.Errorf("state = %v", b.State())
	}
}

func TestBreakerValidation(t *testing.T) {
	if _, err := NewBreaker(0, time.Second, nil); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewBreaker(1, 0, nil); err == nil {
		t.Error("cooldown 0 accepted")
	}
}

func TestWithTimeout(t *testing.T) {
	err := WithTimeout(context.Background(), 10*time.Millisecond, func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if err := WithTimeout(context.Background(), time.Second, func(context.Context) error { return nil }); err != nil {
		t.Errorf("fast call: %v", err)
	}
	if err := WithTimeout(context.Background(), 0, func(context.Context) error { return nil }); err == nil {
		t.Error("zero timeout accepted")
	}
}

func TestBulkhead(t *testing.T) {
	b, err := NewBulkhead(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.Do(ctx, func(context.Context) error {
				inFlight <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	<-inFlight
	<-inFlight
	if b.InUse() != 2 {
		t.Errorf("in use = %d", b.InUse())
	}
	if err := b.Do(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrBulkheadFull) {
		t.Errorf("third call: %v", err)
	}
	close(release)
	wg.Wait()
	if err := b.Do(ctx, func(context.Context) error { return nil }); err != nil {
		t.Errorf("after drain: %v", err)
	}
	if _, err := NewBulkhead(0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestFailoverStickyPreference(t *testing.T) {
	f, err := NewFailover("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var tried []string
	err = f.Do(ctx, func(_ context.Context, r string) error {
		tried = append(tried, r)
		if r == "c" {
			return nil
		}
		return errors.New(r + " down")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tried) != 3 || tried[2] != "c" {
		t.Errorf("tried = %v", tried)
	}
	// Sticky: next call starts at c.
	tried = nil
	_ = f.Do(ctx, func(_ context.Context, r string) error {
		tried = append(tried, r)
		return nil
	})
	if len(tried) != 1 || tried[0] != "c" {
		t.Errorf("sticky tried = %v", tried)
	}
}

func TestFailoverAllFail(t *testing.T) {
	f, _ := NewFailover(1, 2)
	err := f.Do(context.Background(), func(_ context.Context, r int) error {
		return errors.New("down")
	})
	if !errors.Is(err, ErrAllReplicasFailed) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewFailover[string](); err == nil {
		t.Error("empty group accepted")
	}
}

func TestFailoverContextCancel(t *testing.T) {
	f, _ := NewFailover("a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Do(ctx, func(context.Context, string) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestAvailabilityMath(t *testing.T) {
	s, err := SeriesAvailability(0.99, 0.99)
	if err != nil || math.Abs(s-0.9801) > 1e-9 {
		t.Errorf("series = %v %v", s, err)
	}
	p, err := ParallelAvailability(0.9, 0.9)
	if err != nil || math.Abs(p-0.99) > 1e-9 {
		t.Errorf("parallel = %v %v", p, err)
	}
	// Redundancy helps, chaining hurts.
	if p <= 0.9 || s >= 0.99 {
		t.Error("availability intuitions violated")
	}
	if _, err := SeriesAvailability(); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := SeriesAvailability(1.5); err == nil {
		t.Error("availability > 1 accepted")
	}
	if _, err := ParallelAvailability(-0.1); err == nil {
		t.Error("negative availability accepted")
	}
}
