// Package reliability implements the dependability-reliability mechanisms
// of CSE445 unit 6 for service consumers: retry with exponential backoff,
// circuit breaking, call timeouts, bulkhead isolation, replica failover,
// active health checking (HealthChecker probes replica health endpoints
// and demotes/promotes replicas for failover), and the series/parallel
// availability arithmetic used to reason about composed services.
package reliability

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"soc/internal/vtime"
)

// ErrOpen reports a call rejected by an open circuit breaker.
var ErrOpen = errors.New("reliability: circuit open")

// ErrBulkheadFull reports a call rejected because the bulkhead is at
// capacity.
var ErrBulkheadFull = errors.New("reliability: bulkhead full")

// ErrAllReplicasFailed reports a failover group with no surviving replica.
var ErrAllReplicasFailed = errors.New("reliability: all replicas failed")

// RetryPolicy controls Retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (≥ 1).
	MaxAttempts int
	// BaseDelay is the first backoff; doubles each retry. A zero
	// BaseDelay retries the second attempt immediately but still backs
	// off from minBackoff afterwards — it never hot-loops.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = uncapped).
	MaxDelay time.Duration
	// Retryable decides whether an error is worth retrying; nil retries
	// everything.
	Retryable func(error) bool
	// sleep is the wait function; tests replace it.
	Sleep func(ctx context.Context, d time.Duration) error
}

// minBackoff floors the doubled retry delay so BaseDelay == 0 cannot
// produce a zero-backoff hot loop.
const minBackoff = time.Millisecond

// defaultSleep waits on the context's clock (vtime.ClockFrom), so retry
// backoffs advance virtual time under simulation and wall time otherwise.
func defaultSleep(ctx context.Context, d time.Duration) error {
	return vtime.Sleep(ctx, d)
}

// Retry runs fn until success, a non-retryable error, attempt exhaustion,
// or context cancellation. It returns the last error annotated with the
// attempt count.
func Retry(ctx context.Context, p RetryPolicy, fn func(ctx context.Context) error) error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("reliability: MaxAttempts must be >= 1, got %d", p.MaxAttempts)
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	delay := p.BaseDelay
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = fn(ctx)
		if last == nil {
			return nil
		}
		if p.Retryable != nil && !p.Retryable(last) {
			return last
		}
		if attempt == p.MaxAttempts {
			break
		}
		if err := sleep(ctx, delay); err != nil {
			return err
		}
		delay *= 2
		// 0×2 = 0 would never back off; floor the doubling so a zero
		// BaseDelay can't degenerate into a hot retry loop.
		if delay < minBackoff {
			delay = minBackoff
		}
		if p.MaxDelay > 0 && delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
	return fmt.Errorf("reliability: %d attempts failed: %w", p.MaxAttempts, last)
}

// BreakerState is a circuit breaker state.
type BreakerState int

// Circuit breaker states.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Breaker is a circuit breaker: after FailureThreshold consecutive
// failures it opens and rejects calls for Cooldown; the first probe after
// the cooldown half-opens the circuit, and its outcome closes or re-opens
// it.
type Breaker struct {
	FailureThreshold int
	Cooldown         time.Duration
	// OnTransition, when non-nil, observes every state change as a
	// (from, to) pair. It fires outside the breaker's lock, in transition
	// order, after the state change took effect; the legal edges are
	// Closed→Open, Open→HalfOpen, HalfOpen→Closed and HalfOpen→Open, and
	// the simulation harness's invariant checker holds it to exactly
	// those. Set it before the breaker is shared; it must not call back
	// into the breaker.
	OnTransition func(from, to BreakerState)

	mu        sync.Mutex
	state     BreakerState
	failures  int
	openedAt  time.Time
	probing   bool
	now       func() time.Time
	rejected  uint64
	succeeded uint64
	failed    uint64
}

// transition is one recorded state change, fired to OnTransition after
// the lock is released.
type transition struct{ from, to BreakerState }

// setStateLocked moves the breaker to next, recording the edge when the
// state actually changes. Callers must hold b.mu and fire the returned
// slice via fire after unlocking.
func (b *Breaker) setStateLocked(next BreakerState, edges []transition) []transition {
	if b.state == next {
		return edges
	}
	edges = append(edges, transition{b.state, next})
	b.state = next
	return edges
}

// fire delivers recorded transitions to OnTransition, if set.
func (b *Breaker) fire(edges []transition) {
	if b.OnTransition == nil {
		return
	}
	for _, e := range edges {
		b.OnTransition(e.from, e.to)
	}
}

// NewBreaker returns a closed breaker. now=nil uses wall time.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) (*Breaker, error) {
	if threshold < 1 || cooldown <= 0 {
		return nil, fmt.Errorf("reliability: bad breaker config threshold=%d cooldown=%v", threshold, cooldown)
	}
	if now == nil {
		//soclint:ignore clockdiscipline real-clock default behind the injectable now parameter
		now = time.Now
	}
	return &Breaker{FailureThreshold: threshold, Cooldown: cooldown, state: Closed, now: now}, nil
}

// State returns the current state (advancing Open → HalfOpen when the
// cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	edges := b.advanceLocked(nil)
	state := b.state
	b.mu.Unlock()
	b.fire(edges)
	return state
}

func (b *Breaker) advanceLocked(edges []transition) []transition {
	if b.state == Open && b.now().Sub(b.openedAt) >= b.Cooldown {
		edges = b.setStateLocked(HalfOpen, edges)
	}
	return edges
}

// Do runs fn under the breaker. In the half-open state exactly one probe
// call is admitted; concurrent callers are rejected until it reports.
func (b *Breaker) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	b.mu.Lock()
	edges := b.advanceLocked(nil)
	probe := false
	switch b.state {
	case Open:
		b.rejected++
		b.mu.Unlock()
		b.fire(edges)
		return ErrOpen
	case HalfOpen:
		if b.probing {
			b.rejected++
			b.mu.Unlock()
			b.fire(edges)
			return ErrOpen
		}
		b.probing = true
		probe = true
	}
	b.mu.Unlock()
	b.fire(edges)
	edges = nil

	err := fn(ctx)

	b.mu.Lock()
	if probe {
		b.probing = false
	}
	if err != nil {
		b.failed++
		b.failures++
		if probe || b.failures >= b.FailureThreshold {
			edges = b.setStateLocked(Open, edges)
			b.openedAt = b.now()
		}
		b.mu.Unlock()
		b.fire(edges)
		return err
	}
	b.succeeded++
	b.failures = 0
	edges = b.setStateLocked(Closed, edges)
	b.mu.Unlock()
	b.fire(edges)
	return nil
}

// Counters reports successes, failures and rejections.
func (b *Breaker) Counters() (succeeded, failed, rejected uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.succeeded, b.failed, b.rejected
}

// WithTimeout runs fn with a deadline on the context's clock; when fn
// ignores the context, the caller is still released after d (fn keeps
// running until it returns). Under a synchronous clock (vtime.Virtual)
// no watchdog goroutine is spawned: fn runs inline with a virtual
// deadline stamped into its context, and "fn ran past the budget" is
// detected by comparing virtual time against that deadline afterwards —
// the goroutine-free path that keeps simulations deterministic.
func WithTimeout(ctx context.Context, d time.Duration, fn func(ctx context.Context) error) error {
	if d <= 0 {
		return errors.New("reliability: non-positive timeout")
	}
	clk := vtime.ClockFrom(ctx)
	if vtime.IsSynchronous(clk) {
		tctx, cancel := clk.WithTimeout(ctx, d)
		defer cancel()
		err := fn(tctx)
		if exp := vtime.Expired(tctx, clk); exp != nil {
			return exp
		}
		return err
	}
	ctx, cancel := clk.WithTimeout(ctx, d)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fn(ctx) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Bulkhead caps concurrent calls to protect a dependency from overload.
type Bulkhead struct {
	slots chan struct{}
}

// NewBulkhead returns a bulkhead admitting n concurrent calls.
func NewBulkhead(n int) (*Bulkhead, error) {
	if n < 1 {
		return nil, fmt.Errorf("reliability: bulkhead capacity %d", n)
	}
	return &Bulkhead{slots: make(chan struct{}, n)}, nil
}

// Do runs fn if a slot is free, else fails fast with ErrBulkheadFull.
func (b *Bulkhead) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	select {
	case b.slots <- struct{}{}:
		defer func() { <-b.slots }()
		return fn(ctx)
	default:
		return ErrBulkheadFull
	}
}

// InUse reports occupied slots.
func (b *Bulkhead) InUse() int { return len(b.slots) }

// Failover tries replicas in order until one succeeds, remembering the
// last healthy replica to try first next time (sticky failover).
type Failover[T any] struct {
	mu       sync.Mutex
	replicas []T
	prefer   int
}

// NewFailover returns a group over the replicas.
func NewFailover[T any](replicas ...T) (*Failover[T], error) {
	if len(replicas) == 0 {
		return nil, errors.New("reliability: failover needs replicas")
	}
	return &Failover[T]{replicas: replicas}, nil
}

// Do invokes fn per replica starting from the sticky preference; the first
// success wins. All failures yield ErrAllReplicasFailed wrapping the last.
func (f *Failover[T]) Do(ctx context.Context, fn func(ctx context.Context, replica T) error) error {
	f.mu.Lock()
	start := f.prefer
	n := len(f.replicas)
	f.mu.Unlock()
	var last error
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		idx := (start + i) % n
		f.mu.Lock()
		replica := f.replicas[idx]
		f.mu.Unlock()
		if err := fn(ctx, replica); err != nil {
			last = err
			continue
		}
		f.mu.Lock()
		f.prefer = idx
		f.mu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: last error: %v", ErrAllReplicasFailed, last)
}

// SeriesAvailability is the availability of components that must all work:
// the product of the individual availabilities.
func SeriesAvailability(availabilities ...float64) (float64, error) {
	if len(availabilities) == 0 {
		return 0, errors.New("reliability: no components")
	}
	p := 1.0
	for _, a := range availabilities {
		if a < 0 || a > 1 {
			return 0, fmt.Errorf("reliability: availability %v out of [0,1]", a)
		}
		p *= a
	}
	return p, nil
}

// ParallelAvailability is the availability of redundant components where
// any one suffices: 1 − ∏(1−ai).
func ParallelAvailability(availabilities ...float64) (float64, error) {
	if len(availabilities) == 0 {
		return 0, errors.New("reliability: no components")
	}
	q := 1.0
	for _, a := range availabilities {
		if a < 0 || a > 1 {
			return 0, fmt.Errorf("reliability: availability %v out of [0,1]", a)
		}
		q *= 1 - a
	}
	return 1 - q, nil
}
