package reliability

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrUnhealthy reports a replica whose health endpoint answered badly.
var ErrUnhealthy = errors.New("reliability: replica unhealthy")

// ProbeFunc checks one replica; a nil error means healthy. The context
// carries the per-probe timeout.
type ProbeFunc func(ctx context.Context, replica string) error

// HTTPProbe returns a ProbeFunc that issues GET replica+path (path ""
// means "/healthz") with client (nil means a 30 s timeout client; the
// checker's per-probe context additionally bounds each request) and
// treats any 2xx answer as healthy.
func HTTPProbe(client *http.Client, path string) ProbeFunc {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if path == "" {
		path = "/healthz"
	}
	return func(ctx context.Context, replica string) error {
		//soclint:ignore tracepropagate probes run on the checker's own schedule with no caller trace to carry, and callplane would import-cycle with reliability
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+path, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnhealthy, err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return fmt.Errorf("%w: status %d", ErrUnhealthy, resp.StatusCode)
		}
		return nil
	}
}

// HealthCheckerConfig configures a HealthChecker.
type HealthCheckerConfig struct {
	// Interval between probe rounds (> 0).
	Interval time.Duration
	// Timeout bounds each probe; 0 means Interval.
	Timeout time.Duration
	// FallThreshold is how many consecutive probe failures demote a
	// healthy replica; 0 means 1 (demote on first failure).
	FallThreshold int
	// RiseThreshold is how many consecutive probe successes promote an
	// unhealthy replica; 0 means 1.
	RiseThreshold int
	// Probe checks a replica; nil uses HTTPProbe(nil, "/healthz").
	Probe ProbeFunc
	// OnProbe, when set, observes every probe outcome — the hook that
	// feeds measured health into registry QoS records.
	OnProbe func(replica string, healthy bool, rtt time.Duration)
	// OnTransition, when set, observes demotions and promotions.
	OnTransition func(replica string, healthy bool)
}

// replicaHealth is the checker's view of one replica.
type replicaHealth struct {
	healthy   bool
	succseq   int // consecutive successes
	failseq   int // consecutive failures
	lastProbe time.Time
	lastErr   error
}

// HealthChecker actively probes a fixed replica set and classifies each
// replica healthy or unhealthy with fall/rise hysteresis. Replicas start
// healthy (optimistic) until the first probe says otherwise. All methods
// are safe for concurrent use.
type HealthChecker struct {
	cfg      HealthCheckerConfig
	replicas []string

	mu    sync.Mutex
	state map[string]*replicaHealth

	probes     uint64
	demotions  uint64
	promotions uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealthChecker returns a checker over the replicas. Start launches
// the probe loop; CheckNow probes synchronously.
func NewHealthChecker(cfg HealthCheckerConfig, replicas ...string) (*HealthChecker, error) {
	if len(replicas) == 0 {
		return nil, errors.New("reliability: health checker needs replicas")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("reliability: health interval %v", cfg.Interval)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.FallThreshold <= 0 {
		cfg.FallThreshold = 1
	}
	if cfg.RiseThreshold <= 0 {
		cfg.RiseThreshold = 1
	}
	if cfg.Probe == nil {
		cfg.Probe = HTTPProbe(nil, "")
	}
	hc := &HealthChecker{
		cfg:      cfg,
		replicas: append([]string(nil), replicas...),
		state:    make(map[string]*replicaHealth, len(replicas)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, r := range replicas {
		if _, dup := hc.state[r]; dup {
			return nil, fmt.Errorf("reliability: duplicate replica %q", r)
		}
		hc.state[r] = &replicaHealth{healthy: true}
	}
	return hc, nil
}

// Start launches the background probe loop (one immediate round, then one
// per interval). Stop terminates it.
func (hc *HealthChecker) Start(ctx context.Context) {
	go func() {
		defer close(hc.done)
		hc.CheckNow(ctx)
		//soclint:ignore clockdiscipline the health prober is deliberately wall-clock-driven; the simulation harness drives CheckNow directly instead of Start
		t := time.NewTicker(hc.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-hc.stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				hc.CheckNow(ctx)
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit. Safe to call more
// than once, and before Start (the loop then exits on launch).
func (hc *HealthChecker) Stop() {
	hc.stopOnce.Do(func() { close(hc.stop) })
	select {
	case <-hc.done:
	//soclint:ignore clockdiscipline shutdown watchdog against a stuck probe loop; bounds real waiting, never simulated
	case <-time.After(5 * time.Second):
	}
}

// CheckNow probes every replica once, concurrently, and applies the
// fall/rise thresholds.
func (hc *HealthChecker) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range hc.replicas {
		wg.Add(1)
		go func(replica string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, hc.cfg.Timeout)
			defer cancel()
			//soclint:ignore clockdiscipline probe RTT is measured in wall time by design; it feeds QoS records, not simulated schedules
			start := time.Now()
			err := hc.cfg.Probe(pctx, replica)
			//soclint:ignore clockdiscipline probe RTT is measured in wall time by design; it feeds QoS records, not simulated schedules
			hc.observe(replica, err, time.Since(start))
		}(r)
	}
	wg.Wait()
}

func (hc *HealthChecker) observe(replica string, err error, rtt time.Duration) {
	hc.mu.Lock()
	st := hc.state[replica]
	hc.probes++
	//soclint:ignore clockdiscipline last-probe timestamp is diagnostic metadata, never compared against simulated time
	st.lastProbe = time.Now()
	st.lastErr = err
	var transitioned bool
	if err == nil {
		st.succseq++
		st.failseq = 0
		if !st.healthy && st.succseq >= hc.cfg.RiseThreshold {
			st.healthy = true
			hc.promotions++
			transitioned = true
		}
	} else {
		st.failseq++
		st.succseq = 0
		if st.healthy && st.failseq >= hc.cfg.FallThreshold {
			st.healthy = false
			hc.demotions++
			transitioned = true
		}
	}
	healthy := st.healthy
	hc.mu.Unlock()

	if hc.cfg.OnProbe != nil {
		hc.cfg.OnProbe(replica, err == nil, rtt)
	}
	if transitioned && hc.cfg.OnTransition != nil {
		hc.cfg.OnTransition(replica, healthy)
	}
}

// IsHealthy reports the current classification of a replica; unknown
// replicas are unhealthy.
func (hc *HealthChecker) IsHealthy(replica string) bool {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	st, ok := hc.state[replica]
	return ok && st.healthy
}

// Healthy returns the currently healthy replicas in registration order.
func (hc *HealthChecker) Healthy() []string {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	out := make([]string, 0, len(hc.replicas))
	for _, r := range hc.replicas {
		if hc.state[r].healthy {
			out = append(out, r)
		}
	}
	return out
}

// Replicas returns all replicas in registration order.
func (hc *HealthChecker) Replicas() []string {
	return append([]string(nil), hc.replicas...)
}

// Counters reports probes issued, demotions and promotions so far —
// the observability hook the chaos suite asserts on.
func (hc *HealthChecker) Counters() (probes, demotions, promotions uint64) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.probes, hc.demotions, hc.promotions
}

// LastError returns the most recent probe error of a replica (nil when
// the last probe succeeded or the replica was never probed).
func (hc *HealthChecker) LastError(replica string) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if st, ok := hc.state[replica]; ok {
		return st.lastErr
	}
	return fmt.Errorf("reliability: unknown replica %q", replica)
}
