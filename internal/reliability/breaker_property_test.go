package reliability

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// breakerModel is an independent reference implementation of the breaker
// specification, advanced in lockstep with the real Breaker.
type breakerModel struct {
	threshold int
	cooldown  time.Duration
	state     BreakerState
	failures  int
	openedAt  time.Time
}

func (m *breakerModel) advance(now time.Time) {
	if m.state == Open && now.Sub(m.openedAt) >= m.cooldown {
		m.state = HalfOpen
	}
}

// call feeds one attempt (succeeds=true/false) at time now and returns
// whether the model admits the call.
func (m *breakerModel) call(now time.Time, succeeds bool) (admitted bool) {
	m.advance(now)
	if m.state == Open {
		return false
	}
	probe := m.state == HalfOpen
	if !succeeds {
		m.failures++
		if probe || m.failures >= m.threshold {
			m.state = Open
			m.openedAt = now
		}
		return true
	}
	m.failures = 0
	m.state = Closed
	return true
}

// TestBreakerPropertyAgainstModel drives the breaker through randomized
// success/failure/time-advance sequences under many seeds and checks
// every observable (admission, state, counters) against the model.
func TestBreakerPropertyAgainstModel(t *testing.T) {
	errFail := errors.New("fail")
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		threshold := 1 + rng.Intn(4)
		cooldown := time.Duration(1+rng.Intn(10)) * time.Second

		clock := time.Unix(0, 0)
		now := func() time.Time { return clock }
		b, err := NewBreaker(threshold, cooldown, now)
		if err != nil {
			t.Fatal(err)
		}
		model := &breakerModel{threshold: threshold, cooldown: cooldown}
		var wantOK, wantFail, wantReject uint64

		for step := 0; step < 400; step++ {
			if rng.Intn(3) == 0 {
				clock = clock.Add(time.Duration(rng.Intn(int(2 * cooldown))))
			}
			succeeds := rng.Intn(2) == 0
			admitted := model.call(clock, succeeds)
			var ran bool
			err := b.Do(context.Background(), func(context.Context) error {
				ran = true
				if succeeds {
					return nil
				}
				return errFail
			})
			if ran != admitted {
				t.Fatalf("seed %d step %d: breaker admitted=%v, model admitted=%v (threshold=%d cooldown=%v)",
					seed, step, ran, admitted, threshold, cooldown)
			}
			switch {
			case !admitted:
				wantReject++
				if !errors.Is(err, ErrOpen) {
					t.Fatalf("seed %d step %d: rejected call returned %v, want ErrOpen", seed, step, err)
				}
			case succeeds:
				wantOK++
				if err != nil {
					t.Fatalf("seed %d step %d: admitted success returned %v", seed, step, err)
				}
			default:
				wantFail++
				if !errors.Is(err, errFail) {
					t.Fatalf("seed %d step %d: admitted failure returned %v", seed, step, err)
				}
			}
			if got, want := b.State(), model.state; got != want {
				// State() itself advances Open→HalfOpen; mirror it.
				model.advance(clock)
				if got != model.state {
					t.Fatalf("seed %d step %d: state=%v model=%v", seed, step, got, want)
				}
			}
		}
		ok, fail, rejected := b.Counters()
		if ok != wantOK || fail != wantFail || rejected != wantReject {
			t.Fatalf("seed %d: counters = (%d, %d, %d), model = (%d, %d, %d)",
				seed, ok, fail, rejected, wantOK, wantFail, wantReject)
		}
	}
}

// TestRetryZeroBaseDelayBacksOff pins the fix for the zero-backoff trap:
// BaseDelay == 0 must not produce an all-zero (hot) retry schedule.
func TestRetryZeroBaseDelayBacksOff(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   0,
		Sleep: func(_ context.Context, d time.Duration) error {
			delays = append(delays, d)
			return nil
		},
	}
	err := Retry(context.Background(), p, func(context.Context) error {
		return errors.New("always fails")
	})
	if err == nil {
		t.Fatal("retry succeeded unexpectedly")
	}
	if len(delays) != 4 {
		t.Fatalf("slept %d times, want 4", len(delays))
	}
	if delays[0] != 0 {
		t.Errorf("first retry delay = %v, want 0 (immediate first retry is fine)", delays[0])
	}
	for i, d := range delays[1:] {
		if d < minBackoff {
			t.Errorf("delay %d = %v, below the %v floor (hot loop)", i+1, d, minBackoff)
		}
	}
	if delays[2] <= delays[1] || delays[3] <= delays[2] {
		t.Errorf("delays not increasing: %v", delays)
	}
}
