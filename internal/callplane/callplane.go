// Package callplane is the single invocation spine every consumer path in
// the module rides: host.Client, soap.Client, host.ResilientClient and the
// registry REST client are thin bindings over one Invocation value, one
// Transport interface and one composable Interceptor chain. The spine is
// what carries a request's identity end to end — service, operation,
// binding, chosen replica, attempt number and (via telemetry) trace
// context — so the same resilience stack (bulkhead → retry → failover →
// breaker → timeout) is reusable by any client, and every hop of one
// originating call lands in one trace tree.
//
// Outbound HTTP requests are constructed here and nowhere else: NewRequest
// is the module's sanctioned context→request site (enforced by the
// soclint tracepropagate rule), so deadline plumbing and trace-header
// injection can never drift apart across clients again.
package callplane

import (
	"context"
	"errors"
	"io"
	"net/http"

	"soc/internal/telemetry"
)

// ErrNoPayload reports an Invocation dispatched to Terminal without a
// payload function — a binding bug, not a runtime condition.
var ErrNoPayload = errors.New("callplane: invocation has no payload func")

// ErrReplicaSkipped marks a replica the failover interceptor skipped
// because the health view currently demotes it.
var ErrReplicaSkipped = errors.New("callplane: replica skipped (demoted)")

// Invocation is one service call crossing the plane. Interceptors mutate
// it in flight: failover sets Target per replica, the attempt interceptor
// counts Attempt. The payload exchange itself is the Do func, installed by
// the binding client and executed by Terminal at the bottom of the chain.
type Invocation struct {
	// Service and Operation name the call; Name joins them for spans.
	Service   string
	Operation string
	// Binding is the wire protocol ("rest", "soap", "registry", ...).
	Binding string
	// Target is the peer base URL for the current attempt. Bindings with a
	// fixed endpoint set it up front; the failover interceptor overwrites
	// it per replica.
	Target string
	// Attempt counts delivery attempts (retry × failover), 1-based;
	// incremented by WithAttemptSpan.
	Attempt int
	// Do performs the actual payload exchange against Target.
	Do func(ctx context.Context, inv *Invocation) error
}

// Name returns "Service.Operation" (or just the operation when the
// service is anonymous) — the span name of the call.
func (inv *Invocation) Name() string {
	if inv.Service == "" {
		return inv.Operation
	}
	return inv.Service + "." + inv.Operation
}

// Transport delivers an invocation. Implementations wrap each other via
// Interceptors, bottoming out at Terminal.
type Transport interface {
	RoundTrip(ctx context.Context, inv *Invocation) error
}

// TransportFunc adapts a function to Transport.
type TransportFunc func(ctx context.Context, inv *Invocation) error

// RoundTrip calls f.
func (f TransportFunc) RoundTrip(ctx context.Context, inv *Invocation) error {
	return f(ctx, inv)
}

// Interceptor wraps a Transport with one concern (timeout, retry, spans,
// ...). Interceptors compose with Chain.
type Interceptor func(Transport) Transport

// Terminal executes the invocation's payload func — the bottom of every
// chain.
var Terminal Transport = TransportFunc(func(ctx context.Context, inv *Invocation) error {
	if inv.Do == nil {
		return ErrNoPayload
	}
	return inv.Do(ctx, inv)
})

// Chain wraps t with the interceptors so the first listed is outermost:
// Chain(Terminal, a, b, c) delivers a → b → c → Terminal. Build the chain
// once per client; per-call state lives on the Invocation, not the chain.
func Chain(t Transport, interceptors ...Interceptor) Transport {
	for i := len(interceptors) - 1; i >= 0; i-- {
		t = interceptors[i](t)
	}
	return t
}

// NewRequest builds an outbound HTTP request bound to ctx (deadline and
// cancelation) with the active span's trace context stamped into the
// X-Soc-Trace header. This is the module's one context→request
// construction site; the soclint tracepropagate rule flags any other.
func NewRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	telemetry.InjectHTTP(ctx, req.Header)
	return req, nil
}
