package callplane

import (
	"context"
	"errors"
	"strconv"
	"time"

	"soc/internal/reliability"
	"soc/internal/telemetry"
)

// WithSpan opens the root client span of the invocation, named
// Service.Operation, annotated with the binding and — when retries or
// failover multiplied delivery — the total attempt count. A nil tracer
// makes this a no-op interceptor.
func WithSpan(t *telemetry.Tracer, kind telemetry.Kind) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			sp, ctx := t.StartSpan(ctx, kind, inv.Name())
			if sp != nil {
				if inv.Binding != "" {
					sp.Annotate("binding", inv.Binding)
				}
				if inv.Target != "" {
					sp.Target = inv.Target
				}
			}
			err := next.RoundTrip(ctx, inv)
			if sp != nil && inv.Attempt > 1 {
				sp.Annotate("attempts", strconv.Itoa(inv.Attempt))
			}
			sp.EndErr(err)
			return err
		})
	}
}

// WithAttemptSpan numbers each delivery attempt and records it as a child
// span carrying the chosen replica; a breaker rejection is annotated
// "breaker=open" so failed attempts explain themselves in the trace tree.
func WithAttemptSpan(t *telemetry.Tracer) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			inv.Attempt++
			sp, ctx := t.StartSpan(ctx, telemetry.KindClient, "attempt")
			if sp != nil {
				sp.Attempt = inv.Attempt
				sp.Target = inv.Target
			}
			err := next.RoundTrip(ctx, inv)
			if err != nil && errors.Is(err, reliability.ErrOpen) {
				sp.Annotate("breaker", "open")
			}
			sp.EndErr(err)
			return err
		})
	}
}

// WithTimeout bounds each delivery below it; d <= 0 disables the bound.
func WithTimeout(d time.Duration) Interceptor {
	return func(next Transport) Transport {
		if d <= 0 {
			return next
		}
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			return reliability.WithTimeout(ctx, d, func(ctx context.Context) error {
				return next.RoundTrip(ctx, inv)
			})
		})
	}
}

// WithRetry re-delivers on failure per the policy (each pass runs the
// whole inner chain, e.g. a full failover sweep).
func WithRetry(p reliability.RetryPolicy) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			return reliability.Retry(ctx, p, func(ctx context.Context) error {
				return next.RoundTrip(ctx, inv)
			})
		})
	}
}

// WithBulkhead caps concurrent deliveries through the chain.
func WithBulkhead(b *reliability.Bulkhead) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			return b.Do(ctx, func(ctx context.Context) error {
				return next.RoundTrip(ctx, inv)
			})
		})
	}
}

// WithBreakers guards each delivery with the circuit breaker of the
// invocation's current target, so one bad replica can't open the circuit
// for its siblings. Targets the lookup doesn't know (nil) pass through.
func WithBreakers(get func(target string) *reliability.Breaker) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			br := get(inv.Target)
			if br == nil {
				return next.RoundTrip(ctx, inv)
			}
			return br.Do(ctx, func(ctx context.Context) error {
				return next.RoundTrip(ctx, inv)
			})
		})
	}
}

// FailoverOptions parameterize WithFailover with a health view and
// observation hooks; every field is optional.
type FailoverOptions struct {
	// Healthy reports whether a target is currently usable. Nil means no
	// health filtering.
	Healthy func(target string) bool
	// AnyHealthy reports whether any replica is usable; consulted once per
	// failover pass. When it returns false, demoted replicas are tried
	// anyway — a stale health view's long-shot beats a guaranteed failure.
	AnyHealthy func() bool
	// SkipErr shapes the error recorded for a skipped replica; nil uses
	// ErrReplicaSkipped.
	SkipErr func(target string) error
	// OnHop fires for every replica after the first within one pass
	// (including ones then skipped); OnSkip for replicas skipped as
	// demoted; OnAttempt for replicas actually tried.
	OnHop, OnSkip, OnAttempt func(ctx context.Context, inv *Invocation)
}

// WithFailover sweeps the replica group, pointing the invocation's Target
// at each replica in turn until one delivery succeeds. Sticky preference,
// ordering, and the all-demoted escape hatch follow reliability.Failover.
func WithFailover(fo *reliability.Failover[string], opts FailoverOptions) Interceptor {
	return func(next Transport) Transport {
		return TransportFunc(func(ctx context.Context, inv *Invocation) error {
			allDemoted := opts.AnyHealthy != nil && !opts.AnyHealthy()
			first := true
			return fo.Do(ctx, func(ctx context.Context, target string) error {
				inv.Target = target
				if !first && opts.OnHop != nil {
					opts.OnHop(ctx, inv)
				}
				first = false
				if opts.Healthy != nil && !allDemoted && !opts.Healthy(target) {
					if opts.OnSkip != nil {
						opts.OnSkip(ctx, inv)
					}
					if opts.SkipErr != nil {
						return opts.SkipErr(target)
					}
					return ErrReplicaSkipped
				}
				if opts.OnAttempt != nil {
					opts.OnAttempt(ctx, inv)
				}
				return next.RoundTrip(ctx, inv)
			})
		})
	}
}
