package callplane

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"soc/internal/reliability"
	"soc/internal/telemetry"
)

func TestChainOrder(t *testing.T) {
	var order []string
	mark := func(name string) Interceptor {
		return func(next Transport) Transport {
			return TransportFunc(func(ctx context.Context, inv *Invocation) error {
				order = append(order, name)
				return next.RoundTrip(ctx, inv)
			})
		}
	}
	inv := &Invocation{Operation: "x", Do: func(ctx context.Context, inv *Invocation) error {
		order = append(order, "payload")
		return nil
	}}
	chain := Chain(Terminal, mark("a"), mark("b"), mark("c"))
	if err := chain.RoundTrip(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a,b,c,payload" {
		t.Fatalf("order = %s, want a,b,c,payload (first listed outermost)", got)
	}
}

func TestTerminalWithoutPayload(t *testing.T) {
	err := Terminal.RoundTrip(context.Background(), &Invocation{Operation: "x"})
	if !errors.Is(err, ErrNoPayload) {
		t.Fatalf("err = %v, want ErrNoPayload", err)
	}
}

func TestInvocationName(t *testing.T) {
	if n := (&Invocation{Service: "Calc", Operation: "Add"}).Name(); n != "Calc.Add" {
		t.Fatalf("Name = %q", n)
	}
	if n := (&Invocation{Operation: "Add"}).Name(); n != "Add" {
		t.Fatalf("anonymous Name = %q", n)
	}
}

func TestNewRequestInjectsTrace(t *testing.T) {
	tr := telemetry.NewTracer(8)
	sp, ctx := tr.StartSpan(context.Background(), telemetry.KindClient, "Calc.Add")
	defer sp.End()

	req, err := NewRequest(ctx, "POST", "http://example/invoke", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if got := req.Header.Get(telemetry.HeaderName); got != sp.TraceParent() {
		t.Fatalf("trace header = %q, want %q", got, sp.TraceParent())
	}
	if req.Context() != ctx {
		t.Fatal("request not bound to caller context")
	}

	// Untraced context: no header.
	req2, err := NewRequest(context.Background(), "GET", "http://example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if req2.Header.Get(telemetry.HeaderName) != "" {
		t.Fatal("header stamped without an active span")
	}
}

func TestWithSpanRecordsRoot(t *testing.T) {
	tr := telemetry.NewTracer(8)
	boom := errors.New("boom")
	inv := &Invocation{Service: "Calc", Operation: "Add", Binding: "rest",
		Do: func(ctx context.Context, inv *Invocation) error { return boom }}
	chain := Chain(Terminal, WithSpan(tr, telemetry.KindClient))
	if err := chain.RoundTrip(context.Background(), inv); !errors.Is(err, boom) {
		t.Fatal("error not propagated")
	}
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "Calc.Add" || sp.Err != "boom" || sp.Kind != telemetry.KindClient {
		t.Fatalf("root span = %+v", sp)
	}
	if anns := sp.Annotations(); len(anns) != 1 || anns[0].Value != "rest" {
		t.Fatalf("annotations = %v", anns)
	}
}

func TestWithAttemptSpanNumbersAndBreakerAnnotation(t *testing.T) {
	tr := telemetry.NewTracer(8)
	br, err := reliability.NewBreaker(1, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	fail := errors.New("down")
	inv := &Invocation{Operation: "Op", Target: "http://a",
		Do: func(ctx context.Context, inv *Invocation) error { return fail }}
	chain := Chain(Terminal,
		WithAttemptSpan(tr),
		WithBreakers(func(string) *reliability.Breaker { return br }),
	)
	// First delivery fails and opens the 1-threshold breaker; second is
	// rejected by the open breaker.
	_ = chain.RoundTrip(context.Background(), inv)
	err = chain.RoundTrip(context.Background(), inv)
	if !errors.Is(err, reliability.ErrOpen) {
		t.Fatalf("second call err = %v, want ErrOpen", err)
	}
	if inv.Attempt != 2 {
		t.Fatalf("Attempt = %d, want 2", inv.Attempt)
	}
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Attempt != 1 || spans[1].Attempt != 2 || spans[1].Target != "http://a" {
		t.Fatalf("attempt spans = %+v", spans)
	}
	if anns := spans[1].Annotations(); len(anns) != 1 || anns[0] != (telemetry.Annotation{Key: "breaker", Value: "open"}) {
		t.Fatalf("open-breaker annotation missing: %v", anns)
	}
}

func TestWithTimeout(t *testing.T) {
	inv := &Invocation{Operation: "slow", Do: func(ctx context.Context, inv *Invocation) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
			return nil
		}
	}}
	chain := Chain(Terminal, WithTimeout(5*time.Millisecond))
	if err := chain.RoundTrip(context.Background(), inv); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Zero timeout is the identity interceptor.
	fast := &Invocation{Operation: "f", Do: func(ctx context.Context, inv *Invocation) error { return nil }}
	if err := Chain(Terminal, WithTimeout(0)).RoundTrip(context.Background(), fast); err != nil {
		t.Fatal(err)
	}
}

func TestWithRetry(t *testing.T) {
	calls := 0
	inv := &Invocation{Operation: "flaky", Do: func(ctx context.Context, inv *Invocation) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}}
	p := reliability.RetryPolicy{MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if err := Chain(Terminal, WithRetry(p)).RoundTrip(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestWithBulkhead(t *testing.T) {
	bh, err := reliability.NewBulkhead(1)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := &Invocation{Operation: "s", Do: func(ctx context.Context, inv *Invocation) error {
		close(entered)
		<-release
		return nil
	}}
	chain := Chain(Terminal, WithBulkhead(bh))
	done := make(chan error, 1)
	go func() { done <- chain.RoundTrip(context.Background(), slow) }()
	<-entered
	// Second delivery finds the only slot taken.
	second := &Invocation{Operation: "s2", Do: func(ctx context.Context, inv *Invocation) error { return nil }}
	if err := chain.RoundTrip(context.Background(), second); !errors.Is(err, reliability.ErrBulkheadFull) {
		t.Fatalf("err = %v, want ErrBulkheadFull", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWithFailoverSweepAndHooks(t *testing.T) {
	fo, err := reliability.NewFailover("http://a", "http://b", "http://c")
	if err != nil {
		t.Fatal(err)
	}
	var hops, skips, tries []string
	opts := FailoverOptions{
		Healthy:    func(target string) bool { return target != "http://a" },
		AnyHealthy: func() bool { return true },
		OnHop:      func(ctx context.Context, inv *Invocation) { hops = append(hops, inv.Target) },
		OnSkip:     func(ctx context.Context, inv *Invocation) { skips = append(skips, inv.Target) },
		OnAttempt:  func(ctx context.Context, inv *Invocation) { tries = append(tries, inv.Target) },
		SkipErr:    func(target string) error { return fmt.Errorf("demoted: %s", target) },
	}
	inv := &Invocation{Operation: "Op", Do: func(ctx context.Context, inv *Invocation) error {
		if inv.Target == "http://b" {
			return errors.New("b down")
		}
		return nil
	}}
	if err := Chain(Terminal, WithFailover(fo, opts)).RoundTrip(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	// a skipped (demoted), b tried and failed, c tried and succeeded.
	if strings.Join(skips, ",") != "http://a" {
		t.Fatalf("skips = %v", skips)
	}
	if strings.Join(tries, ",") != "http://b,http://c" {
		t.Fatalf("tries = %v", tries)
	}
	// Hops: every replica after the first, including the skipped pass.
	if strings.Join(hops, ",") != "http://b,http://c" {
		t.Fatalf("hops = %v", hops)
	}
	if inv.Target != "http://c" {
		t.Fatalf("final target = %s", inv.Target)
	}
}

func TestWithFailoverAllDemotedEscape(t *testing.T) {
	fo, err := reliability.NewFailover("http://a")
	if err != nil {
		t.Fatal(err)
	}
	tried := false
	opts := FailoverOptions{
		Healthy:    func(string) bool { return false },
		AnyHealthy: func() bool { return false },
	}
	inv := &Invocation{Operation: "Op", Do: func(ctx context.Context, inv *Invocation) error {
		tried = true
		return nil
	}}
	if err := Chain(Terminal, WithFailover(fo, opts)).RoundTrip(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	if !tried {
		t.Fatal("all-demoted pass must try demoted replicas anyway")
	}
}

func TestWithFailoverDefaultSkipErr(t *testing.T) {
	fo, err := reliability.NewFailover("http://a")
	if err != nil {
		t.Fatal(err)
	}
	opts := FailoverOptions{
		Healthy:    func(string) bool { return false },
		AnyHealthy: func() bool { return true },
	}
	inv := &Invocation{Operation: "Op", Do: func(ctx context.Context, inv *Invocation) error { return nil }}
	err = Chain(Terminal, WithFailover(fo, opts)).RoundTrip(context.Background(), inv)
	if !errors.Is(err, reliability.ErrAllReplicasFailed) {
		t.Fatalf("err = %v, want all-replicas-failed wrapping the skip", err)
	}
	if !strings.Contains(err.Error(), ErrReplicaSkipped.Error()) {
		t.Fatalf("err = %v, want default skip error recorded", err)
	}
}

// The full resilient shape: a trace tree with one root, per-attempt child
// spans, and the server-side exchange visible through the payload func.
func TestResilientChainTraceShape(t *testing.T) {
	tr := telemetry.NewTracer(32)
	fo, err := reliability.NewFailover("http://a", "http://b")
	if err != nil {
		t.Fatal(err)
	}
	breakers := map[string]*reliability.Breaker{}
	for _, u := range []string{"http://a", "http://b"} {
		br, err := reliability.NewBreaker(5, time.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		breakers[u] = br
	}
	inv := &Invocation{Service: "Calc", Operation: "Add", Binding: "rest",
		Do: func(ctx context.Context, inv *Invocation) error {
			if inv.Target == "http://a" {
				return errors.New("a down")
			}
			return nil
		}}
	chain := Chain(Terminal,
		WithSpan(tr, telemetry.KindClient),
		WithRetry(reliability.RetryPolicy{MaxAttempts: 2, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}),
		WithFailover(fo, FailoverOptions{}),
		WithAttemptSpan(tr),
		WithBreakers(func(u string) *reliability.Breaker { return breakers[u] }),
		WithTimeout(time.Second),
	)
	if err := chain.RoundTrip(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	trees := telemetry.BuildTraces(tr.Snapshot())
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want one trace", len(trees))
	}
	if len(trees[0].Roots) != 1 {
		t.Fatalf("roots = %d, want 1:\n%s", len(trees[0].Roots), trees[0].Format())
	}
	root := trees[0].Roots[0]
	if root.Span.Name != "Calc.Add" {
		t.Fatalf("root = %+v", root.Span)
	}
	if len(root.Children) != 2 {
		t.Fatalf("attempts = %d, want 2 (a failed, b succeeded):\n%s", len(root.Children), trees[0].Format())
	}
	if root.Children[0].Span.Target != "http://a" || root.Children[0].Span.Err == "" {
		t.Fatalf("attempt 1 = %+v", root.Children[0].Span)
	}
	if root.Children[1].Span.Target != "http://b" || root.Children[1].Span.Err != "" {
		t.Fatalf("attempt 2 = %+v", root.Children[1].Span)
	}
}
