package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"soc/internal/vtime"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Rate: 0, Duration: time.Second}, func(context.Context) error { return nil }); !errors.Is(err, ErrConfig) {
		t.Fatalf("rate 0: err = %v, want ErrConfig", err)
	}
	if _, err := Run(context.Background(), Config{Rate: 10, Duration: time.Second}, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil op: err = %v, want ErrConfig", err)
	}
}

// TestRunOpenLoopStall is the coordinated-omission test: a server that
// stalls 100ms partway through the schedule must not reduce the number
// of requests issued — the full schedule is offered either way — and
// the stall must surface in the tail quantiles because latency is
// measured from scheduled arrival, not from the delayed issue instant.
// The run uses the virtual clock, so it is instant and deterministic.
func TestRunOpenLoopStall(t *testing.T) {
	clock := vtime.NewVirtual(time.Unix(0, 0))
	const rate, horizon = 1000.0, 2 * time.Second // 2000 scheduled arrivals
	calls := 0
	op := func(ctx context.Context) error {
		calls++
		if calls == 1000 {
			// One mid-schedule stall, two hundred arrivals' worth.
			return clock.Sleep(ctx, 200*time.Millisecond)
		}
		return nil
	}
	res, err := Run(context.Background(), Config{Rate: rate, Duration: horizon, Clock: clock}, op)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2000 || res.Issued != 2000 {
		t.Fatalf("scheduled/issued = %d/%d, want 2000/2000 (open loop must offer the full schedule)", res.Scheduled, res.Issued)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// The stalled request and the ~200 arrivals scheduled during the
	// stall all measure from their due time: max ≈ 200ms and p99 well
	// above the un-stalled baseline (which is ~0 on a virtual clock).
	if max := res.Latency.Max(); max < 190*time.Millisecond {
		t.Fatalf("max latency = %v, want ~200ms stall visible", max)
	}
	if p99 := res.Latency.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v, want the stall's queueing delay in the tail", p99)
	}
	// A closed-loop harness would have lost ~200 requests during the
	// stall; open-loop keeps the offered count and pays in latency.
	if res.Latency.Count() != 2000 {
		t.Fatalf("samples = %d, want 2000", res.Latency.Count())
	}
}

// TestRunDeterministicReplay runs the same virtual-clock scenario twice
// and requires identical results — the property that makes load-smoke
// usable as a CI gate.
func TestRunDeterministicReplay(t *testing.T) {
	runOnce := func() *Result {
		clock := vtime.NewVirtual(time.Unix(0, 0))
		calls := 0
		res, err := Run(context.Background(), Config{Rate: 500, Duration: time.Second, Clock: clock}, func(ctx context.Context) error {
			calls++
			if calls%100 == 0 {
				return clock.Sleep(ctx, 5*time.Millisecond)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.Issued != b.Issued || a.Elapsed != b.Elapsed ||
		a.Latency.Quantile(0.999) != b.Latency.Quantile(0.999) ||
		a.Latency.Max() != b.Latency.Max() {
		t.Fatalf("virtual runs diverged: %+v vs %+v", a, b)
	}
}

func TestRunWallClockSmoke(t *testing.T) {
	// A tiny real-time run: 50 req over 100ms with a trivial op. Checks
	// the multi-worker path end to end without meaningful wall cost.
	res, err := Run(context.Background(), Config{Rate: 500, Duration: 100 * time.Millisecond, Workers: 4}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != res.Scheduled {
		t.Fatalf("issued %d of %d", res.Issued, res.Scheduled)
	}
}

func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{Rate: 100, Duration: time.Second, Workers: 2}, func(context.Context) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Issued >= res.Scheduled {
		t.Fatalf("canceled run should report partial issue count, got %+v", res)
	}
}

// TestRunShedOutcomeClass: ops failing with (wrapped) ErrShed land in the
// Shed counter, not Errors — backpressure is its own outcome class.
func TestRunShedOutcomeClass(t *testing.T) {
	clock := vtime.NewVirtual(time.Unix(0, 0))
	calls := 0
	res, err := Run(context.Background(), Config{Rate: 100, Duration: time.Second, Clock: clock},
		func(context.Context) error {
			calls++
			switch calls % 4 {
			case 0:
				return ErrShed
			case 1:
				return fmt.Errorf("server said no: %w", ErrShed)
			case 2:
				return errors.New("hard failure")
			default:
				return nil
			}
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Issued != 100 || res.Shed != 50 || res.Errors != 25 || res.OK() != 25 {
		t.Fatalf("issued %d shed %d errors %d ok %d, want 100/50/25/25",
			res.Issued, res.Shed, res.Errors, res.OK())
	}
	var buf strings.Builder
	res.Format(&buf)
	if !strings.Contains(buf.String(), "shed 50") {
		t.Fatalf("report does not surface the shed count:\n%s", buf.String())
	}
}
