package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histSubBits sets the sub-bucket resolution of the latency histogram:
// each power-of-two octave is split into 2^histSubBits linear
// sub-buckets, bounding the relative quantile error at 2^-histSubBits
// (~3% at 5 bits) — the HDR-histogram layout, sized for atomics instead
// of a library dependency.
const histSubBits = 5

// histBuckets covers 1ns up to ~2^40 ns (~18 minutes) at full
// resolution; anything slower saturates into the last bucket.
const histBuckets = (41 - histSubBits) << histSubBits

// Histogram is a fixed-size log-bucketed latency histogram safe for
// concurrent recording: every Record is two atomic adds and a CAS-free
// max update, so the measurement plane never becomes the convoy it is
// trying to observe. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket. Durations below
// 2^histSubBits ns are exact; above that, the top histSubBits bits after
// the leading one select the sub-bucket within the octave.
func bucketIndex(d time.Duration) int {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	exp := bits.Len64(ns) // 0..64
	if exp <= histSubBits {
		return int(ns)
	}
	mant := (ns >> (uint(exp) - histSubBits - 1)) &^ (1 << histSubBits)
	idx := (exp-histSubBits)<<histSubBits | int(mant)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative (upper-bound) duration of a
// bucket, the inverse of bucketIndex up to sub-bucket width.
func bucketValue(idx int) time.Duration {
	if idx < 1<<histSubBits {
		return time.Duration(idx)
	}
	exp := uint(idx>>histSubBits) + histSubBits - 1
	mant := uint64(idx&(1<<histSubBits-1)) | 1<<histSubBits
	return time.Duration((mant + 1) << (exp - histSubBits))
}

// Record folds one latency sample into the histogram.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of recorded samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the q*count-th sample — so Quantile(0.99) reads "99% of
// samples were at or below this". Returns 0 on an empty histogram.
// Concurrent Records move the answer but never corrupt it: each bucket
// is read once, atomically.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			seen += c
			if seen >= target {
				return bucketValue(i)
			}
		}
	}
	return h.Max()
}
