package loadgen

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for d := time.Duration(0); d < 32; d++ {
		if got := bucketValue(bucketIndex(d)); got != d {
			t.Fatalf("small value %d mapped to %d", d, got)
		}
	}
	h.Record(7)
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("Quantile(1) = %v, want 7ns", got)
	}
}

func TestHistogramQuantileError(t *testing.T) {
	// The representative value of any bucket must be within one
	// sub-bucket width (2^-histSubBits ≈ 3.1%) above the true sample.
	for _, d := range []time.Duration{
		123 * time.Nanosecond,
		456 * time.Microsecond,
		789 * time.Millisecond,
		12 * time.Second,
		17 * time.Minute,
	} {
		var h Histogram
		h.Record(d)
		got := h.Quantile(0.999)
		if got < d {
			t.Fatalf("quantile %v below sample %v", got, d)
		}
		if relErr := float64(got-d) / float64(d); relErr > 0.04 {
			t.Fatalf("quantile %v vs sample %v: relative error %.3f", got, d, relErr)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	// 1000 samples at 1ms, 9 at 50ms, 1 at 500ms: p50 ~1ms, p99 within
	// the 1ms bulk, p99.9 must see the 50ms band, max the 500ms outlier.
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Record(50 * time.Millisecond)
	}
	h.Record(500 * time.Millisecond)
	if p50 := h.Quantile(0.5); p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p999 := h.Quantile(0.999); p999 < 45*time.Millisecond {
		t.Fatalf("p99.9 = %v, want >= ~50ms", p999)
	}
	if max := h.Max(); max != 500*time.Millisecond {
		t.Fatalf("max = %v, want 500ms", max)
	}
	if n := h.Count(); n != 1010 {
		t.Fatalf("count = %d, want 1010", n)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if n := h.Count(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
	if max := h.Max(); max != workers*time.Millisecond {
		t.Fatalf("max = %v, want %v", max, workers*time.Millisecond)
	}
}
