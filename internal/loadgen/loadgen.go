// Package loadgen is an open-loop, coordinated-omission-safe load
// generator for the service stack. Arrivals follow a fixed schedule
// derived from the offered rate — they do not wait for responses — and
// every latency sample is measured from the request's *scheduled*
// arrival time, not the instant a worker got around to issuing it. A
// server stall therefore shows up as tail latency on the samples queued
// behind it, instead of silently reducing the number of requests sent
// (the coordinated-omission trap closed-loop "do; measure; repeat"
// harnesses fall into; see the HdrHistogram literature).
//
// All time flows through a vtime.Clock, so the same runner drives live
// hosts on the wall clock and deterministic in-process scenarios on a
// virtual clock — a virtual run of a two-minute schedule completes in
// microseconds and replays identically, which is how the harness's own
// CO-safety is tested.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soc/internal/vtime"
)

// ErrConfig reports an invalid load configuration.
var ErrConfig = errors.New("loadgen: invalid configuration")

// ErrShed marks a request the server refused under backpressure (a
// load-shed 503). Ops return it — or an error wrapping it — so the
// harness reports sheds as their own outcome class: a server protecting
// itself is not failing, and folding sheds into the error count would
// hide exactly the behavior admission control exists to produce.
var ErrShed = errors.New("loadgen: request shed")

// Op issues one request. The error marks the sample as failed; the
// sample is recorded either way.
type Op func(ctx context.Context) error

// Config shapes one load run.
type Config struct {
	// Rate is the offered arrival rate in requests per second. The
	// schedule is fixed up front: request i is due at start + i/Rate,
	// regardless of how the server is doing.
	Rate float64
	// Duration is the schedule horizon; Rate*Duration arrivals total.
	Duration time.Duration
	// Workers bounds in-flight requests (0 means 8*GOMAXPROCS). When the
	// clock is synchronous (virtual), the run is forced single-worker so
	// it stays deterministic.
	Workers int
	// Clock supplies now/sleep; nil means the wall clock.
	Clock vtime.Clock
}

// Result summarizes one run.
type Result struct {
	// Scheduled is the number of arrivals in the schedule; Issued is how
	// many were actually sent (== Scheduled unless the context was
	// canceled). An open-loop harness keeps Issued at Scheduled even
	// when the server stalls — the stall surfaces in the tail quantiles
	// instead.
	Scheduled int
	Issued    int
	// Errors counts ops that returned an error; Shed counts ops the
	// server refused under backpressure (errors wrapping ErrShed), kept
	// apart from Errors because a deliberate 503 is the admission
	// control working, not the workload failing.
	Errors int
	Shed   int
	// Elapsed is the clock time from first scheduled arrival to last
	// completion.
	Elapsed time.Duration
	// OfferedRate is Rate as configured; AchievedRate is Issued/Elapsed.
	OfferedRate  float64
	AchievedRate float64
	// Latency is measured from each request's scheduled arrival time.
	Latency *Histogram
}

// Run executes the schedule and blocks until every arrival has been
// issued and completed (or ctx is canceled, which abandons the
// remainder but reports what was measured).
func Run(ctx context.Context, cfg Config, op Op) (*Result, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: rate=%v duration=%v", ErrConfig, cfg.Rate, cfg.Duration)
	}
	if op == nil {
		return nil, fmt.Errorf("%w: nil op", ErrConfig)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8 * runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if vtime.IsSynchronous(clock) {
		// A synchronous clock advances inside Sleep; racing workers
		// would advance it non-deterministically.
		workers = 1
	}

	res := &Result{Scheduled: n, OfferedRate: cfg.Rate, Latency: &Histogram{}}
	start := clock.Now()
	var (
		next   atomic.Int64
		issued atomic.Int64
		errs   atomic.Int64
		sheds  atomic.Int64
		wg     sync.WaitGroup
	)
	// arrivalOffset is the fixed open-loop schedule: request i is due at
	// start + i/Rate, computed — never accumulated — so rounding error
	// does not drift across a long run.
	arrivalOffset := func(i int64) time.Duration {
		return time.Duration(float64(i) / cfg.Rate * float64(time.Second))
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || ctx.Err() != nil {
					return
				}
				due := start.Add(arrivalOffset(i))
				if wait := due.Sub(clock.Now()); wait > 0 {
					if err := clock.Sleep(ctx, wait); err != nil {
						return
					}
				}
				err := op(ctx)
				// Latency from the scheduled arrival: if every worker
				// was stuck behind a stalled server, `due` is in the
				// past and the queueing delay lands in the sample.
				res.Latency.Record(clock.Now().Sub(due))
				issued.Add(1)
				switch {
				case err == nil:
				case errors.Is(err, ErrShed):
					sheds.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	res.Issued = int(issued.Load())
	res.Errors = int(errs.Load())
	res.Shed = int(sheds.Load())
	res.Elapsed = clock.Now().Sub(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.AchievedRate = float64(res.Issued) / s
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// OK is the successful-response count: issued minus errors minus sheds.
func (r *Result) OK() int { return r.Issued - r.Errors - r.Shed }

// GoodputRate is successful responses per second of elapsed time — the
// number a saturation study compares, since a stalling server can keep
// "achieving" its issue rate while serving almost nothing.
func (r *Result) GoodputRate() float64 {
	if s := r.Elapsed.Seconds(); s > 0 {
		return float64(r.OK()) / s
	}
	return 0
}

// ShedRate is shed responses per second of elapsed time.
func (r *Result) ShedRate() float64 {
	if s := r.Elapsed.Seconds(); s > 0 {
		return float64(r.Shed) / s
	}
	return 0
}

// Format renders the result as the human-readable report socload prints.
func (r *Result) Format(w io.Writer) {
	fmt.Fprintf(w, "scheduled %d  issued %d  ok %d  errors %d  shed %d  elapsed %v\n",
		r.Scheduled, r.Issued, r.OK(), r.Errors, r.Shed, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "offered %.1f req/s  achieved %.1f req/s  goodput %.1f req/s  shed %.1f req/s\n",
		r.OfferedRate, r.AchievedRate, r.GoodputRate(), r.ShedRate())
	fmt.Fprintf(w, "latency (from scheduled arrival): p50 %v  p99 %v  p99.9 %v  max %v  mean %v\n",
		r.Latency.Quantile(0.50), r.Latency.Quantile(0.99),
		r.Latency.Quantile(0.999), r.Latency.Max(), r.Latency.Mean())
}
