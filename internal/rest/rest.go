// Package rest is the RESTful service substrate of CSE446's "RESTful
// service development" unit: a small router with path parameters, JSON/XML
// content negotiation, and a composable middleware chain (recovery,
// logging, authentication, rate limiting).
package rest

import (
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
)

// ErrRoute reports an invalid route registration.
var ErrRoute = errors.New("rest: invalid route")

// Params holds path parameters extracted from the matched route pattern.
type Params map[string]string

// HandlerFunc is a REST handler with extracted path parameters.
type HandlerFunc func(w http.ResponseWriter, r *http.Request, p Params)

// Middleware wraps a handler with cross-cutting behavior.
type Middleware func(next HandlerFunc) HandlerFunc

// segment is one piece of a route pattern.
type segment struct {
	literal string
	param   string // non-empty for {name} segments
	wild    bool   // true for a trailing *
}

type route struct {
	method   string
	segments []segment
	handler  HandlerFunc
	pattern  string
	// wrapped is handler with the router's middleware chain precompiled
	// around it (rebuilt by Use/Handle, not per request).
	wrapped HandlerFunc
	// nparams counts {name} segments, sizing the Params map exactly.
	nparams int
}

// Router dispatches requests by method and path pattern. Patterns use
// {name} for single-segment parameters and a trailing * for a catch-all
// (bound to the parameter "*").
type Router struct {
	routes     []route
	middleware []Middleware
	// NotFound handles unmatched paths; nil uses http.NotFound.
	NotFound http.HandlerFunc
	// MethodNotAllowed handles matched paths with wrong methods; nil
	// writes a 405 with an Allow header.
	MethodNotAllowed func(w http.ResponseWriter, r *http.Request, allowed []string)
}

// NewRouter returns an empty router.
func NewRouter() *Router { return &Router{} }

// Use appends middleware, applied to every route in registration order
// (the first Use is the outermost wrapper). The middleware chain is
// recompiled here — not per request — so dispatch stays allocation-free.
// Use must not race ServeHTTP; register middleware before serving.
func (rt *Router) Use(mw ...Middleware) {
	rt.middleware = append(rt.middleware, mw...)
	for i := range rt.routes {
		rt.routes[i].wrapped = rt.compile(rt.routes[i].handler)
	}
}

// compile wraps h in the current middleware chain, outermost first.
func (rt *Router) compile(h HandlerFunc) HandlerFunc {
	for i := len(rt.middleware) - 1; i >= 0; i-- {
		h = rt.middleware[i](h)
	}
	return h
}

// Handle registers a handler for a method and pattern.
func (rt *Router) Handle(method, pattern string, h HandlerFunc) error {
	if h == nil {
		return fmt.Errorf("%w: nil handler for %s %s", ErrRoute, method, pattern)
	}
	if method == "" || !strings.HasPrefix(pattern, "/") {
		return fmt.Errorf("%w: %q %q", ErrRoute, method, pattern)
	}
	segs, err := parsePattern(pattern)
	if err != nil {
		return err
	}
	for _, existing := range rt.routes {
		if existing.method == method && existing.pattern == pattern {
			return fmt.Errorf("%w: duplicate %s %s", ErrRoute, method, pattern)
		}
	}
	nparams := 0
	for _, s := range segs {
		if s.param != "" {
			nparams++
		}
	}
	rt.routes = append(rt.routes, route{
		method: method, segments: segs, handler: h, pattern: pattern,
		wrapped: rt.compile(h), nparams: nparams,
	})
	return nil
}

// GET, POST, PUT and DELETE are Handle shorthands.
func (rt *Router) GET(pattern string, h HandlerFunc) error {
	return rt.Handle(http.MethodGet, pattern, h)
}
func (rt *Router) POST(pattern string, h HandlerFunc) error {
	return rt.Handle(http.MethodPost, pattern, h)
}
func (rt *Router) PUT(pattern string, h HandlerFunc) error {
	return rt.Handle(http.MethodPut, pattern, h)
}
func (rt *Router) DELETE(pattern string, h HandlerFunc) error {
	return rt.Handle(http.MethodDelete, pattern, h)
}

func parsePattern(pattern string) ([]segment, error) {
	parts := strings.Split(strings.Trim(pattern, "/"), "/")
	if pattern == "/" {
		return nil, nil
	}
	segs := make([]segment, 0, len(parts))
	for i, p := range parts {
		switch {
		case p == "*":
			if i != len(parts)-1 {
				return nil, fmt.Errorf("%w: * must be final in %q", ErrRoute, pattern)
			}
			segs = append(segs, segment{wild: true})
		case strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}"):
			name := p[1 : len(p)-1]
			if name == "" {
				return nil, fmt.Errorf("%w: empty parameter in %q", ErrRoute, pattern)
			}
			segs = append(segs, segment{param: name})
		case p == "":
			return nil, fmt.Errorf("%w: empty segment in %q", ErrRoute, pattern)
		default:
			segs = append(segs, segment{literal: p})
		}
	}
	return segs, nil
}

// match walks the path against the route's segments in place — no
// strings.Split. Parameter values are collected in a small stack buffer
// and the Params map is built only after the whole route matched
// (exactly sized; static routes get nil, which reads as empty) — a
// near-miss route that binds a parameter before failing on a later
// segment costs zero allocations.
func match(rte *route, path string) (Params, bool) {
	rest := strings.Trim(path, "/")
	hasParts := rest != ""
	vals := make([]string, 0, 8) // stays on the stack for realistic patterns
	wildVal, matchedWild := "", false
	for si := range rte.segments {
		s := &rte.segments[si]
		if s.wild {
			if hasParts {
				wildVal = rest
			}
			matchedWild, hasParts = true, false
			break
		}
		if !hasParts {
			return nil, false
		}
		var part string
		if k := strings.IndexByte(rest, '/'); k >= 0 {
			part, rest = rest[:k], rest[k+1:]
		} else {
			part, rest = rest, ""
			hasParts = false
		}
		switch {
		case s.param != "":
			vals = append(vals, part)
		case s.literal != part:
			return nil, false
		}
	}
	if hasParts {
		return nil, false
	}
	if len(vals) == 0 && !matchedWild {
		return nil, true
	}
	size := rte.nparams
	if matchedWild {
		size++
	}
	p := make(Params, size)
	i := 0
	for si := range rte.segments {
		s := &rte.segments[si]
		if s.wild {
			break
		}
		if s.param != "" {
			p[s.param] = vals[i]
			i++
		}
	}
	if matchedWild {
		p["*"] = wildVal
	}
	return p, true
}

// ServeHTTP implements http.Handler. The hot loop considers only routes
// whose method matches, so a path shared across methods (GET and POST
// invoke, say) never pays for a Params map it will not dispatch with;
// the Allow set for 405 responses is recomputed on the cold path.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	for i := range rt.routes {
		rte := &rt.routes[i]
		if rte.method != r.Method {
			continue
		}
		params, ok := match(rte, r.URL.Path)
		if !ok {
			continue
		}
		rte.wrapped(w, r, params)
		return
	}
	var allowed []string
	for i := range rt.routes {
		rte := &rt.routes[i]
		if rte.method == r.Method {
			continue
		}
		if _, ok := match(rte, r.URL.Path); ok {
			allowed = append(allowed, rte.method)
		}
	}
	if len(allowed) > 0 {
		if rt.MethodNotAllowed != nil {
			rt.MethodNotAllowed(w, r, allowed)
			return
		}
		sort.Strings(allowed)
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if rt.NotFound != nil {
		rt.NotFound(w, r)
		return
	}
	http.NotFound(w, r)
}

// Routes lists registered "METHOD pattern" strings, sorted.
func (rt *Router) Routes() []string {
	out := make([]string, len(rt.routes))
	for i, r := range rt.routes {
		out[i] = r.method + " " + r.pattern
	}
	sort.Strings(out)
	return out
}

// Negotiate picks "json" or "xml" from the request's Accept header,
// defaulting to JSON. An explicit format query parameter wins. The scan
// is allocation-free: the raw query is searched for the format pair
// directly (a full url.Values parse per request was the single hottest
// call on the cached-invoke path), and the Accept header is walked in
// place.
func Negotiate(r *http.Request) string {
	if raw := r.URL.RawQuery; raw != "" {
		if f := queryFormat(raw); f == "xml" || f == "json" {
			return f
		}
	}
	accept := r.Header.Get("Accept")
	// First acceptable of our two supported types wins.
	for accept != "" {
		var part string
		if i := strings.IndexByte(accept, ','); i >= 0 {
			part, accept = accept[:i], accept[i+1:]
		} else {
			part, accept = accept, ""
		}
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = part[:i]
		}
		switch strings.TrimSpace(part) {
		case "application/xml", "text/xml":
			return "xml"
		case "application/json":
			return "json"
		}
	}
	return "json"
}

// queryFormat extracts the first format parameter value from a raw query
// string, mirroring url.ParseQuery's tolerant handling (pairs containing
// semicolons are skipped; escaped values are unescaped only when needed).
func queryFormat(raw string) string {
	for raw != "" {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		v, ok := strings.CutPrefix(pair, "format=")
		if !ok {
			continue
		}
		if strings.ContainsAny(v, "%+") {
			u, err := url.QueryUnescape(v)
			if err != nil {
				continue
			}
			v = u
		}
		return v
	}
	return ""
}

// WriteResponse encodes v in the negotiated format with the given status.
func WriteResponse(w http.ResponseWriter, r *http.Request, status int, v any) {
	switch Negotiate(r) {
	case "xml":
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		w.WriteHeader(status)
		enc := xml.NewEncoder(w)
		enc.Indent("", "  ")
		if err := enc.Encode(v); err != nil {
			// Headers are gone; nothing more we can do but log-free
			// best effort.
			fmt.Fprintf(w, "<!-- encoding error: %v -->", err)
		}
	default:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//soclint:ignore errdiscard status and headers are already committed and JSON has no comment syntax to carry the failure
		_ = enc.Encode(v)
	}
}

// Problem is the error document returned by WriteError.
type Problem struct {
	XMLName xml.Name `json:"-" xml:"problem"`
	Status  int      `json:"status" xml:"status"`
	Title   string   `json:"title" xml:"title"`
	Detail  string   `json:"detail,omitempty" xml:"detail,omitempty"`
}

// WriteError writes a negotiated error document.
func WriteError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	WriteResponse(w, r, status, Problem{
		Status: status,
		Title:  http.StatusText(status),
		Detail: fmt.Sprintf(format, args...),
	})
}

// ReadJSON decodes the request body as JSON into v, limited to maxBytes
// (0 means 1 MiB).
func ReadJSON(r *http.Request, v any, maxBytes int64) error {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("rest: decoding body: %w", err)
	}
	return nil
}
