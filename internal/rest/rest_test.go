package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"encoding/xml"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doReq(t *testing.T, h http.Handler, method, path string, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRouterLiteralAndParams(t *testing.T) {
	rt := NewRouter()
	if err := rt.GET("/services", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.Write([]byte("list"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.GET("/services/{name}/ops/{op}", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.Write([]byte(p["name"] + ":" + p["op"]))
	}); err != nil {
		t.Fatal(err)
	}
	if got := doReq(t, rt, "GET", "/services", "", nil).Body.String(); got != "list" {
		t.Errorf("literal route = %q", got)
	}
	if got := doReq(t, rt, "GET", "/services/cart/ops/add", "", nil).Body.String(); got != "cart:add" {
		t.Errorf("param route = %q", got)
	}
}

func TestRouterWildcard(t *testing.T) {
	rt := NewRouter()
	_ = rt.GET("/files/*", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.Write([]byte(p["*"]))
	})
	if got := doReq(t, rt, "GET", "/files/a/b/c.txt", "", nil).Body.String(); got != "a/b/c.txt" {
		t.Errorf("wildcard = %q", got)
	}
	if got := doReq(t, rt, "GET", "/files/", "", nil).Body.String(); got != "" {
		t.Errorf("empty wildcard = %q", got)
	}
}

func TestRouterRoot(t *testing.T) {
	rt := NewRouter()
	_ = rt.GET("/", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.Write([]byte("home"))
	})
	if got := doReq(t, rt, "GET", "/", "", nil).Body.String(); got != "home" {
		t.Errorf("root = %q", got)
	}
	if code := doReq(t, rt, "GET", "/other", "", nil).Code; code != http.StatusNotFound {
		t.Errorf("unmatched = %d", code)
	}
}

func TestRouterNotFoundAndMethodNotAllowed(t *testing.T) {
	rt := NewRouter()
	_ = rt.GET("/a", func(w http.ResponseWriter, r *http.Request, p Params) {})
	_ = rt.PUT("/a", func(w http.ResponseWriter, r *http.Request, p Params) {})
	w := doReq(t, rt, "POST", "/a", "", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("code = %d", w.Code)
	}
	allow := w.Header().Get("Allow")
	if !strings.Contains(allow, "GET") || !strings.Contains(allow, "PUT") {
		t.Errorf("Allow = %q", allow)
	}
	if doReq(t, rt, "GET", "/missing", "", nil).Code != http.StatusNotFound {
		t.Error("not-found not returned")
	}
	called := false
	rt.NotFound = func(w http.ResponseWriter, r *http.Request) { called = true; w.WriteHeader(418) }
	if doReq(t, rt, "GET", "/missing", "", nil).Code != 418 || !called {
		t.Error("custom NotFound not used")
	}
}

func TestRouterRegistrationErrors(t *testing.T) {
	rt := NewRouter()
	h := func(w http.ResponseWriter, r *http.Request, p Params) {}
	if err := rt.GET("/a", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := rt.GET("no-slash", h); err == nil {
		t.Error("pattern without leading slash accepted")
	}
	if err := rt.GET("/a/*/b", h); err == nil {
		t.Error("mid-pattern wildcard accepted")
	}
	if err := rt.GET("/a/{}/b", h); err == nil {
		t.Error("empty parameter accepted")
	}
	if err := rt.GET("/a//b", h); err == nil {
		t.Error("empty segment accepted")
	}
	if err := rt.GET("/dup", h); err != nil {
		t.Fatal(err)
	}
	if err := rt.GET("/dup", h); err == nil {
		t.Error("duplicate route accepted")
	}
	if err := rt.Handle("", "/x", h); err == nil {
		t.Error("empty method accepted")
	}
}

func TestRoutesListing(t *testing.T) {
	rt := NewRouter()
	h := func(w http.ResponseWriter, r *http.Request, p Params) {}
	_ = rt.GET("/b", h)
	_ = rt.POST("/a", h)
	got := rt.Routes()
	if len(got) != 2 || got[0] != "GET /b" || got[1] != "POST /a" {
		t.Errorf("Routes = %v", got)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept, query, want string
	}{
		{"", "", "json"},
		{"application/json", "", "json"},
		{"application/xml", "", "xml"},
		{"text/xml", "", "xml"},
		{"text/html, application/xml;q=0.9", "", "xml"},
		{"application/xml", "format=json", "json"},
		{"application/json", "format=xml", "xml"},
		{"*/*", "", "json"},
	}
	for _, c := range cases {
		url := "/x"
		if c.query != "" {
			url += "?" + c.query
		}
		r := httptest.NewRequest("GET", url, nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := Negotiate(r); got != c.want {
			t.Errorf("Negotiate(accept=%q query=%q) = %q, want %q", c.accept, c.query, got, c.want)
		}
	}
}

type payload struct {
	XMLName xml.Name `json:"-" xml:"payload"`
	Name    string   `json:"name" xml:"name"`
	N       int      `json:"n" xml:"n"`
}

func TestWriteResponseJSONAndXML(t *testing.T) {
	rt := NewRouter()
	_ = rt.GET("/p", func(w http.ResponseWriter, r *http.Request, p Params) {
		WriteResponse(w, r, http.StatusCreated, payload{Name: "x", N: 3})
	})
	w := doReq(t, rt, "GET", "/p", "", nil)
	if w.Code != http.StatusCreated || !strings.Contains(w.Header().Get("Content-Type"), "json") {
		t.Errorf("json resp: %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	var pj payload
	if err := json.Unmarshal(w.Body.Bytes(), &pj); err != nil || pj.Name != "x" || pj.N != 3 {
		t.Errorf("json body: %v %+v", err, pj)
	}
	w = doReq(t, rt, "GET", "/p", "", map[string]string{"Accept": "application/xml"})
	if !strings.Contains(w.Header().Get("Content-Type"), "xml") {
		t.Errorf("xml content type = %q", w.Header().Get("Content-Type"))
	}
	var px payload
	if err := xml.Unmarshal(w.Body.Bytes(), &px); err != nil || px.Name != "x" || px.N != 3 {
		t.Errorf("xml body: %v %+v (%s)", err, px, w.Body.String())
	}
}

func TestWriteError(t *testing.T) {
	rt := NewRouter()
	_ = rt.GET("/e", func(w http.ResponseWriter, r *http.Request, p Params) {
		WriteError(w, r, http.StatusBadRequest, "bad %s", "thing")
	})
	w := doReq(t, rt, "GET", "/e", "", nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("code = %d", w.Code)
	}
	var prob Problem
	if err := json.Unmarshal(w.Body.Bytes(), &prob); err != nil {
		t.Fatal(err)
	}
	if prob.Status != 400 || prob.Detail != "bad thing" {
		t.Errorf("problem = %+v", prob)
	}
}

func TestReadJSON(t *testing.T) {
	r := httptest.NewRequest("POST", "/x", strings.NewReader(`{"name":"a","n":1}`))
	var p payload
	if err := ReadJSON(r, &p, 0); err != nil || p.Name != "a" {
		t.Errorf("ReadJSON: %v %+v", err, p)
	}
	r = httptest.NewRequest("POST", "/x", strings.NewReader(`{"unknown":true}`))
	if err := ReadJSON(r, &p, 0); err == nil {
		t.Error("unknown field accepted")
	}
	r = httptest.NewRequest("POST", "/x", strings.NewReader(strings.Repeat("x", 100)))
	if err := ReadJSON(r, &p, 10); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestRecoveryMiddleware(t *testing.T) {
	rt := NewRouter()
	rt.Use(Recovery())
	_ = rt.GET("/boom", func(w http.ResponseWriter, r *http.Request, p Params) {
		panic("exploded")
	})
	w := doReq(t, rt, "GET", "/boom", "", nil)
	if w.Code != http.StatusInternalServerError {
		t.Errorf("code = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "exploded") {
		t.Errorf("body = %q", w.Body.String())
	}
}

func TestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	rt := NewRouter()
	rt.Use(Logging(logger))
	_ = rt.GET("/ok", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.WriteHeader(http.StatusAccepted)
	})
	doReq(t, rt, "GET", "/ok", "", nil)
	line := buf.String()
	if !strings.Contains(line, "GET /ok") || !strings.Contains(line, "202") {
		t.Errorf("log line = %q", line)
	}
}

func TestBearerAuth(t *testing.T) {
	rt := NewRouter()
	rt.Use(BearerAuth(func(tok string) (string, bool) {
		if tok == "secret" {
			return "alice", true
		}
		return "", false
	}))
	_ = rt.GET("/me", func(w http.ResponseWriter, r *http.Request, p Params) {
		who, _ := Principal(r)
		w.Write([]byte(who))
	})
	if code := doReq(t, rt, "GET", "/me", "", nil).Code; code != http.StatusUnauthorized {
		t.Errorf("no token: %d", code)
	}
	if code := doReq(t, rt, "GET", "/me", "", map[string]string{"Authorization": "Bearer wrong"}).Code; code != http.StatusUnauthorized {
		t.Errorf("bad token: %d", code)
	}
	w := doReq(t, rt, "GET", "/me", "", map[string]string{"Authorization": "Bearer secret"})
	if w.Code != http.StatusOK || w.Body.String() != "alice" {
		t.Errorf("good token: %d %q", w.Code, w.Body.String())
	}
}

func TestRateLimit(t *testing.T) {
	rt := NewRouter()
	rt.Use(RateLimit(2, 0.0001)) // effectively no refill during the test
	_ = rt.GET("/r", func(w http.ResponseWriter, r *http.Request, p Params) {})
	if doReq(t, rt, "GET", "/r", "", nil).Code != http.StatusOK {
		t.Error("first request limited")
	}
	if doReq(t, rt, "GET", "/r", "", nil).Code != http.StatusOK {
		t.Error("second request limited")
	}
	if doReq(t, rt, "GET", "/r", "", nil).Code != http.StatusTooManyRequests {
		t.Error("third request not limited")
	}
}

func TestTimeoutMiddleware(t *testing.T) {
	rt := NewRouter()
	rt.Use(Timeout(20 * time.Millisecond))
	_ = rt.GET("/slow", func(w http.ResponseWriter, r *http.Request, p Params) {
		select {
		case <-r.Context().Done():
			return // honor cancellation without writing
		case <-time.After(2 * time.Second):
			w.Write([]byte("too late"))
		}
	})
	_ = rt.GET("/fast", func(w http.ResponseWriter, r *http.Request, p Params) {
		w.Write([]byte("quick"))
	})
	w := doReq(t, rt, "GET", "/slow", "", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("slow code = %d", w.Code)
	}
	w = doReq(t, rt, "GET", "/fast", "", nil)
	if w.Code != http.StatusOK || w.Body.String() != "quick" {
		t.Errorf("fast = %d %q", w.Code, w.Body.String())
	}
}

func TestRequestID(t *testing.T) {
	rt := NewRouter()
	rt.Use(RequestID())
	_ = rt.GET("/x", func(w http.ResponseWriter, r *http.Request, p Params) {})
	w1 := doReq(t, rt, "GET", "/x", "", nil)
	w2 := doReq(t, rt, "GET", "/x", "", nil)
	id1, id2 := w1.Header().Get("X-Request-ID"), w2.Header().Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("ids = %q, %q", id1, id2)
	}
}

func TestMiddlewareOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next HandlerFunc) HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request, p Params) {
				order = append(order, name)
				next(w, r, p)
			}
		}
	}
	rt := NewRouter()
	rt.Use(mk("outer"), mk("inner"))
	_ = rt.GET("/x", func(w http.ResponseWriter, r *http.Request, p Params) {
		order = append(order, "handler")
	})
	doReq(t, rt, "GET", "/x", "", nil)
	if strings.Join(order, ",") != "outer,inner,handler" {
		t.Errorf("order = %v", order)
	}
}

func TestPrincipalAbsent(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	if _, ok := Principal(r.WithContext(context.Background())); ok {
		t.Error("principal present on bare request")
	}
}
