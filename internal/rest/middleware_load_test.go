package rest

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRateLimitConcurrentLoad hammers the token bucket from many
// goroutines and checks the two properties that matter under load: no
// lost updates (admitted + rejected == issued) and the admission count
// stays within the bucket's arithmetic bounds.
func TestRateLimitConcurrentLoad(t *testing.T) {
	const (
		burst   = 25
		rate    = 50.0 // tokens per second
		workers = 16
		perW    = 50
	)
	var admitted, rejected atomic.Int64
	h := RateLimit(burst, rate)(func(w http.ResponseWriter, r *http.Request, p Params) {
		admitted.Add(1)
		w.WriteHeader(http.StatusOK)
	})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/x", nil)
				h(rec, req, nil)
				switch rec.Code {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					t.Errorf("unexpected status %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := admitted.Load() + rejected.Load()
	if total != workers*perW {
		t.Fatalf("lost requests under load: %d admitted + %d rejected != %d issued",
			admitted.Load(), rejected.Load(), workers*perW)
	}
	// Upper bound: the initial burst plus whatever refilled while the
	// load ran (generous +burst slack for timing jitter).
	maxAdmit := int64(burst) + int64(elapsed.Seconds()*rate) + burst
	if admitted.Load() > maxAdmit {
		t.Errorf("admitted %d calls, bucket arithmetic allows at most ~%d", admitted.Load(), maxAdmit)
	}
	if admitted.Load() < burst {
		t.Errorf("admitted %d calls, the %d-token burst alone guarantees more", admitted.Load(), burst)
	}
	if rejected.Load() == 0 {
		t.Error("no rejections: load did not exhaust the bucket, test proves nothing")
	}
}

// TestTimeoutConcurrentLoad runs a mix of fast handlers and handlers that
// outlive the deadline, concurrently, and checks every slow request gets
// a 503 while every fast one succeeds — with no write races between the
// handler goroutine and the timeout writer (run under -race).
func TestTimeoutConcurrentLoad(t *testing.T) {
	const workers = 24
	mw := Timeout(30 * time.Millisecond)
	var fast, slow atomic.Int64
	h := mw(func(w http.ResponseWriter, r *http.Request, p Params) {
		if r.URL.Query().Get("slow") == "1" {
			select {
			case <-r.Context().Done():
				return // honor cancellation, never write
			case <-time.After(10 * time.Second):
			}
		}
		WriteResponse(w, r, http.StatusOK, map[string]string{"ok": "1"})
	})

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := "/x"
			if i%2 == 1 {
				url = "/x?slow=1"
			}
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, url, nil)
			h(rec, req, nil)
			switch {
			case i%2 == 0 && rec.Code == http.StatusOK:
				fast.Add(1)
			case i%2 == 1 && rec.Code == http.StatusServiceUnavailable:
				slow.Add(1)
			default:
				t.Errorf("request %d (%s): status %d", i, url, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	if fast.Load() != workers/2 || slow.Load() != workers/2 {
		t.Errorf("fast=%d slow=%d, want %d each", fast.Load(), slow.Load(), workers/2)
	}
}

// TestTimeoutHandlerWinsRace pins the ordering contract: a handler that
// writes before the deadline is never clobbered by the 503 path even
// when the deadline fires immediately afterwards.
func TestTimeoutHandlerWinsRace(t *testing.T) {
	mw := Timeout(20 * time.Millisecond)
	h := mw(func(w http.ResponseWriter, r *http.Request, p Params) {
		WriteResponse(w, r, http.StatusOK, map[string]string{"ok": "1"})
		// Keep running past the deadline after writing.
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodGet, "/x", nil)
			h(rec, req, nil)
			if rec.Code != http.StatusOK {
				t.Errorf("handler wrote 200 first but client saw %d", rec.Code)
			}
		}()
	}
	wg.Wait()
}

// TestRateLimitRefillUnderLoad verifies tokens refill while concurrent
// traffic is being rejected: drain the bucket, wait one refill period,
// and observe new admissions.
func TestRateLimitRefillUnderLoad(t *testing.T) {
	h := RateLimit(2, 100)(func(w http.ResponseWriter, r *http.Request, p Params) {
		w.WriteHeader(http.StatusOK)
	})
	issue := func() int {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, "/x", nil), nil)
		return rec.Code
	}
	for i := 0; i < 2; i++ {
		if got := issue(); got != http.StatusOK {
			t.Fatalf("drain call %d: %d", i, got)
		}
	}
	if got := issue(); got != http.StatusTooManyRequests {
		t.Fatalf("bucket not exhausted: %d", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if issue() == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
