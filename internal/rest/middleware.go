package rest

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"soc/internal/telemetry"
)

// Recovery converts handler panics into 500 responses instead of crashing
// the server — the first dependability mechanism unit 6 teaches.
// http.ErrAbortHandler is re-panicked so deliberate connection aborts
// (e.g. fault injection dropping a request) keep their net/http meaning.
func Recovery() Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
						panic(rec)
					}
					WriteError(w, r, http.StatusInternalServerError, "internal error: %v", rec)
				}
			}()
			next(w, r, p)
		}
	}
}

// Logging writes one line per request to logger (nil uses log.Default()).
func Logging(logger *log.Logger) Middleware {
	if logger == nil {
		logger = log.Default()
	}
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			next(sw, r, p)
			logger.Printf("%s %s -> %d (%v)", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 || !s.wrote {
		s.status = code
	}
	s.wrote = true
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if !s.wrote {
		s.wrote = true
		if s.status == 0 {
			s.status = http.StatusOK
		}
	}
	return s.ResponseWriter.Write(b)
}

// Authenticator validates a bearer token and returns the principal name.
type Authenticator func(token string) (principal string, ok bool)

type principalKey struct{}

// Principal returns the authenticated principal stored by BearerAuth.
func Principal(r *http.Request) (string, bool) {
	v, ok := r.Context().Value(principalKey{}).(string)
	return v, ok
}

// BearerAuth rejects requests without a valid "Authorization: Bearer ..."
// header and stores the principal in the request context.
func BearerAuth(auth Authenticator) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			const prefix = "Bearer "
			h := r.Header.Get("Authorization")
			if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
				WriteError(w, r, http.StatusUnauthorized, "missing bearer token")
				return
			}
			principal, ok := auth(h[len(prefix):])
			if !ok {
				WriteError(w, r, http.StatusUnauthorized, "invalid token")
				return
			}
			ctx := context.WithValue(r.Context(), principalKey{}, principal)
			next(w, r.WithContext(ctx), p)
		}
	}
}

// RateLimit applies a global token bucket: capacity burst, refilled at
// perSecond tokens per second. Exhausted buckets yield 429.
func RateLimit(burst int, perSecond float64) Middleware {
	tb := &tokenBucket{tokens: float64(burst), capacity: float64(burst), rate: perSecond, last: time.Now()}
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			if !tb.allow() {
				WriteError(w, r, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
			next(w, r, p)
		}
	}
}

type tokenBucket struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	rate     float64
	last     time.Time
}

func (tb *tokenBucket) allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.capacity {
		tb.tokens = tb.capacity
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// Timeout cancels the request context after d; handlers that honor the
// context stop early, and the middleware writes 503 if the deadline
// elapsed before the handler finished writing.
func Timeout(d time.Duration) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			done := make(chan struct{})
			sw := &statusWriter{ResponseWriter: w, status: 0}
			go func() {
				defer close(done)
				defer func() {
					if rec := recover(); rec != nil {
						WriteError(sw, r, http.StatusInternalServerError, "internal error: %v", rec)
					}
				}()
				next(sw, r.WithContext(ctx), p)
			}()
			select {
			case <-done:
			case <-ctx.Done():
				<-done // wait for the handler to observe cancellation
				if !sw.wrote {
					WriteError(w, r, http.StatusServiceUnavailable, "request timed out after %v", d)
				}
			}
		}
	}
}

// RequestID stamps each request with a monotonically increasing id header
// (X-Request-ID) for tracing across composed services.
func RequestID() Middleware {
	var mu sync.Mutex
	var n uint64
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			mu.Lock()
			n++
			id := n
			mu.Unlock()
			w.Header().Set("X-Request-ID", fmt.Sprintf("req-%d", id))
			next(w, r, p)
		}
	}
}

// Tracing records a server span per request in t, joining the caller's
// trace when the request carries an X-Soc-Trace header. name derives the
// span name from the request; nil uses "METHOD /path". The traced context
// flows to the handler, so downstream client calls become child spans.
// A nil tracer makes this a no-op middleware.
func Tracing(t *telemetry.Tracer, name func(r *http.Request) string) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request, p Params) {
			if t == nil {
				next(w, r, p)
				return
			}
			spanName := r.Method + " " + r.URL.Path
			if name != nil {
				spanName = name(r)
			}
			remote, _ := telemetry.FromHTTPHeader(r.Header)
			sp, ctx := t.StartSpanRemote(r.Context(), telemetry.KindServer, spanName, remote)
			sp.Annotate("binding", "rest")
			sw := &statusWriter{ResponseWriter: w}
			next(sw, r.WithContext(ctx), p)
			if sp != nil && sw.status >= 400 {
				sp.Annotate("status", strconv.Itoa(sw.status))
			}
			sp.End()
		}
	}
}
