package wal

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// crashRecords is the generated-log size for the crash-point corpus. The
// default keeps `go test` fast; `make crash` raises it via the
// WAL_CRASH_RECORDS environment knob for a denser sweep.
func crashRecords(t *testing.T) int {
	t.Helper()
	n := 8
	if env := os.Getenv("WAL_CRASH_RECORDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("WAL_CRASH_RECORDS=%q: want a positive integer", env)
		}
		n = v
	}
	return n
}

// buildCrashCorpus appends n records into a single segment and returns
// the raw segment bytes, the segment name, and the byte offset where
// each record's frame ends (boundaries[0] is the header end).
func buildCrashCorpus(t *testing.T, n int) (raw []byte, segName string, boundaries []int) {
	t.Helper()
	fs := NewMemFS(42)
	l, _ := reopen(t, fs, Options{SegmentBytes: 1 << 30})
	boundaries = []int{headerLen}
	off := headerLen
	for i := 1; i <= n; i++ {
		payload := crashPayload(i)
		mustAppend(t, l, payload)
		off += frameHeader + len(payload)
		boundaries = append(boundaries, off)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	segName = names[0]
	raw, ok := fs.RawFile(segName)
	if !ok {
		t.Fatalf("segment %s missing", segName)
	}
	if len(raw) != off {
		t.Fatalf("segment is %d bytes, boundaries say %d", len(raw), off)
	}
	return raw, segName, boundaries
}

func crashPayload(i int) string {
	// Variable lengths so frame boundaries land on odd offsets.
	return fmt.Sprintf("record-%03d-%s", i, "xxxxx"[:i%5])
}

// durablePrefix returns how many whole records fit in the first cut
// bytes, and where the last of them ends.
func durablePrefix(boundaries []int, cut int) (records, end int) {
	records, end = 0, boundaries[0]
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= cut {
			records, end = i, boundaries[i]
		}
	}
	return records, end
}

// TestCrashPointCorpusTruncation is the property test the issue asks
// for: crash the log at EVERY byte offset (a torn write that persisted
// exactly that prefix), recover, and assert the durable prefix is intact
// and the salvage point is reported exactly.
func TestCrashPointCorpusTruncation(t *testing.T) {
	n := crashRecords(t)
	raw, segName, boundaries := buildCrashCorpus(t, n)
	for cut := 0; cut <= len(raw); cut++ {
		fs := NewMemFS(int64(cut))
		fs.WriteDurable(segName, raw[:cut])
		l, rec, err := Open(fs, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantRecords, end := durablePrefix(boundaries, cut)
		if cut < headerLen {
			// Not even a valid header: the segment is dropped wholesale.
			if len(rec.Records) != 0 {
				t.Fatalf("cut=%d: recovered %d records from headerless file", cut, len(rec.Records))
			}
			if cut > 0 && (!rec.Info.Salvaged || rec.Info.DroppedSegments != 1) {
				t.Fatalf("cut=%d: info %+v, want dropped segment", cut, rec.Info)
			}
			continue
		}
		if len(rec.Records) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), wantRecords)
		}
		for i, r := range rec.Records {
			want := crashPayload(i + 1)
			if r.Index != uint64(i+1) || string(r.Data) != want {
				t.Fatalf("cut=%d: record %d = (%d,%q), want (%d,%q)", cut, i, r.Index, r.Data, i+1, want)
			}
		}
		wantDropped := int64(cut - end)
		if rec.Info.DroppedBytes != wantDropped {
			t.Fatalf("cut=%d: DroppedBytes=%d, want %d", cut, rec.Info.DroppedBytes, wantDropped)
		}
		if (wantDropped > 0) != rec.Info.Salvaged {
			t.Fatalf("cut=%d: Salvaged=%t with %d dropped bytes", cut, rec.Info.Salvaged, wantDropped)
		}
		// The recovered log must stay writable: the salvaged tail may not
		// block new appends, and they must land after the durable prefix.
		idx, err := l.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut=%d: post-recovery append: %v", cut, err)
		}
		if idx != uint64(wantRecords)+1 {
			t.Fatalf("cut=%d: post-recovery index %d, want %d", cut, idx, wantRecords+1)
		}
	}
}

// TestCrashPointCorpusBitFlip flips each byte of the generated log in
// turn (at-rest corruption) and asserts recovery keeps exactly the
// records before the damaged frame and reports the salvage.
func TestCrashPointCorpusBitFlip(t *testing.T) {
	n := crashRecords(t)
	raw, segName, boundaries := buildCrashCorpus(t, n)
	for off := 0; off < len(raw); off++ {
		fs := NewMemFS(int64(off))
		fs.WriteDurable(segName, raw)
		if err := fs.FlipBit(segName, off); err != nil {
			t.Fatalf("off=%d: FlipBit: %v", off, err)
		}
		_, rec, err := Open(fs, Options{})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		// The flipped byte damages the frame containing it; every record
		// whose frame ends at or before that frame's start must survive.
		wantRecords, _ := durablePrefix(boundaries, off)
		if off < headerLen {
			wantRecords = 0
		}
		if len(rec.Records) != wantRecords {
			t.Fatalf("off=%d: recovered %d records, want %d", off, len(rec.Records), wantRecords)
		}
		for i, r := range rec.Records {
			want := crashPayload(i + 1)
			if string(r.Data) != want {
				t.Fatalf("off=%d: record %d = %q, want %q", off, i, r.Data, want)
			}
		}
		if !rec.Info.Salvaged {
			t.Fatalf("off=%d: corruption not reported: %+v", off, rec.Info)
		}
	}
}

// TestCrashRecoveryCycleDeterministic runs a write/crash/recover cycle
// twice from the same seed and asserts byte-identical disks and
// identical recovery reports — the property the simulation harness's
// hash-equality check leans on.
func TestCrashRecoveryCycleDeterministic(t *testing.T) {
	run := func(seed int64) string {
		fs := NewMemFS(seed)
		trace := ""
		l, rec, err := Open(fs, Options{SegmentBytes: 128})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for round := 0; round < 4; round++ {
			for i := 0; i < 6; i++ {
				data := fmt.Sprintf("r%d-i%d", round, i)
				if idx, err := l.Append([]byte(data)); err == nil {
					trace += fmt.Sprintf("ack %d %s\n", idx, data)
				}
			}
			if round == 1 {
				if err := l.Snapshot([]byte(fmt.Sprintf("snap-round-%d", round))); err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
			}
			// Leave an unsynced partial frame behind so the crash has a
			// torn tail for the seeded rng to tear.
			l.mu.Lock()
			if l.active != nil {
				frame := appendFrame(nil, []byte(fmt.Sprintf("unsynced-r%d", round)))
				if _, err := l.active.Write(frame[:len(frame)-3]); err != nil {
					l.mu.Unlock()
					t.Fatalf("raw write: %v", err)
				}
			}
			l.mu.Unlock()
			fs.Crash()
			l, rec, err = Open(fs, Options{SegmentBytes: 128})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			trace += "recover " + rec.Info.String() + "\n"
		}
		return trace
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run A\n%s--- run B\n%s", a, b)
	}
	if run(8) == a {
		t.Fatal("different seeds produced identical traces; rng not wired through")
	}
}
