package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the hot append path over the in-memory
// disk: frame encode + CRC + write + sync bookkeeping. Gated by
// cmd/benchdiff against BENCH_wal.json (allocs/op must not regress).
func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			fs := NewMemFS(1)
			l, _, err := Open(fs, Options{SegmentBytes: 1 << 30})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}

// BenchmarkWALRecover measures replaying a 512-record log with one
// snapshot — the restart path a replica pays after a crash.
func BenchmarkWALRecover(b *testing.B) {
	fs := NewMemFS(2)
	l, _, err := Open(fs, Options{SegmentBytes: 16 << 10})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	payload := make([]byte, 128)
	for i := 0; i < 256; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	if err := l.Snapshot(make([]byte, 4096)); err != nil {
		b.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 256; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatalf("Append: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(fs, Options{SegmentBytes: 16 << 10}); err != nil {
			b.Fatalf("Open: %v", err)
		}
	}
}
