package wal

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, l *Log, data string) uint64 {
	t.Helper()
	idx, err := l.Append([]byte(data))
	if err != nil {
		t.Fatalf("Append(%q): %v", data, err)
	}
	return idx
}

func reopen(t *testing.T, fs FS, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func recordStrings(rec *Recovery) []string {
	out := make([]string, 0, len(rec.Records))
	for _, r := range rec.Records {
		out = append(out, fmt.Sprintf("%d:%s", r.Index, r.Data))
	}
	return out
}

func TestAppendReopenRoundTrip(t *testing.T) {
	fs := NewMemFS(1)
	l, rec := reopen(t, fs, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Info.LastIndex != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec.Info)
	}
	for i := 1; i <= 5; i++ {
		if idx := mustAppend(t, l, fmt.Sprintf("rec-%d", i)); idx != uint64(i) {
			t.Fatalf("append %d got index %d", i, idx)
		}
	}
	if got := l.LastIndex(); got != 5 {
		t.Fatalf("LastIndex = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec = reopen(t, fs, Options{})
	want := []string{"1:rec-1", "2:rec-2", "3:rec-3", "4:rec-4", "5:rec-5"}
	got := recordStrings(rec)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.Info.Salvaged || rec.Info.LastIndex != 5 || rec.Info.Replayed != 5 {
		t.Fatalf("recovery info: %+v", rec.Info)
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS(2)
	l, _ := reopen(t, fs, Options{SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		mustAppend(t, l, fmt.Sprintf("payload-%02d", i))
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	segs := 0
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d (%v)", segs, names)
	}
	_, rec := reopen(t, fs, Options{SegmentBytes: 64})
	if rec.Info.Replayed != 20 || rec.Info.LastIndex != 20 || rec.Info.Salvaged {
		t.Fatalf("recovery across segments: %+v", rec.Info)
	}
}

func TestSnapshotAndCompaction(t *testing.T) {
	fs := NewMemFS(3)
	l, _ := reopen(t, fs, Options{SegmentBytes: 64})
	for i := 1; i <= 12; i++ {
		mustAppend(t, l, fmt.Sprintf("old-%02d", i))
	}
	if err := l.Snapshot([]byte("state@12")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 13; i <= 15; i++ {
		mustAppend(t, l, fmt.Sprintf("new-%02d", i))
	}

	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			t.Fatalf("temp file leaked: %v", names)
		}
	}

	_, rec := reopen(t, fs, Options{SegmentBytes: 64})
	if string(rec.Snapshot) != "state@12" {
		t.Fatalf("snapshot payload = %q", rec.Snapshot)
	}
	if rec.Info.SnapshotIndex != 12 || rec.Info.Replayed != 3 || rec.Info.LastIndex != 15 {
		t.Fatalf("recovery info: %+v", rec.Info)
	}
	got := recordStrings(rec)
	want := []string{"13:new-13", "14:new-14", "15:new-15"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}

func TestCompactionRetainsSnapshotGenerations(t *testing.T) {
	fs := NewMemFS(4)
	l, _ := reopen(t, fs, Options{KeepSnapshots: 2})
	for gen := 1; gen <= 4; gen++ {
		mustAppend(t, l, fmt.Sprintf("gen-%d", gen))
		if err := l.Snapshot([]byte(fmt.Sprintf("snap-%d", gen))); err != nil {
			t.Fatalf("Snapshot %d: %v", gen, err)
		}
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	snaps := 0
	for _, n := range names {
		if strings.HasPrefix(n, snapPrefix) {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("expected 2 retained snapshots, got %d (%v)", snaps, names)
	}
	// Corrupt the newest snapshot: recovery must fall back to the older
	// generation and replay the records past it.
	newest := ""
	for _, n := range names {
		if strings.HasPrefix(n, snapPrefix) {
			newest = n
		}
	}
	if err := fs.FlipBit(newest, headerLen+frameHeader+1); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	_, rec := reopen(t, fs, Options{KeepSnapshots: 2})
	if string(rec.Snapshot) != "snap-3" {
		t.Fatalf("fallback snapshot = %q, want snap-3", rec.Snapshot)
	}
	if rec.Info.BadSnapshots != 1 || !rec.Info.Salvaged {
		t.Fatalf("recovery info: %+v", rec.Info)
	}
	if got := recordStrings(rec); strings.Join(got, ",") != "4:gen-4" {
		t.Fatalf("replayed %v, want [4:gen-4]", got)
	}
}

func TestTornTailSalvage(t *testing.T) {
	fs := NewMemFS(5)
	l, _ := reopen(t, fs, Options{})
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, fmt.Sprintf("durable-%d", i))
	}
	// Hand-tear the segment: append half a frame directly.
	names, _ := fs.List()
	segName := names[0]
	raw, _ := fs.RawFile(segName)
	torn := append(append([]byte(nil), raw...), appendFrame(nil, []byte("torn-record"))[:7]...)
	fs.WriteDurable(segName, torn)

	_, rec := reopen(t, fs, Options{})
	if !rec.Info.Salvaged || rec.Info.DroppedBytes != 7 {
		t.Fatalf("expected 7 dropped bytes, got %+v", rec.Info)
	}
	if rec.Info.Replayed != 3 || rec.Info.LastIndex != 3 {
		t.Fatalf("durable prefix lost: %+v", rec.Info)
	}
}

func TestBitFlipCorruptionDropsTail(t *testing.T) {
	fs := NewMemFS(6)
	l, _ := reopen(t, fs, Options{})
	for i := 1; i <= 4; i++ {
		mustAppend(t, l, fmt.Sprintf("record-%d", i))
	}
	names, _ := fs.List()
	raw, _ := fs.RawFile(names[0])
	// Flip a payload bit inside record 3: records 1-2 must survive, the
	// corrupt record and everything after it must be dropped.
	frameLen := frameHeader + len("record-1")
	off := headerLen + 2*frameLen + frameHeader + 3
	if err := fs.FlipBit(names[0], off); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	_, rec := reopen(t, fs, Options{})
	if rec.Info.Replayed != 2 || !rec.Info.Salvaged {
		t.Fatalf("after bit flip: %+v", rec.Info)
	}
	wantDropped := int64(len(raw) - headerLen - 2*frameLen)
	if rec.Info.DroppedBytes != wantDropped {
		t.Fatalf("DroppedBytes = %d, want %d", rec.Info.DroppedBytes, wantDropped)
	}
}

func TestRecoveryStartsFreshSegment(t *testing.T) {
	fs := NewMemFS(7)
	l, _ := reopen(t, fs, Options{})
	mustAppend(t, l, "first")

	l2, _ := reopen(t, fs, Options{})
	if idx := mustAppend(t, l2, "second"); idx != 2 {
		t.Fatalf("post-recovery append index = %d, want 2", idx)
	}
	names, _ := fs.List()
	segs := 0
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			segs++
		}
	}
	if segs != 2 {
		t.Fatalf("recovery must append into a fresh segment: %v", names)
	}
	_, rec := reopen(t, fs, Options{})
	got := recordStrings(rec)
	if strings.Join(got, ",") != "1:first,2:second" {
		t.Fatalf("recovered %v", got)
	}
}

func TestFailedWriteRollsBack(t *testing.T) {
	fs := NewMemFS(8)
	l, _ := reopen(t, fs, Options{})
	mustAppend(t, l, "keep")
	ffs := &flakyFS{FS: fs, failWrites: 1}
	l2 := &Log{fs: ffs, opts: Options{}.withDefaults()}
	l2.next = l.LastIndex() + 1
	if _, err := l2.Append([]byte("lost")); err == nil {
		t.Fatal("expected write failure")
	}
	// The failed frame was rolled back; the next append must succeed and
	// reuse the index.
	idx, err := l2.Append([]byte("retry"))
	if err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if idx != 2 {
		t.Fatalf("retry index = %d, want 2", idx)
	}
	_, rec := reopen(t, fs, Options{})
	got := recordStrings(rec)
	if strings.Join(got, ",") != "1:keep,2:retry" {
		t.Fatalf("recovered %v", got)
	}
}

func TestCrashBeforeSyncLosesNothingAcked(t *testing.T) {
	fs := NewMemFS(9)
	l, _ := reopen(t, fs, Options{})
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, fmt.Sprintf("acked-%d", i))
	}
	// Write a frame WITHOUT syncing by reaching past the API: simulate a
	// process that died between write and fsync.
	l.mu.Lock()
	frame := appendFrame(nil, []byte("unsynced"))
	if _, err := l.active.Write(frame); err != nil {
		l.mu.Unlock()
		t.Fatalf("raw write: %v", err)
	}
	l.mu.Unlock()

	fs.Crash()
	_, rec := reopen(t, fs, Options{})
	// The unsynced frame may or may not survive the torn write — both are
	// legal. The acked records must.
	if rec.Info.Replayed < 3 {
		t.Fatalf("acked records lost after crash: %+v", rec.Info)
	}
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("acked-%d", i+1)
		if got := string(rec.Records[i].Data); got != want {
			t.Fatalf("record %d = %q, want %q", rec.Records[i].Index, got, want)
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	fs := NewMemFS(10)
	l, _ := reopen(t, fs, Options{})
	if _, err := l.Append(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if err := l.Snapshot(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("expected ErrTooLarge for snapshot")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/data.xml"
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("contents = %q, want v2", got)
	}
}

// flakyFS wraps an FS and fails the first failWrites writes.
type flakyFS struct {
	FS
	failWrites int
}

func (f *flakyFS) Create(name string) (File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

type flakyFile struct {
	File
	fs *flakyFS
}

func (f *flakyFile) Write(p []byte) (int, error) {
	// Let the segment header through; fail record frames.
	if string(p) != segMagic && f.fs.failWrites > 0 {
		f.fs.failWrites--
		return 0, fmt.Errorf("flaky: injected write error")
	}
	return f.File.Write(p)
}
