package wal

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the write side of one log or snapshot file. The engine's
// durability contract leans on exactly three operations beyond Write:
// Sync (fsync — everything written so far survives a crash), Truncate
// (roll a partially written frame back) and Close.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	// Truncate cuts the file back to size bytes.
	Truncate(size int64) error
	// Close releases the handle. It does NOT imply Sync.
	Close() error
}

// FS is the flat directory a Log lives in. Implementations: OSFS (a real
// directory) and MemFS (deterministic in-memory disk with simulated
// crashes). Names never contain path separators.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full current contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// List returns the sorted file names present.
	List() ([]string, error)
	// SyncDir makes the directory's name set (creates, renames, removes)
	// durable — the fsync-the-parent step of the atomic-rename idiom.
	SyncDir() error
}

// OSFS is an FS over a real directory.
type OSFS struct {
	dir string
}

// NewOSFS returns an FS rooted at dir, creating it if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	return &OSFS{dir: dir}, nil
}

// Dir returns the root directory.
func (o *OSFS) Dir() string { return o.dir }

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(o.dir, name))
}

// ReadFile implements FS.
func (o *OSFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(o.dir, name))
}

// Rename implements FS. Content durability is the caller's job: the
// engine always Syncs file bytes before renaming and SyncDirs after.
func (o *OSFS) Rename(oldname, newname string) error {
	//soclint:ignore fsyncdiscipline thin FS adapter: the Log syncs file contents before any rename and fsyncs the directory afterwards
	return os.Rename(filepath.Join(o.dir, oldname), filepath.Join(o.dir, newname))
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	return os.Remove(filepath.Join(o.dir, name))
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(o.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS by fsyncing the directory fd.
func (o *OSFS) SyncDir() error {
	d, err := os.Open(o.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes data to path so a crash at any instant leaves
// either the old contents or the new, never a truncated mix: write to a
// temp file in the same directory, fsync it, rename over path, fsync the
// directory. It is the sanctioned whole-file write of every durable path
// in this module (the fsyncdiscipline analyzer forbids bare os.WriteFile
// there).
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: temp file for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		//soclint:ignore errdiscard best-effort temp-file cleanup; the original error is what matters
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("wal: closing %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		cleanup()
		return fmt.Errorf("wal: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("wal: replacing %s: %w", path, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir of %s: %w", path, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir of %s: %w", path, err)
	}
	return nil
}
