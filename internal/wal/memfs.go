package wal

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sort"
	"sync"
)

// MemFS is a deterministic in-memory FS that models the two ways a real
// disk betrays a process that crashes:
//
//   - contents: each file tracks its durable prefix (everything up to the
//     last Sync). A crash keeps the durable prefix plus a seeded-random
//     prefix of the unsynced tail — the torn write — and may flip one bit
//     inside that torn region (a partially persisted sector).
//   - namespace: creates, renames and removes are pending until SyncDir.
//     A crash rolls the name set back to the last SyncDir.
//
// Everything random is drawn from one seeded generator, so a
// single-threaded caller replays the exact same disk from the same seed —
// which is what lets the simulation harness hash crash-recovery runs.
type MemFS struct {
	mu  sync.Mutex
	rng *rand.Rand
	cur map[string]*memFile // live namespace
	dur map[string]*memFile // namespace as of the last SyncDir
}

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// NewMemFS returns an empty deterministic disk.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		rng: rand.New(rand.NewSource(seed)),
		cur: map[string]*memFile{},
		dur: map[string]*memFile{},
	}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.cur[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.cur[newname] = f
	delete(m.cur, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cur[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.cur, name)
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cur))
	for name := range m.cur {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SyncDir implements FS: the current name set becomes durable.
func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dur = make(map[string]*memFile, len(m.cur))
	for name, f := range m.cur {
		m.dur[name] = f
	}
	return nil
}

// Crash simulates a power cut: the namespace rolls back to the last
// SyncDir, and every surviving file keeps its durable prefix plus a
// seeded-random prefix of whatever was written but not yet synced (the
// torn tail), with a 50% chance of one flipped bit inside the torn
// region. After Crash the disk state IS the durable state.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = make(map[string]*memFile, len(m.dur))
	for name, f := range m.dur {
		m.cur[name] = f
	}
	// Deterministic iteration order: sort the names before drawing from
	// the rng, or two runs of the same seed would tear different tails.
	names := make([]string, 0, len(m.cur))
	for name := range m.cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.cur[name]
		torn := len(f.data) - f.synced
		if torn <= 0 {
			f.data = f.data[:f.synced]
			f.synced = len(f.data)
			continue
		}
		keep := m.rng.Intn(torn + 1)
		f.data = f.data[:f.synced+keep]
		if keep > 0 && m.rng.Intn(2) == 0 {
			at := f.synced + m.rng.Intn(keep)
			f.data[at] ^= byte(1 << uint(m.rng.Intn(8)))
		}
		f.synced = len(f.data)
	}
}

// RawFile returns the current bytes of name, for tests and corruption
// injection.
func (m *MemFS) RawFile(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteDurable installs name with data as fully synced content in a
// fully synced namespace — the state a file reaches after write + fsync +
// dir fsync. Tests use it to lay out on-disk scenarios byte-for-byte.
func (m *MemFS) WriteDurable(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), synced: len(data)}
	m.cur[name] = f
	m.dur = make(map[string]*memFile, len(m.cur))
	for n, fl := range m.cur {
		m.dur[n] = fl
	}
}

// FlipBit flips one bit of the stored byte at off in name — at-rest
// corruption, durable state included.
func (m *MemFS) FlipBit(name string, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.cur[name]
	if !ok {
		return &fs.PathError{Op: "flipbit", Path: name, Err: fs.ErrNotExist}
	}
	if off < 0 || off >= len(f.data) {
		return fmt.Errorf("wal: flipbit %s: offset %d out of %d bytes", name, off, len(f.data))
	}
	f.data[off] ^= 0x01
	return nil
}

type memHandle struct {
	fs *MemFS
	f  *memFile
}

// Write implements File: appends at the current end of the file.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync implements File.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

// Truncate implements File.
func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("wal: truncate to %d of %d bytes", size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }
