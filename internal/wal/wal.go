// Package wal is the crash-safe storage engine of the repository: an
// append-only, checksummed, length-prefixed log with strict fsync
// discipline, segment rotation, snapshot + compaction, and a recovery
// path that replays the newest intact snapshot plus the log suffix —
// salvaging up to the last valid record on a torn or corrupted tail
// instead of failing the whole load. The service registry persists on it
// (publish/unpublish/lease-renew as records, Save/Load as snapshots);
// xmlstore and session are the next tenants the ROADMAP names.
//
// Durability contract: when Append returns nil, the record is on disk
// (frame written and fsynced into a directory-fsynced segment file), so
// an acknowledged write survives any crash — the acked ⇒ durable
// invariant the simulation harness checks across kill/restart schedules.
//
// On-disk layout (all integers little-endian):
//
//	wal-<first-index-hex>.log   8-byte magic "SOCWAL01", then frames
//	snap-<last-index-hex>.snap  8-byte magic "SOCSNAP1", then one frame
//	frame                       [len u32][crc32(payload) u32][payload]
//
// The engine never appends to a pre-existing segment: recovery always
// starts a fresh one, so a salvaged torn tail can never be extended into
// a record boundary confusion. Within a segment the writer never
// continues past a failed write either (it rolls the partial frame back,
// or abandons the segment when even that fails), which is what makes
// "skip the rest of a damaged segment, keep replaying the next" a sound
// recovery rule rather than a data-loss gamble.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
)

const (
	segMagic    = "SOCWAL01"
	snapMagic   = "SOCSNAP1"
	segPrefix   = "wal-"
	segSuffix   = ".log"
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
	tmpSuffix   = ".tmp"
	headerLen   = 8
	frameHeader = 8 // u32 length + u32 crc
	// maxRecord caps a frame's declared payload length so a corrupted
	// length field cannot trigger a giant allocation during recovery.
	maxRecord = 1 << 24
)

// ErrTooLarge reports an Append payload over the frame size cap.
var ErrTooLarge = errors.New("wal: record exceeds max frame size")

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the next Append starts a new segment (default 1 MiB).
	SegmentBytes int64
	// KeepSnapshots is how many snapshot generations to retain at
	// compaction (default 2: the newest plus one fallback).
	KeepSnapshots int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	// Index is the record's monotonically increasing position, starting
	// at 1.
	Index uint64
	// Data is the payload exactly as appended.
	Data []byte
}

// RecoveryInfo reports what recovery found, including every salvage
// decision — callers log it so crash recovery stays observable (and, in
// the simulation harness, part of the determinism hash).
type RecoveryInfo struct {
	// SnapshotIndex is the index the restored snapshot covers (0: none).
	SnapshotIndex uint64
	// BadSnapshots counts snapshot files that failed validation and were
	// skipped in favor of an older generation.
	BadSnapshots int
	// Replayed is how many records were replayed after the snapshot.
	Replayed int
	// LastIndex is the highest index recovered; new appends continue
	// at LastIndex+1.
	LastIndex uint64
	// Salvaged reports that some tail or segment was damaged and dropped.
	Salvaged bool
	// DroppedBytes totals the bytes discarded across damaged tails.
	DroppedBytes int64
	// DroppedSegments counts segments abandoned wholesale (bad header).
	DroppedSegments int
}

// String renders the info canonically for logs and hashes.
func (ri RecoveryInfo) String() string {
	return fmt.Sprintf("snap=%d badsnaps=%d replayed=%d last=%d salvaged=%t dropped=%d dropsegs=%d",
		ri.SnapshotIndex, ri.BadSnapshots, ri.Replayed, ri.LastIndex,
		ri.Salvaged, ri.DroppedBytes, ri.DroppedSegments)
}

// Recovery is everything Open reconstructed: the snapshot payload (nil
// when none survived), the records after it in index order, and the
// salvage report.
type Recovery struct {
	Snapshot []byte
	Records  []Record
	Info     RecoveryInfo
}

type sealedSeg struct {
	name  string
	first uint64
	last  uint64 // last record index the segment holds (first-1 if empty)
}

// Log is an append-only checksummed log over an FS. Safe for concurrent
// use; recovery determinism additionally requires the FS to be (MemFS
// is, given single-threaded stepping).
type Log struct {
	fs   FS
	opts Options

	mu          sync.Mutex
	active      File
	activeName  string
	activeSize  int64
	activeFirst uint64
	next        uint64 // index the next successful Append returns
	sealed      []sealedSeg
	snaps       []string // snapshot files present, oldest first
	frame       []byte   // reusable frame buffer
}

// Open recovers the log state in fs and returns the log plus everything
// it replayed. Damaged tails are salvaged, damaged snapshots fall back
// one generation; Open itself writes nothing (the first segment is
// created lazily by Append), so recovery can never be failed by a disk
// write fault.
func Open(fs FS, opts Options) (*Log, *Recovery, error) {
	l := &Log{fs: fs, opts: opts.withDefaults()}
	rec := &Recovery{}
	names, err := fs.List()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing: %w", err)
	}

	// Leftover temp files are debris from a crash mid-snapshot.
	var snapNames []string
	var segNames []string
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			//soclint:ignore errdiscard temp debris cleanup is best-effort; a stale tmp file is ignored by recovery anyway
			_ = fs.Remove(name)
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			snapNames = append(snapNames, name)
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			segNames = append(segNames, name)
		}
	}

	// Newest intact snapshot wins; every damaged generation is counted
	// and skipped.
	sort.Sort(sort.Reverse(sort.StringSlice(snapNames)))
	for _, name := range snapNames {
		idx, ok := parseIndex(name, snapPrefix, snapSuffix)
		if !ok {
			continue
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		payload, ok := decodeSnapshot(data)
		if !ok {
			rec.Info.BadSnapshots++
			rec.Info.Salvaged = true
			continue
		}
		rec.Snapshot = payload
		rec.Info.SnapshotIndex = idx
		break
	}
	sort.Strings(snapNames)
	l.snaps = snapNames

	// Replay segments in index order, salvaging damaged tails.
	sort.Strings(segNames) // %016x names sort like their indexes
	last := rec.Info.SnapshotIndex
	for _, name := range segNames {
		first, ok := parseIndex(name, segPrefix, segSuffix)
		if !ok {
			continue
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		records, dropped := parseSegment(first, data)
		if dropped > 0 {
			rec.Info.Salvaged = true
			rec.Info.DroppedBytes += dropped
			if len(records) == 0 && dropped == int64(len(data)) {
				rec.Info.DroppedSegments++
			}
		}
		segLast := first - 1
		for _, r := range records {
			segLast = r.Index
			if r.Index <= rec.Info.SnapshotIndex {
				continue // already folded into the snapshot
			}
			rec.Records = append(rec.Records, r)
			rec.Info.Replayed++
		}
		if segLast > last {
			last = segLast
		}
		l.sealed = append(l.sealed, sealedSeg{name: name, first: first, last: segLast})
	}
	rec.Info.LastIndex = last
	l.next = last + 1
	return l, rec, nil
}

// LastIndex returns the highest acknowledged record index (0 when the
// log is empty).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Append writes one record and returns its index. When Append returns
// nil the record is durable: the frame is written and fsynced into a
// directory-fsynced segment. On a failed or short write the partial
// frame is rolled back (or, if even the rollback fails, the segment is
// abandoned and the next Append starts a fresh one) so a failed append
// can never masquerade as an acknowledged record.
func (l *Log) Append(data []byte) (uint64, error) {
	if len(data) > maxRecord {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ensureActive(); err != nil {
		return 0, err
	}
	l.frame = appendFrame(l.frame[:0], data)
	off := l.activeSize
	n, err := l.active.Write(l.frame)
	if err == nil && n < len(l.frame) {
		err = fmt.Errorf("wal: short write: %d of %d bytes", n, len(l.frame))
	}
	if err != nil {
		l.rollback(off)
		return 0, fmt.Errorf("wal: appending record %d: %w", l.next, err)
	}
	if err := l.active.Sync(); err != nil {
		l.rollback(off)
		return 0, fmt.Errorf("wal: syncing record %d: %w", l.next, err)
	}
	l.activeSize += int64(len(l.frame))
	idx := l.next
	l.next++
	return idx, nil
}

// rollback removes a partial frame after a failed write, or abandons the
// active segment when the disk refuses even that — the garbage tail then
// stays behind for recovery to salvage past.
func (l *Log) rollback(off int64) {
	if err := l.active.Truncate(off); err != nil {
		l.sealActive()
		return
	}
	l.activeSize = off
}

// sealActive closes the active segment and records its range; the next
// Append starts a new one.
func (l *Log) sealActive() {
	if l.active == nil {
		return
	}
	//soclint:ignore errdiscard the segment is already fsynced per record; a close error changes nothing durable
	_ = l.active.Close()
	l.sealed = append(l.sealed, sealedSeg{name: l.activeName, first: l.activeFirst, last: l.next - 1})
	l.active = nil
	l.activeName = ""
	l.activeSize = 0
}

// ensureActive opens a segment to append into, rotating at the size
// threshold. A new segment becomes durable (header synced, name
// dir-synced) before any record is acknowledged into it.
func (l *Log) ensureActive() error {
	if l.active != nil && l.activeSize < l.opts.SegmentBytes {
		return nil
	}
	l.sealActive()
	name := segPrefix + fmt.Sprintf("%016x", l.next) + segSuffix
	// A salvaged segment that yielded zero valid records carries the same
	// first-index name the new segment needs. It holds nothing durable
	// (last < first), so drop its bookkeeping and let Create truncate it —
	// otherwise compaction would later delete the file out from under the
	// active handle.
	for i, s := range l.sealed {
		if s.name == name {
			l.sealed = append(l.sealed[:i], l.sealed[i+1:]...)
			break
		}
	}
	f, err := l.fs.Create(name)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	abort := func(err error) error {
		//soclint:ignore errdiscard best-effort cleanup of a half-created segment; recovery skips it regardless
		_ = f.Close()
		//soclint:ignore errdiscard best-effort cleanup of a half-created segment; recovery skips it regardless
		_ = l.fs.Remove(name)
		return err
	}
	n, err := f.Write([]byte(segMagic))
	if err == nil && n < len(segMagic) {
		err = fmt.Errorf("short header write: %d of %d bytes", n, len(segMagic))
	}
	if err != nil {
		return abort(fmt.Errorf("wal: writing header of %s: %w", name, err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("wal: syncing header of %s: %w", name, err))
	}
	if err := l.fs.SyncDir(); err != nil {
		return abort(fmt.Errorf("wal: syncing dir for %s: %w", name, err))
	}
	l.active = f
	l.activeName = name
	l.activeSize = headerLen
	l.activeFirst = l.next
	return nil
}

// Snapshot atomically persists data as the state through the last acked
// record, then compacts: segments wholly covered by the snapshot and
// snapshot generations beyond KeepSnapshots are deleted. The snapshot is
// durable (temp write + fsync + rename + dir fsync) before anything is
// removed, so a crash at any point leaves a recoverable log.
func (l *Log) Snapshot(data []byte) error {
	if len(data) > maxRecord {
		return fmt.Errorf("%w: snapshot of %d bytes", ErrTooLarge, len(data))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := l.next - 1
	name := snapPrefix + fmt.Sprintf("%016x", idx) + snapSuffix
	tmp := name + tmpSuffix
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	buf := append(make([]byte, 0, headerLen+frameHeader+len(data)), snapMagic...)
	buf = appendFrame(buf, data)
	abort := func(err error) error {
		//soclint:ignore errdiscard best-effort cleanup; the snapshot error is what matters
		_ = f.Close()
		//soclint:ignore errdiscard best-effort cleanup; the snapshot error is what matters
		_ = l.fs.Remove(tmp)
		return err
	}
	n, err := f.Write(buf)
	if err == nil && n < len(buf) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(buf))
	}
	if err != nil {
		return abort(fmt.Errorf("wal: writing %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("wal: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return abort(fmt.Errorf("wal: closing %s: %w", tmp, err))
	}
	if err := l.fs.Rename(tmp, name); err != nil {
		return abort(fmt.Errorf("wal: installing %s: %w", name, err))
	}
	if err := l.fs.SyncDir(); err != nil {
		return fmt.Errorf("wal: syncing dir for %s: %w", name, err)
	}
	// Two snapshots at the same index overwrite the same file; don't let
	// the bookkeeping list one file twice or generation trimming would
	// delete a file it thinks it still retains.
	dup := false
	for _, s := range l.snaps {
		if s == name {
			dup = true
			break
		}
	}
	if !dup {
		l.snaps = append(l.snaps, name)
		sort.Strings(l.snaps)
	}

	// Compaction. Trim snapshot generations first, then drop only the
	// segments the OLDEST retained snapshot covers — that keeps the
	// fallback generation lossless: if the newest snapshot is ever found
	// corrupt at rest, the older one plus the retained log suffix still
	// reconstructs every acked record. Failures here never lose data — at
	// worst a covered file lingers until the next compaction.
	l.sealActive()
	removed := false
	for len(l.snaps) > l.opts.KeepSnapshots {
		//soclint:ignore errdiscard a stale snapshot that refuses deletion is retried at the next compaction
		_ = l.fs.Remove(l.snaps[0])
		l.snaps = l.snaps[1:]
		removed = true
	}
	covered := idx
	if oldest, ok := parseIndex(l.snaps[0], snapPrefix, snapSuffix); ok {
		covered = oldest
	}
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.last <= covered {
			//soclint:ignore errdiscard a covered segment that refuses deletion is retried at the next compaction
			_ = l.fs.Remove(s.name)
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if removed {
		if err := l.fs.SyncDir(); err != nil {
			return fmt.Errorf("wal: syncing dir after compaction: %w", err)
		}
	}
	return nil
}

// Close seals the active segment and releases the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealActive()
	return nil
}

// appendFrame appends [len][crc][payload] to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseSegment walks a segment's frames, returning the valid records and
// how many trailing bytes were dropped as torn or corrupt. The first
// invalid frame ends the segment: by the writer's discipline nothing
// valid can follow it.
func parseSegment(first uint64, data []byte) (records []Record, dropped int64) {
	if len(data) < headerLen || string(data[:headerLen]) != segMagic {
		return nil, int64(len(data))
	}
	off := headerLen
	idx := first
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, 0
		}
		if len(rest) < frameHeader {
			return records, int64(len(rest))
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecord || int(n) > len(rest)-frameHeader {
			return records, int64(len(rest))
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return records, int64(len(rest))
		}
		records = append(records, Record{Index: idx, Data: append([]byte(nil), payload...)})
		idx++
		off += frameHeader + int(n)
	}
}

// decodeSnapshot validates a snapshot file and returns its payload.
func decodeSnapshot(data []byte) ([]byte, bool) {
	if len(data) < headerLen+frameHeader || string(data[:headerLen]) != snapMagic {
		return nil, false
	}
	body := data[headerLen:]
	n := binary.LittleEndian.Uint32(body[0:4])
	crc := binary.LittleEndian.Uint32(body[4:8])
	if n > maxRecord || int(n) != len(body)-frameHeader {
		return nil, false
	}
	payload := body[frameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return append([]byte(nil), payload...), true
}

// parseIndex extracts the %016x index between prefix and suffix.
func parseIndex(name, prefix, suffix string) (uint64, bool) {
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	var idx uint64
	if _, err := fmt.Sscanf(hexPart, "%016x", &idx); err != nil {
		return 0, false
	}
	return idx, true
}
