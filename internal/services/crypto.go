// Package services implements the ASU Repository of Services and
// Applications described in §V of the paper: "encryption and decryption
// services, access control services, random number guessing game services,
// random string (strong password) generation services, dynamic image
// generation services, random string image (image verifier) service,
// caching services, shopping cart services, messaging buffer services, and
// mortgage application/approval services" — each as a soc/internal/core
// service so every one is simultaneously hostable over SOAP and REST.
package services

import (
	"context"
	"fmt"

	"soc/internal/core"
	"soc/internal/security"
)

// Namespace prefix shared by the repository's services.
const NamespacePrefix = "http://soc.asu.example/wsrepository/"

// NewEncryption builds the encryption/decryption service.
func NewEncryption() (*core.Service, error) {
	svc, err := core.NewService("Encryption", NamespacePrefix+"encryption",
		"AES-GCM encryption and decryption under a passphrase-derived key")
	if err != nil {
		return nil, err
	}
	svc.Category = "security/encryption"
	err = svc.AddOperation(core.Operation{
		Name: "Encrypt",
		Doc:  "seals plaintext under the passphrase; returns base64 ciphertext",
		Input: []core.Param{
			{Name: "passphrase", Type: core.String},
			{Name: "plaintext", Type: core.String},
		},
		Output: []core.Param{{Name: "ciphertext", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			if in.Str("passphrase") == "" {
				return nil, fmt.Errorf("empty passphrase")
			}
			ct, err := security.Encrypt(in.Str("passphrase"), []byte(in.Str("plaintext")))
			if err != nil {
				return nil, err
			}
			return core.Values{"ciphertext": ct}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:       "Decrypt",
		Idempotent: true,
		Doc:        "opens base64 ciphertext sealed by Encrypt",
		Input: []core.Param{
			{Name: "passphrase", Type: core.String},
			{Name: "ciphertext", Type: core.String},
		},
		Output: []core.Param{{Name: "plaintext", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			pt, err := security.Decrypt(in.Str("passphrase"), in.Str("ciphertext"))
			if err != nil {
				return nil, err
			}
			return core.Values{"plaintext": string(pt)}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}

// NewRandomString builds the random string / strong password service.
func NewRandomString() (*core.Service, error) {
	svc, err := core.NewService("RandomString", NamespacePrefix+"randomstring",
		"random string and strong password generation with strength checking")
	if err != nil {
		return nil, err
	}
	svc.Category = "security/passwords"
	err = svc.AddOperation(core.Operation{
		Name: "Generate",
		Doc:  "returns length alphanumeric characters",
		Input: []core.Param{
			{Name: "length", Type: core.Int},
		},
		Output: []core.Param{{Name: "value", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			n := in.Int("length")
			if n < 1 || n > 1024 {
				return nil, fmt.Errorf("length %d out of [1,1024]", n)
			}
			s, err := security.RandomString(int(n), security.AlphabetAlnum)
			if err != nil {
				return nil, err
			}
			return core.Values{"value": s}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:   "StrongPassword",
		Doc:    "returns a password satisfying the default strength policy",
		Input:  []core.Param{{Name: "length", Type: core.Int}},
		Output: []core.Param{{Name: "password", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			n := in.Int("length")
			if n < 8 || n > 256 {
				return nil, fmt.Errorf("length %d out of [8,256]", n)
			}
			// Re-draw until the policy passes; a few tries suffice.
			for tries := 0; tries < 64; tries++ {
				s, err := security.RandomString(int(n), security.AlphabetPassword)
				if err != nil {
					return nil, err
				}
				if security.DefaultPolicy.Check(s) == nil {
					return core.Values{"password": s}, nil
				}
			}
			return nil, fmt.Errorf("could not satisfy policy")
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:       "CheckStrength",
		Idempotent: true,
		Doc:        "evaluates a password against the default policy",
		Input:      []core.Param{{Name: "password", Type: core.String}},
		Output:     []core.Param{{Name: "strong", Type: core.Bool}, {Name: "reason", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			if err := security.DefaultPolicy.Check(in.Str("password")); err != nil {
				return core.Values{"strong": false, "reason": err.Error()}, nil
			}
			return core.Values{"strong": true, "reason": ""}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}

// NewAccessControl builds the access-control service over an RBAC policy.
func NewAccessControl(policy *security.RBAC, audit *security.AuditLog) (*core.Service, error) {
	if policy == nil {
		return nil, fmt.Errorf("services: nil policy")
	}
	svc, err := core.NewService("AccessControl", NamespacePrefix+"accesscontrol",
		"role-based access control decisions with audit logging")
	if err != nil {
		return nil, err
	}
	svc.Category = "security/access-control"
	err = svc.AddOperation(core.Operation{
		Name: "Check",
		Doc:  "decides whether user may perform permission (resource:action)",
		Input: []core.Param{
			{Name: "user", Type: core.String},
			{Name: "permission", Type: core.String},
		},
		Output: []core.Param{{Name: "allowed", Type: core.Bool}, {Name: "reason", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			err := policy.Check(in.Str("user"), in.Str("permission"))
			allowed := err == nil
			if audit != nil {
				audit.Record(in.Str("user"), "check", in.Str("permission"), allowed)
			}
			reason := ""
			if err != nil {
				reason = err.Error()
			}
			return core.Values{"allowed": allowed, "reason": reason}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name: "AssignRole",
		Doc:  "grants a role to a user",
		Input: []core.Param{
			{Name: "user", Type: core.String},
			{Name: "role", Type: core.String},
		},
		Output: []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			if in.Str("user") == "" || in.Str("role") == "" {
				return nil, fmt.Errorf("user and role required")
			}
			policy.AssignRole(in.Str("user"), in.Str("role"))
			return core.Values{"ok": true}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}
