package services

import (
	"context"
	"fmt"

	"soc/internal/collatz"
	"soc/internal/core"
	"soc/internal/maze"
)

// Bounds on the compute service's request cost: one Collatz validation
// request enumerates at most this many numbers, and generated mazes stay
// small enough that a response is a few KB of ASCII.
const (
	maxCollatzRange = 100000
	maxMazeSide     = 64
)

// NewCompute builds the pure-computation service: Collatz-conjecture
// validation (the paper's Figure 3 performance workload) and maze
// generation/scoring from the CSE101 robot environment, exposed as
// service operations. Every operation is a pure function of its inputs
// (maze generation is deterministic in its seed), so all of them are
// declared Idempotent and answer repeats from the response cache — the
// cached-idempotent leg of the heavy-traffic load mix.
func NewCompute() (*core.Service, error) {
	svc, err := core.NewService("Compute", NamespacePrefix+"compute",
		"pure compute workloads: Collatz validation and maze generation/scoring")
	if err != nil {
		return nil, err
	}
	svc.Category = "compute"
	err = svc.AddOperation(core.Operation{
		Name:       "CollatzSteps",
		Idempotent: true,
		Doc:        "counts the 3n+1 iteration steps from n down to 1",
		Input:      []core.Param{{Name: "n", Type: core.Int}},
		Output:     []core.Param{{Name: "steps", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			n := in.Int("n")
			if n < 1 {
				return nil, fmt.Errorf("need n >= 1, got %d", n)
			}
			s, err := collatz.Steps(uint64(n))
			if err != nil {
				return nil, err
			}
			return core.Values{"steps": int64(s)}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:       "CollatzValidate",
		Idempotent: true,
		Doc:        "validates the conjecture over [low, high) and scores the range",
		Input: []core.Param{
			{Name: "low", Type: core.Int},
			{Name: "high", Type: core.Int},
		},
		Output: []core.Param{
			{Name: "verified", Type: core.Int},
			{Name: "totalSteps", Type: core.Int},
			{Name: "maxSteps", Type: core.Int},
			{Name: "maxAt", Type: core.Int},
		},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			lo, hi := in.Int("low"), in.Int("high")
			if lo < 1 || hi < lo {
				return nil, fmt.Errorf("need 1 <= low <= high, got [%d,%d)", lo, hi)
			}
			if hi-lo > maxCollatzRange {
				return nil, fmt.Errorf("range %d exceeds %d numbers per request", hi-lo, maxCollatzRange)
			}
			r, err := collatz.ValidateSeq(uint64(lo), uint64(hi))
			if err != nil {
				return nil, err
			}
			return core.Values{
				"verified":   int64(r.Verified),
				"totalSteps": int64(r.TotalSteps),
				"maxSteps":   int64(r.MaxSteps),
				"maxAt":      int64(r.MaxAt),
			}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:       "MazeGenerate",
		Idempotent: true,
		Doc:        "generates a perfect maze, deterministic in seed; algorithm is dfs|prim|division",
		Input: []core.Param{
			{Name: "width", Type: core.Int},
			{Name: "height", Type: core.Int},
			{Name: "algorithm", Type: core.String},
			{Name: "seed", Type: core.Int},
		},
		Output: []core.Param{
			{Name: "maze", Type: core.String},
			{Name: "pathLength", Type: core.Int},
		},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			w, h := in.Int("width"), in.Int("height")
			if w > maxMazeSide || h > maxMazeSide {
				return nil, fmt.Errorf("maze %dx%d exceeds %dx%d per request", w, h, maxMazeSide, maxMazeSide)
			}
			alg, err := parseAlgorithm(in.Str("algorithm"))
			if err != nil {
				return nil, err
			}
			m, err := maze.Generate(int(w), int(h), alg, in.Int("seed"))
			if err != nil {
				return nil, err
			}
			path, err := m.ShortestPath()
			if err != nil {
				return nil, err
			}
			return core.Values{"maze": m.String(), "pathLength": int64(len(path) - 1)}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:       "MazeScore",
		Idempotent: true,
		Doc:        "scores an ASCII maze document: solvability and shortest-path length (-1 when unsolvable)",
		Input:      []core.Param{{Name: "maze", Type: core.String}},
		Output: []core.Param{
			{Name: "solvable", Type: core.Bool},
			{Name: "pathLength", Type: core.Int},
		},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			m, err := maze.Parse(in.Str("maze"))
			if err != nil {
				return nil, err
			}
			path, err := m.ShortestPath()
			if err != nil {
				return core.Values{"solvable": false, "pathLength": int64(-1)}, nil
			}
			return core.Values{"solvable": true, "pathLength": int64(len(path) - 1)}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}

func parseAlgorithm(name string) (maze.Algorithm, error) {
	switch name {
	case "dfs":
		return maze.DFS, nil
	case "prim":
		return maze.Prim, nil
	case "division":
		return maze.Division, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want dfs, prim or division)", name)
}
