package services

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"soc/internal/core"
)

// guessGame is one random-number-guessing game instance.
type guessGame struct {
	lo, hi   int64 // inclusive bounds
	secret   int64
	attempts int64
	done     bool
}

// GuessingGames holds game instances keyed by id.
type GuessingGames struct {
	mu     sync.Mutex
	nextID int64
	games  map[int64]*guessGame
}

// NewGuessingGames returns an empty game store.
func NewGuessingGames() *GuessingGames {
	return &GuessingGames{games: map[int64]*guessGame{}}
}

// NewGuessingGame builds the random number guessing game service of the
// repository.
func NewGuessingGame(store *GuessingGames) (*core.Service, error) {
	if store == nil {
		return nil, fmt.Errorf("services: nil game store")
	}
	svc, err := core.NewService("GuessingGame", NamespacePrefix+"guessinggame",
		"stateful random-number guessing game")
	if err != nil {
		return nil, err
	}
	svc.Category = "games"
	err = svc.AddOperation(core.Operation{
		Name: "NewGame",
		Doc:  "starts a game with a secret in [low, high]; seed makes it reproducible",
		Input: []core.Param{
			{Name: "low", Type: core.Int},
			{Name: "high", Type: core.Int},
			{Name: "seed", Type: core.Int, Optional: true},
		},
		Output: []core.Param{{Name: "game", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			lo, hi := in.Int("low"), in.Int("high")
			if hi <= lo {
				return nil, fmt.Errorf("need low < high, got [%d,%d]", lo, hi)
			}
			rng := rand.New(rand.NewSource(in.Int("seed")))
			g := &guessGame{lo: lo, hi: hi, secret: lo + rng.Int63n(hi-lo+1)}
			store.mu.Lock()
			store.nextID++
			id := store.nextID
			store.games[id] = g
			store.mu.Unlock()
			return core.Values{"game": id}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name: "Guess",
		Doc:  "submits a guess; hint is one of lower|higher|correct",
		Input: []core.Param{
			{Name: "game", Type: core.Int},
			{Name: "guess", Type: core.Int},
		},
		Output: []core.Param{
			{Name: "hint", Type: core.String},
			{Name: "attempts", Type: core.Int},
			{Name: "done", Type: core.Bool},
		},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			store.mu.Lock()
			defer store.mu.Unlock()
			g, ok := store.games[in.Int("game")]
			if !ok {
				return nil, fmt.Errorf("no game %d", in.Int("game"))
			}
			if g.done {
				return nil, fmt.Errorf("game %d is finished", in.Int("game"))
			}
			guess := in.Int("guess")
			if guess < g.lo || guess > g.hi {
				return nil, fmt.Errorf("guess %d outside [%d,%d]", guess, g.lo, g.hi)
			}
			g.attempts++
			hint := "correct"
			switch {
			case guess < g.secret:
				hint = "higher"
			case guess > g.secret:
				hint = "lower"
			default:
				g.done = true
			}
			return core.Values{"hint": hint, "attempts": g.attempts, "done": g.done}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}
