package services

import (
	"strings"
	"sync"
	"testing"

	"soc/internal/core"
)

// TestOperationTable drives the repository services through one shared
// table: every row is (service, op, args) with either an expected error
// fragment or an output assertion. The error rows are the point — the
// simulation harness generates invalid inputs on purpose, so the error
// surface must be exact and deterministic.
func TestOperationTable(t *testing.T) {
	crypto := func(t *testing.T) *core.Service { s, err := NewEncryption(); return mustSvc(t, s, err) }
	random := func(t *testing.T) *core.Service { s, err := NewRandomString(); return mustSvc(t, s, err) }
	credit := func(t *testing.T) *core.Service { s, err := NewCreditScore(); return mustSvc(t, s, err) }
	image := func(t *testing.T) *core.Service { s, err := NewDynamicImage(); return mustSvc(t, s, err) }
	cart := func(t *testing.T) *core.Service { s, err := NewShoppingCart(NewCarts()); return mustSvc(t, s, err) }
	game := func(t *testing.T) *core.Service {
		s, err := NewGuessingGame(NewGuessingGames())
		return mustSvc(t, s, err)
	}
	buffer := func(t *testing.T) *core.Service { s, err := NewMessageBuffer(NewBuffers()); return mustSvc(t, s, err) }

	cases := []struct {
		name    string
		svc     func(*testing.T) *core.Service
		op      string
		args    core.Values
		wantErr string                        // "" means the call must succeed
		check   func(*testing.T, core.Values) // optional output assertion
	}{
		{
			name: "encrypt empty passphrase rejected",
			svc:  crypto, op: "Encrypt",
			args:    core.Values{"passphrase": "", "plaintext": "x"},
			wantErr: "empty passphrase",
		},
		{
			name: "decrypt garbage ciphertext rejected",
			svc:  crypto, op: "Decrypt",
			args:    core.Values{"passphrase": "k", "ciphertext": "not base64!!"},
			wantErr: "bad encoding",
		},
		{
			name: "random generate length too large",
			svc:  random, op: "Generate",
			args:    core.Values{"length": 4096},
			wantErr: "out of [1,1024]",
		},
		{
			name: "random generate length zero",
			svc:  random, op: "Generate",
			args:    core.Values{"length": 0},
			wantErr: "out of [1,1024]",
		},
		{
			name: "strong password below minimum",
			svc:  random, op: "StrongPassword",
			args:    core.Values{"length": 7},
			wantErr: "out of [8,256]",
		},
		{
			name: "check strength flags weak password",
			svc:  random, op: "CheckStrength",
			args: core.Values{"password": "short"},
			check: func(t *testing.T, out core.Values) {
				t.Helper()
				if out.Bool("strong") || out.Str("reason") == "" {
					t.Fatalf("weak password scored strong: %v", out)
				}
			},
		},
		{
			name: "credit score malformed ssn",
			svc:  credit, op: "Score",
			args:    core.Values{"ssn": "not-an-ssn"},
			wantErr: "invalid SSN format",
		},
		{
			name: "credit score deterministic range",
			svc:  credit, op: "Score",
			args: core.Values{"ssn": "123-45-6789"},
			check: func(t *testing.T, out core.Values) {
				t.Helper()
				if s := out.Int("score"); s < 300 || s > 850 {
					t.Fatalf("score %d outside [300,850]", s)
				}
			},
		},
		{
			name: "dynamic image bad chart value",
			svc:  image, op: "BarChart",
			args:    core.Values{"title": "t", "labels": "a,b", "values": "1,x"},
			wantErr: "bad value",
		},
		{
			name: "cart add item to missing cart",
			svc:  cart, op: "AddItem",
			args:    core.Values{"cart": 99, "item": "widget", "quantity": 1, "price": "1.00"},
			wantErr: "no cart 99",
		},
		{
			name: "cart add item negative quantity",
			svc:  cart, op: "AddItem",
			args:    core.Values{"cart": 1, "item": "widget", "quantity": -1, "price": "1.00"},
			wantErr: "positive quantity",
		},
		{
			name: "cart total of missing cart",
			svc:  cart, op: "Total",
			args:    core.Values{"cart": 7},
			wantErr: "no cart 7",
		},
		{
			name: "cart remove from missing cart",
			svc:  cart, op: "RemoveItem",
			args:    core.Values{"cart": 7, "item": "widget"},
			wantErr: "no cart 7",
		},
		{
			name: "cart checkout missing cart",
			svc:  cart, op: "Checkout",
			args:    core.Values{"cart": 7},
			wantErr: "no cart 7",
		},
		{
			name: "guessing game inverted bounds",
			svc:  game, op: "NewGame",
			args:    core.Values{"low": 10, "high": 5},
			wantErr: "need low < high",
		},
		{
			name: "guessing game guess without game",
			svc:  game, op: "Guess",
			args:    core.Values{"game": 42, "guess": 3},
			wantErr: "no game 42",
		},
		{
			name: "message buffer empty name",
			svc:  buffer, op: "CreateBuffer",
			args:    core.Values{"name": "", "capacity": 4},
			wantErr: "empty buffer name",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := tc.svc(t)
			out, err := svc.Invoke(ctx, tc.op, tc.args)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("%s.%s(%v) succeeded with %v, want error containing %q", svc.Name, tc.op, tc.args, out, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("%s.%s(%v): %v", svc.Name, tc.op, tc.args, err)
			}
			if tc.check != nil {
				tc.check(t, out)
			}
		})
	}
}

func mustSvc(t *testing.T, svc *core.Service, err error) *core.Service {
	t.Helper()
	if err != nil {
		t.Fatalf("building service: %v", err)
	}
	return svc
}

// TestCartLifecycleTable walks a cart through its full life and pins
// the intermediate outputs — the stateful counterpart of the error rows
// above.
func TestCartLifecycleTable(t *testing.T) {
	built, berr := NewShoppingCart(NewCarts())
	svc := mustSvc(t, built, berr)
	created, err := svc.Invoke(ctx, "CreateCart", nil)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := created.Int("cart")
	if id == 0 {
		t.Fatalf("no cart id in %v", created)
	}
	steps := []struct {
		op   string
		args core.Values
		want map[string]string
	}{
		{"AddItem", core.Values{"cart": id, "item": "widget", "quantity": 2, "price": "1.25"}, nil},
		{"AddItem", core.Values{"cart": id, "item": "gadget", "quantity": 1, "price": "9.99"}, nil},
		{"Total", core.Values{"cart": id}, map[string]string{"total": "12.49"}},
		{"RemoveItem", core.Values{"cart": id, "item": "widget"}, nil},
		{"Total", core.Values{"cart": id}, map[string]string{"total": "9.99"}},
		{"Checkout", core.Values{"cart": id}, map[string]string{"total": "9.99"}},
	}
	for _, st := range steps {
		out, err := svc.Invoke(ctx, st.op, st.args)
		if err != nil {
			t.Fatalf("%s: %v", st.op, err)
		}
		for k, want := range st.want {
			if got := core.FormatValue(out[k]); got != want {
				t.Fatalf("%s: %s = %s, want %s", st.op, k, got, want)
			}
		}
	}
	// Checkout empties the cart; a second checkout must fail.
	if _, err := svc.Invoke(ctx, "Checkout", core.Values{"cart": id}); err == nil {
		t.Fatal("second checkout of an emptied cart succeeded")
	}
}

// TestCartsConcurrentMutation hammers one cart store from many
// goroutines; run under -race this pins the store's locking discipline.
func TestCartsConcurrentMutation(t *testing.T) {
	built, berr := NewShoppingCart(NewCarts())
	svc := mustSvc(t, built, berr)
	created, err := svc.Invoke(ctx, "CreateCart", nil)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := created.Int("cart")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := svc.Invoke(ctx, "AddItem", core.Values{
					"cart": id, "item": "widget", "quantity": 1, "price": "1.00",
				}); err != nil {
					t.Errorf("worker %d add: %v", w, err)
					return
				}
				//soclint:ignore errdiscard concurrent totals race benignly with adds; only data races matter here
				_, _ = svc.Invoke(ctx, "Total", core.Values{"cart": id})
			}
		}(w)
	}
	wg.Wait()
	out, err := svc.Invoke(ctx, "Total", core.Values{"cart": id})
	if err != nil {
		t.Fatalf("final total: %v", err)
	}
	if got := core.FormatValue(out["total"]); got != "200" {
		t.Fatalf("final total %s, want 200 (%d adds of 1.00)", got, workers*25)
	}
}
