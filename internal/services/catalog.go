package services

import (
	"context"
	"fmt"
	"path/filepath"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/security"
	"soc/internal/session"
	"soc/internal/xmlstore"
)

// Catalog is the assembled ASU repository: every sample service plus the
// shared state they run on.
type Catalog struct {
	Services []*core.Service

	Policy     *security.RBAC
	Audit      *security.AuditLog
	Cache      *session.Cache
	Carts      *Carts
	Buffers    *Buffers
	Games      *GuessingGames
	Challenges *Challenges
	Accounts   *xmlstore.Store
}

// NewCatalog builds the full repository. dataDir holds the XML account
// store (the Figure 4 account.xml).
func NewCatalog(dataDir string) (*Catalog, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("services: dataDir required")
	}
	accounts, err := xmlstore.Open(filepath.Join(dataDir, "account.xml"), "accounts", "account")
	if err != nil {
		return nil, err
	}
	cache, err := session.NewCache(1024)
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		Policy:     security.NewRBAC(),
		Audit:      security.NewAuditLog(4096, nil),
		Cache:      cache,
		Carts:      NewCarts(),
		Buffers:    NewBuffers(),
		Games:      NewGuessingGames(),
		Challenges: NewChallenges(),
		Accounts:   accounts,
	}
	// Seed a default policy so access-control demos work out of the box.
	c.Policy.GrantRole("admin", "*:*")
	c.Policy.GrantRole("student", "services:read", "services:invoke")
	c.Policy.AssignRole("instructor", "admin")

	credit, err := NewCreditScore()
	if err != nil {
		return nil, err
	}
	// In-catalog composition: the mortgage service consumes the credit
	// service through its public Invoke surface (service → service).
	lookup := func(ctx context.Context, ssn string) (int64, error) {
		out, err := credit.Invoke(ctx, "Score", core.Values{"ssn": ssn})
		if err != nil {
			return 0, err
		}
		return out.Int("score"), nil
	}

	builders := []func() (*core.Service, error){
		NewEncryption,
		NewRandomString,
		func() (*core.Service, error) { return NewAccessControl(c.Policy, c.Audit) },
		func() (*core.Service, error) { return NewGuessingGame(c.Games) },
		NewDynamicImage,
		func() (*core.Service, error) { return NewImageVerifier(c.Challenges) },
		func() (*core.Service, error) { return NewCaching(c.Cache) },
		func() (*core.Service, error) { return NewShoppingCart(c.Carts) },
		func() (*core.Service, error) { return NewMessageBuffer(c.Buffers) },
		func() (*core.Service, error) { return credit, nil },
		func() (*core.Service, error) { return NewMortgage(c.Accounts, lookup) },
		NewCompute,
	}
	for _, build := range builders {
		svc, err := build()
		if err != nil {
			return nil, err
		}
		c.Services = append(c.Services, svc)
	}
	return c, nil
}

// MountAll mounts every catalog service on the host.
func (c *Catalog) MountAll(h *host.Host) error {
	for _, svc := range c.Services {
		if err := h.Mount(svc); err != nil {
			return err
		}
	}
	return nil
}

// Publisher is the registry surface PublishAll needs — satisfied by both
// *registry.Registry and *registry.DurableRegistry.
type Publisher interface {
	Publish(e registry.Entry) error
}

// PublishAll publishes every catalog service into the registry under the
// given endpoint base URL.
func (c *Catalog) PublishAll(reg Publisher, baseURL, provider string) error {
	for _, svc := range c.Services {
		var ops []string
		for _, op := range svc.Operations() {
			ops = append(ops, op.Name)
		}
		err := reg.Publish(registry.Entry{
			Name:       svc.Name,
			Namespace:  svc.Namespace,
			Doc:        svc.Doc,
			Category:   svc.Category,
			Endpoint:   baseURL + "/services/" + svc.Name,
			Bindings:   []string{"soap", "rest"},
			Operations: ops,
			Provider:   provider,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
