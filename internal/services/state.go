package services

import (
	"context"
	"fmt"
	"sync"

	"soc/internal/core"
	"soc/internal/parallel"
	"soc/internal/session"
)

// NewCaching builds the caching service over an LRU+TTL cache.
func NewCaching(cache *session.Cache) (*core.Service, error) {
	if cache == nil {
		return nil, fmt.Errorf("services: nil cache")
	}
	svc, err := core.NewService("Caching", NamespacePrefix+"caching",
		"shared LRU+TTL cache with dependency invalidation")
	if err != nil {
		return nil, err
	}
	svc.Category = "state/caching"
	ops := []core.Operation{
		{
			Name: "Put",
			Doc:  "stores value under key, optionally tagged with a dependency",
			Input: []core.Param{
				{Name: "key", Type: core.String},
				{Name: "value", Type: core.String},
				{Name: "dependency", Type: core.String, Optional: true},
			},
			Output: []core.Param{{Name: "ok", Type: core.Bool}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				if in.Str("key") == "" {
					return nil, fmt.Errorf("empty key")
				}
				if dep := in.Str("dependency"); dep != "" {
					cache.Put(in.Str("key"), in.Str("value"), dep)
				} else {
					cache.Put(in.Str("key"), in.Str("value"))
				}
				return core.Values{"ok": true}, nil
			},
		},
		{
			Name:   "Get",
			Doc:    "fetches a cached value; found=false on miss",
			Input:  []core.Param{{Name: "key", Type: core.String}},
			Output: []core.Param{{Name: "value", Type: core.String}, {Name: "found", Type: core.Bool}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				v, ok := cache.Get(in.Str("key"))
				s, _ := v.(string)
				return core.Values{"value": s, "found": ok}, nil
			},
		},
		{
			Name:   "InvalidateDependency",
			Doc:    "drops every entry tagged with the dependency",
			Input:  []core.Param{{Name: "dependency", Type: core.String}},
			Output: []core.Param{{Name: "dropped", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				return core.Values{"dropped": int64(cache.InvalidateDependency(in.Str("dependency")))}, nil
			},
		},
		{
			Name:   "Stats",
			Doc:    "reports hit/miss counters",
			Output: []core.Param{{Name: "hits", Type: core.Int}, {Name: "misses", Type: core.Int}},
			Handler: func(context.Context, core.Values) (core.Values, error) {
				h, m := cache.Stats()
				return core.Values{"hits": int64(h), "misses": int64(m)}, nil
			},
		},
	}
	for _, op := range ops {
		if err := svc.AddOperation(op); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

// Carts stores shopping carts keyed by id.
type Carts struct {
	mu     sync.Mutex
	nextID int64
	carts  map[int64]map[string]cartLine
}

type cartLine struct {
	qty   int64
	price float64
}

// NewCarts returns an empty cart store.
func NewCarts() *Carts { return &Carts{carts: map[int64]map[string]cartLine{}} }

// NewShoppingCart builds the stateful shopping cart service.
func NewShoppingCart(store *Carts) (*core.Service, error) {
	if store == nil {
		return nil, fmt.Errorf("services: nil cart store")
	}
	svc, err := core.NewService("ShoppingCart", NamespacePrefix+"shoppingcart",
		"stateful shopping cart: add and remove items, total, check out")
	if err != nil {
		return nil, err
	}
	svc.Category = "commerce"
	ops := []core.Operation{
		{
			Name:   "CreateCart",
			Output: []core.Param{{Name: "cart", Type: core.Int}},
			Handler: func(context.Context, core.Values) (core.Values, error) {
				store.mu.Lock()
				defer store.mu.Unlock()
				store.nextID++
				store.carts[store.nextID] = map[string]cartLine{}
				return core.Values{"cart": store.nextID}, nil
			},
		},
		{
			Name: "AddItem",
			Input: []core.Param{
				{Name: "cart", Type: core.Int},
				{Name: "item", Type: core.String},
				{Name: "quantity", Type: core.Int},
				{Name: "price", Type: core.Float},
			},
			Output: []core.Param{{Name: "items", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				if in.Str("item") == "" || in.Int("quantity") < 1 || in.Float("price") < 0 {
					return nil, fmt.Errorf("need item, positive quantity, non-negative price")
				}
				store.mu.Lock()
				defer store.mu.Unlock()
				cart, ok := store.carts[in.Int("cart")]
				if !ok {
					return nil, fmt.Errorf("no cart %d", in.Int("cart"))
				}
				line := cart[in.Str("item")]
				line.qty += in.Int("quantity")
				line.price = in.Float("price")
				cart[in.Str("item")] = line
				return core.Values{"items": countItems(cart)}, nil
			},
		},
		{
			Name: "RemoveItem",
			Input: []core.Param{
				{Name: "cart", Type: core.Int},
				{Name: "item", Type: core.String},
			},
			Output: []core.Param{{Name: "items", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				store.mu.Lock()
				defer store.mu.Unlock()
				cart, ok := store.carts[in.Int("cart")]
				if !ok {
					return nil, fmt.Errorf("no cart %d", in.Int("cart"))
				}
				if _, ok := cart[in.Str("item")]; !ok {
					return nil, fmt.Errorf("cart %d has no %q", in.Int("cart"), in.Str("item"))
				}
				delete(cart, in.Str("item"))
				return core.Values{"items": countItems(cart)}, nil
			},
		},
		{
			Name:   "Total",
			Input:  []core.Param{{Name: "cart", Type: core.Int}},
			Output: []core.Param{{Name: "total", Type: core.Float}, {Name: "items", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				store.mu.Lock()
				defer store.mu.Unlock()
				cart, ok := store.carts[in.Int("cart")]
				if !ok {
					return nil, fmt.Errorf("no cart %d", in.Int("cart"))
				}
				total := 0.0
				for _, line := range cart {
					total += float64(line.qty) * line.price
				}
				return core.Values{"total": total, "items": countItems(cart)}, nil
			},
		},
		{
			Name:   "Checkout",
			Doc:    "finalizes and removes the cart, returning the amount due",
			Input:  []core.Param{{Name: "cart", Type: core.Int}},
			Output: []core.Param{{Name: "total", Type: core.Float}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				store.mu.Lock()
				defer store.mu.Unlock()
				cart, ok := store.carts[in.Int("cart")]
				if !ok {
					return nil, fmt.Errorf("no cart %d", in.Int("cart"))
				}
				if len(cart) == 0 {
					return nil, fmt.Errorf("cart %d is empty", in.Int("cart"))
				}
				total := 0.0
				for _, line := range cart {
					total += float64(line.qty) * line.price
				}
				delete(store.carts, in.Int("cart"))
				return core.Values{"total": total}, nil
			},
		},
	}
	for _, op := range ops {
		if err := svc.AddOperation(op); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

func countItems(cart map[string]cartLine) int64 {
	var n int64
	for _, line := range cart {
		n += line.qty
	}
	return n
}

// Buffers stores named bounded message buffers.
type Buffers struct {
	mu   sync.Mutex
	bufs map[string]*parallel.Queue[string]
}

// NewBuffers returns an empty buffer store.
func NewBuffers() *Buffers { return &Buffers{bufs: map[string]*parallel.Queue[string]{}} }

// NewMessageBuffer builds the messaging buffer service: named bounded
// FIFO queues with non-blocking receive.
func NewMessageBuffer(store *Buffers) (*core.Service, error) {
	if store == nil {
		return nil, fmt.Errorf("services: nil buffer store")
	}
	svc, err := core.NewService("MessageBuffer", NamespacePrefix+"messagebuffer",
		"named bounded FIFO message buffers (producer/consumer over the wire)")
	if err != nil {
		return nil, err
	}
	svc.Category = "state/messaging"
	ops := []core.Operation{
		{
			Name: "CreateBuffer",
			Input: []core.Param{
				{Name: "name", Type: core.String},
				{Name: "capacity", Type: core.Int},
			},
			Output: []core.Param{{Name: "ok", Type: core.Bool}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				if in.Str("name") == "" {
					return nil, fmt.Errorf("empty buffer name")
				}
				q, err := parallel.NewQueue[string](int(in.Int("capacity")))
				if err != nil {
					return nil, err
				}
				store.mu.Lock()
				defer store.mu.Unlock()
				if _, dup := store.bufs[in.Str("name")]; dup {
					return nil, fmt.Errorf("buffer %q exists", in.Str("name"))
				}
				store.bufs[in.Str("name")] = q
				return core.Values{"ok": true}, nil
			},
		},
		{
			Name: "Send",
			Doc:  "appends a message; accepted=false when the buffer is full",
			Input: []core.Param{
				{Name: "name", Type: core.String},
				{Name: "message", Type: core.String},
			},
			Output: []core.Param{{Name: "accepted", Type: core.Bool}, {Name: "size", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				q, err := bufferOf(store, in.Str("name"))
				if err != nil {
					return nil, err
				}
				// Non-blocking semantics over the wire: full means refuse.
				accepted := q.TryPut(in.Str("message"))
				return core.Values{"accepted": accepted, "size": int64(q.Len())}, nil
			},
		},
		{
			Name:   "Receive",
			Doc:    "removes the oldest message; found=false when empty",
			Input:  []core.Param{{Name: "name", Type: core.String}},
			Output: []core.Param{{Name: "message", Type: core.String}, {Name: "found", Type: core.Bool}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				q, err := bufferOf(store, in.Str("name"))
				if err != nil {
					return nil, err
				}
				msg, ok := q.TryTake()
				return core.Values{"message": msg, "found": ok}, nil
			},
		},
		{
			Name:   "Size",
			Input:  []core.Param{{Name: "name", Type: core.String}},
			Output: []core.Param{{Name: "size", Type: core.Int}, {Name: "capacity", Type: core.Int}},
			Handler: func(_ context.Context, in core.Values) (core.Values, error) {
				q, err := bufferOf(store, in.Str("name"))
				if err != nil {
					return nil, err
				}
				return core.Values{"size": int64(q.Len()), "capacity": int64(q.Cap())}, nil
			},
		},
	}
	for _, op := range ops {
		if err := svc.AddOperation(op); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

func bufferOf(store *Buffers, name string) (*parallel.Queue[string], error) {
	store.mu.Lock()
	defer store.mu.Unlock()
	q, ok := store.bufs[name]
	if !ok {
		return nil, fmt.Errorf("no buffer %q", name)
	}
	return q, nil
}
