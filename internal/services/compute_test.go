package services

import (
	"os"
	"path/filepath"
	"testing"

	"soc/internal/core"
	"soc/internal/wsdl"
)

func TestComputeCollatz(t *testing.T) {
	svc, err := NewCompute()
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "CollatzSteps", core.Values{"n": 27})
	if err != nil || out.Int("steps") != 111 {
		t.Errorf("CollatzSteps(27): %v %v, want 111 steps", out, err)
	}
	out, err = svc.Invoke(ctx, "CollatzValidate", core.Values{"low": 1, "high": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int("verified") != 999 || out.Int("maxAt") != 871 || out.Int("maxSteps") != 178 {
		t.Errorf("CollatzValidate[1,1000): %v", out)
	}
	for _, bad := range []core.Values{
		{"n": 0},
		{"low": 0, "high": 10},
		{"low": 10, "high": 5},
		{"low": 1, "high": 10000000},
	} {
		op := "CollatzValidate"
		if _, ok := bad["n"]; ok {
			op = "CollatzSteps"
		}
		if _, err := svc.Invoke(ctx, op, bad); err == nil {
			t.Errorf("%s%v accepted", op, bad)
		}
	}
}

func TestComputeMaze(t *testing.T) {
	svc, err := NewCompute()
	if err != nil {
		t.Fatal(err)
	}
	gen := core.Values{"width": 8, "height": 8, "algorithm": "dfs", "seed": 42}
	out, err := svc.Invoke(ctx, "MazeGenerate", gen)
	if err != nil {
		t.Fatal(err)
	}
	if out.Str("maze") == "" || out.Int("pathLength") < 14 {
		t.Fatalf("MazeGenerate: pathLength=%d", out.Int("pathLength"))
	}
	// Determinism in seed is what makes the operation idempotent.
	again, err := svc.Invoke(ctx, "MazeGenerate", gen)
	if err != nil || again.Str("maze") != out.Str("maze") {
		t.Errorf("same seed produced a different maze")
	}
	// Scoring the generated document agrees with the generator.
	score, err := svc.Invoke(ctx, "MazeScore", core.Values{"maze": out.Str("maze")})
	if err != nil || !score.Bool("solvable") || score.Int("pathLength") != out.Int("pathLength") {
		t.Errorf("MazeScore: %v %v, want solvable path %d", score, err, out.Int("pathLength"))
	}
	if _, err := svc.Invoke(ctx, "MazeGenerate", core.Values{"width": 500, "height": 8, "algorithm": "dfs"}); err == nil {
		t.Error("oversized maze accepted")
	}
	if _, err := svc.Invoke(ctx, "MazeGenerate", core.Values{"width": 8, "height": 8, "algorithm": "bogo"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := svc.Invoke(ctx, "MazeScore", core.Values{"maze": "not a maze"}); err == nil {
		t.Error("garbage maze document accepted")
	}
}

func TestComputeOperationsAllIdempotent(t *testing.T) {
	svc, err := NewCompute()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range svc.Operations() {
		if !op.Idempotent {
			t.Errorf("%s is pure but not marked Idempotent", op.Name)
		}
	}
}

// TestContractsUnchangedByCompute pins down that adding the Compute
// service (and its Idempotent markings — a runtime caching concern, not
// a contract one) left every pre-existing golden WSDL byte-identical:
// each catalog service's freshly rendered contract must equal the
// committed contracts/<Name>.wsdl.
func TestContractsUnchangedByCompute(t *testing.T) {
	cat, err := NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range cat.Services {
		doc, err := wsdl.Generate(svc, "http://localhost/services/"+svc.Name+"/soap")
		if err != nil {
			t.Fatalf("generate %s: %v", svc.Name, err)
		}
		path := filepath.Join("..", "..", "contracts", svc.Name+".wsdl")
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v (run `make contracts`)", path, err)
		}
		if string(committed) != string(doc) {
			t.Errorf("%s drifted from the committed contract; run `make contracts`", svc.Name)
		}
	}
}
