package services

import (
	"context"
	"encoding/base64"
	"fmt"
	"strings"
	"sync"

	"soc/internal/core"
	"soc/internal/security"
	"soc/internal/webapp"
)

// NewDynamicImage builds the dynamic image generation service: labeled
// values in, base64 PNG bar chart out.
func NewDynamicImage() (*core.Service, error) {
	svc, err := core.NewService("DynamicImage", NamespacePrefix+"dynamicimage",
		"server-side chart rendering: labels and values in, base64 PNG out")
	if err != nil {
		return nil, err
	}
	svc.Category = "media/charts"
	err = svc.AddOperation(core.Operation{
		Name:       "BarChart",
		Idempotent: true,
		Doc:        "renders comma-separated labels and values as a bar chart PNG",
		Input: []core.Param{
			{Name: "title", Type: core.String},
			{Name: "labels", Type: core.String, Doc: "comma-separated"},
			{Name: "values", Type: core.String, Doc: "comma-separated floats"},
			{Name: "width", Type: core.Int, Optional: true},
			{Name: "height", Type: core.Int, Optional: true},
		},
		Output: []core.Param{{Name: "png", Type: core.String, Doc: "base64"}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			labels := splitCSV(in.Str("labels"))
			var values []float64
			for _, v := range splitCSV(in.Str("values")) {
				var f float64
				if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
					return nil, fmt.Errorf("bad value %q", v)
				}
				values = append(values, f)
			}
			w, h := int(in.Int("width")), int(in.Int("height"))
			if w == 0 {
				w = 400
			}
			if h == 0 {
				h = 240
			}
			canvas, err := webapp.BarChart(in.Str("title"), labels, values, w, h)
			if err != nil {
				return nil, err
			}
			png, err := canvas.PNG()
			if err != nil {
				return nil, err
			}
			return core.Values{"png": base64.StdEncoding.EncodeToString(png)}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Challenges stores outstanding captcha challenges.
type Challenges struct {
	mu      sync.Mutex
	nextID  int64
	answers map[int64]string
}

// NewChallenges returns an empty challenge store.
func NewChallenges() *Challenges { return &Challenges{answers: map[int64]string{}} }

// NewImageVerifier builds the random-string-image (captcha) service.
func NewImageVerifier(store *Challenges) (*core.Service, error) {
	if store == nil {
		return nil, fmt.Errorf("services: nil challenge store")
	}
	svc, err := core.NewService("ImageVerifier", NamespacePrefix+"imageverifier",
		"captcha: random string rendered as a distorted image, verified once")
	if err != nil {
		return nil, err
	}
	svc.Category = "security/captcha"
	err = svc.AddOperation(core.Operation{
		Name:  "NewChallenge",
		Doc:   "creates a challenge; returns its id and a base64 PNG",
		Input: []core.Param{{Name: "length", Type: core.Int, Optional: true}},
		Output: []core.Param{
			{Name: "challenge", Type: core.Int},
			{Name: "png", Type: core.String},
		},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			n := in.Int("length")
			if n == 0 {
				n = 5
			}
			if n < 3 || n > 10 {
				return nil, fmt.Errorf("length %d out of [3,10]", n)
			}
			// Unambiguous alphabet (no 0/O, 1/I).
			text, err := security.RandomString(int(n), "ABCDEFGHJKLMNPQRSTUVWXYZ23456789")
			if err != nil {
				return nil, err
			}
			store.mu.Lock()
			store.nextID++
			id := store.nextID
			store.answers[id] = text
			store.mu.Unlock()
			canvas, err := webapp.Captcha(text, id)
			if err != nil {
				return nil, err
			}
			png, err := canvas.PNG()
			if err != nil {
				return nil, err
			}
			return core.Values{
				"challenge": id,
				"png":       base64.StdEncoding.EncodeToString(png),
			}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name: "Verify",
		Doc:  "checks an answer; each challenge verifies at most once",
		Input: []core.Param{
			{Name: "challenge", Type: core.Int},
			{Name: "answer", Type: core.String},
		},
		Output: []core.Param{{Name: "ok", Type: core.Bool}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			store.mu.Lock()
			defer store.mu.Unlock()
			want, ok := store.answers[in.Int("challenge")]
			if !ok {
				return nil, fmt.Errorf("no challenge %d", in.Int("challenge"))
			}
			delete(store.answers, in.Int("challenge"))
			match := strings.EqualFold(strings.TrimSpace(in.Str("answer")), want)
			return core.Values{"ok": match}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}
