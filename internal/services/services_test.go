package services

import (
	"context"
	"encoding/base64"
	"strings"
	"testing"

	"soc/internal/core"
	"soc/internal/xmlstore"
)

var ctx = context.Background()

func TestEncryptionService(t *testing.T) {
	svc, err := NewEncryption()
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "Encrypt", core.Values{"passphrase": "k", "plaintext": "hello soc"})
	if err != nil {
		t.Fatal(err)
	}
	ct := out.Str("ciphertext")
	if ct == "" || ct == "hello soc" {
		t.Fatalf("ciphertext = %q", ct)
	}
	back, err := svc.Invoke(ctx, "Decrypt", core.Values{"passphrase": "k", "ciphertext": ct})
	if err != nil || back.Str("plaintext") != "hello soc" {
		t.Errorf("decrypt: %v %v", back, err)
	}
	if _, err := svc.Invoke(ctx, "Decrypt", core.Values{"passphrase": "wrong", "ciphertext": ct}); err == nil {
		t.Error("wrong passphrase accepted")
	}
	if _, err := svc.Invoke(ctx, "Encrypt", core.Values{"passphrase": "", "plaintext": "x"}); err == nil {
		t.Error("empty passphrase accepted")
	}
}

func TestRandomStringService(t *testing.T) {
	svc, err := NewRandomString()
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "Generate", core.Values{"length": 16})
	if err != nil || len(out.Str("value")) != 16 {
		t.Errorf("Generate: %v %v", out, err)
	}
	if _, err := svc.Invoke(ctx, "Generate", core.Values{"length": 0}); err == nil {
		t.Error("length 0 accepted")
	}
	pw, err := svc.Invoke(ctx, "StrongPassword", core.Values{"length": 12})
	if err != nil {
		t.Fatal(err)
	}
	check, err := svc.Invoke(ctx, "CheckStrength", core.Values{"password": pw.Str("password")})
	if err != nil || !check.Bool("strong") {
		t.Errorf("generated password weak: %v %v", check, err)
	}
	weak, err := svc.Invoke(ctx, "CheckStrength", core.Values{"password": "abc"})
	if err != nil || weak.Bool("strong") || weak.Str("reason") == "" {
		t.Errorf("weak check: %v %v", weak, err)
	}
	if _, err := svc.Invoke(ctx, "StrongPassword", core.Values{"length": 4}); err == nil {
		t.Error("too-short strong password accepted")
	}
}

func TestAccessControlService(t *testing.T) {
	cat, err := NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := findService(t, cat, "AccessControl")
	// instructor has admin (seeded).
	out, err := svc.Invoke(ctx, "Check", core.Values{"user": "instructor", "permission": "grades:write"})
	if err != nil || !out.Bool("allowed") {
		t.Errorf("instructor: %v %v", out, err)
	}
	out, err = svc.Invoke(ctx, "Check", core.Values{"user": "randomkid", "permission": "grades:write"})
	if err != nil || out.Bool("allowed") || out.Str("reason") == "" {
		t.Errorf("denied: %v %v", out, err)
	}
	if _, err := svc.Invoke(ctx, "AssignRole", core.Values{"user": "randomkid", "role": "student"}); err != nil {
		t.Fatal(err)
	}
	out, _ = svc.Invoke(ctx, "Check", core.Values{"user": "randomkid", "permission": "services:invoke"})
	if !out.Bool("allowed") {
		t.Error("assigned role not effective")
	}
	if cat.Audit.Denials() == 0 {
		t.Error("denial not audited")
	}
	if _, err := svc.Invoke(ctx, "AssignRole", core.Values{"user": "", "role": ""}); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestGuessingGameService(t *testing.T) {
	svc, err := NewGuessingGame(NewGuessingGames())
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "NewGame", core.Values{"low": 1, "high": 100, "seed": 7})
	if err != nil {
		t.Fatal(err)
	}
	game := out.Int("game")
	// Binary search must find the secret within 7 guesses.
	lo, hi := int64(1), int64(100)
	var attempts int64
	for i := 0; i < 8; i++ {
		mid := (lo + hi) / 2
		res, err := svc.Invoke(ctx, "Guess", core.Values{"game": game, "guess": mid})
		if err != nil {
			t.Fatal(err)
		}
		attempts = res.Int("attempts")
		switch res.Str("hint") {
		case "correct":
			if !res.Bool("done") {
				t.Error("correct but not done")
			}
			if attempts > 7 {
				t.Errorf("binary search took %d attempts", attempts)
			}
			// Finished game rejects further guesses.
			if _, err := svc.Invoke(ctx, "Guess", core.Values{"game": game, "guess": mid}); err == nil {
				t.Error("finished game accepted a guess")
			}
			return
		case "higher":
			lo = mid + 1
		case "lower":
			hi = mid - 1
		}
	}
	t.Fatalf("binary search failed after %d attempts", attempts)
}

func TestGuessingGameValidation(t *testing.T) {
	svc, _ := NewGuessingGame(NewGuessingGames())
	if _, err := svc.Invoke(ctx, "NewGame", core.Values{"low": 5, "high": 5}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := svc.Invoke(ctx, "Guess", core.Values{"game": 99, "guess": 1}); err == nil {
		t.Error("missing game accepted")
	}
	out, _ := svc.Invoke(ctx, "NewGame", core.Values{"low": 1, "high": 10})
	if _, err := svc.Invoke(ctx, "Guess", core.Values{"game": out.Int("game"), "guess": 11}); err == nil {
		t.Error("out-of-range guess accepted")
	}
}

func TestDynamicImageService(t *testing.T) {
	svc, err := NewDynamicImage()
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "BarChart", core.Values{
		"title":  "Enrollment",
		"labels": "2006,2010,2013",
		"values": "39,76,134",
	})
	if err != nil {
		t.Fatal(err)
	}
	png, err := base64.StdEncoding.DecodeString(out.Str("png"))
	if err != nil || len(png) < 8 || string(png[1:4]) != "PNG" {
		t.Errorf("not a png: %v len=%d", err, len(png))
	}
	if _, err := svc.Invoke(ctx, "BarChart", core.Values{
		"title": "bad", "labels": "a,b", "values": "1",
	}); err == nil {
		t.Error("mismatched labels/values accepted")
	}
	if _, err := svc.Invoke(ctx, "BarChart", core.Values{
		"title": "bad", "labels": "a", "values": "xyz",
	}); err == nil {
		t.Error("non-numeric value accepted")
	}
}

func TestImageVerifierService(t *testing.T) {
	store := NewChallenges()
	svc, err := NewImageVerifier(store)
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "NewChallenge", core.Values{"length": 6})
	if err != nil {
		t.Fatal(err)
	}
	id := out.Int("challenge")
	if _, err := base64.StdEncoding.DecodeString(out.Str("png")); err != nil {
		t.Errorf("bad png encoding: %v", err)
	}
	// Peek at the answer (white-box) to verify the positive path.
	store.mu.Lock()
	answer := store.answers[id]
	store.mu.Unlock()
	res, err := svc.Invoke(ctx, "Verify", core.Values{"challenge": id, "answer": strings.ToLower(answer)})
	if err != nil || !res.Bool("ok") {
		t.Errorf("correct answer rejected: %v %v", res, err)
	}
	// One-shot: second verify fails.
	if _, err := svc.Invoke(ctx, "Verify", core.Values{"challenge": id, "answer": answer}); err == nil {
		t.Error("challenge verified twice")
	}
	// Wrong answer path.
	out2, _ := svc.Invoke(ctx, "NewChallenge", core.Values{})
	res2, err := svc.Invoke(ctx, "Verify", core.Values{"challenge": out2.Int("challenge"), "answer": "nope"})
	if err != nil || res2.Bool("ok") {
		t.Errorf("wrong answer accepted: %v %v", res2, err)
	}
	if _, err := svc.Invoke(ctx, "NewChallenge", core.Values{"length": 50}); err == nil {
		t.Error("huge challenge accepted")
	}
}

func TestCachingService(t *testing.T) {
	cat, err := NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := findService(t, cat, "Caching")
	if _, err := svc.Invoke(ctx, "Put", core.Values{"key": "k", "value": "v", "dependency": "grp"}); err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "Get", core.Values{"key": "k"})
	if err != nil || !out.Bool("found") || out.Str("value") != "v" {
		t.Errorf("Get: %v %v", out, err)
	}
	miss, _ := svc.Invoke(ctx, "Get", core.Values{"key": "none"})
	if miss.Bool("found") {
		t.Error("phantom hit")
	}
	drop, err := svc.Invoke(ctx, "InvalidateDependency", core.Values{"dependency": "grp"})
	if err != nil || drop.Int("dropped") != 1 {
		t.Errorf("invalidate: %v %v", drop, err)
	}
	stats, err := svc.Invoke(ctx, "Stats", nil)
	if err != nil || stats.Int("hits") != 1 || stats.Int("misses") != 1 {
		t.Errorf("stats: %v %v", stats, err)
	}
	if _, err := svc.Invoke(ctx, "Put", core.Values{"key": "", "value": "v"}); err == nil {
		t.Error("empty key accepted")
	}
}

func TestShoppingCartService(t *testing.T) {
	svc, err := NewShoppingCart(NewCarts())
	if err != nil {
		t.Fatal(err)
	}
	out, err := svc.Invoke(ctx, "CreateCart", nil)
	if err != nil {
		t.Fatal(err)
	}
	cart := out.Int("cart")
	if _, err := svc.Invoke(ctx, "AddItem", core.Values{"cart": cart, "item": "textbook", "quantity": 2, "price": 79.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "AddItem", core.Values{"cart": cart, "item": "robot-kit", "quantity": 1, "price": 199.0}); err != nil {
		t.Fatal(err)
	}
	total, err := svc.Invoke(ctx, "Total", core.Values{"cart": cart})
	if err != nil || total.Float("total") != 2*79.5+199 || total.Int("items") != 3 {
		t.Errorf("total: %v %v", total, err)
	}
	if _, err := svc.Invoke(ctx, "RemoveItem", core.Values{"cart": cart, "item": "textbook"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "RemoveItem", core.Values{"cart": cart, "item": "ghost"}); err == nil {
		t.Error("removing missing item accepted")
	}
	checkout, err := svc.Invoke(ctx, "Checkout", core.Values{"cart": cart})
	if err != nil || checkout.Float("total") != 199 {
		t.Errorf("checkout: %v %v", checkout, err)
	}
	if _, err := svc.Invoke(ctx, "Total", core.Values{"cart": cart}); err == nil {
		t.Error("cart usable after checkout")
	}
	empty, _ := svc.Invoke(ctx, "CreateCart", nil)
	if _, err := svc.Invoke(ctx, "Checkout", core.Values{"cart": empty.Int("cart")}); err == nil {
		t.Error("empty checkout accepted")
	}
	if _, err := svc.Invoke(ctx, "AddItem", core.Values{"cart": cart, "item": "", "quantity": 1, "price": 1.0}); err == nil {
		t.Error("empty item accepted")
	}
}

func TestMessageBufferService(t *testing.T) {
	svc, err := NewMessageBuffer(NewBuffers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "CreateBuffer", core.Values{"name": "inbox", "capacity": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "CreateBuffer", core.Values{"name": "inbox", "capacity": 2}); err == nil {
		t.Error("duplicate buffer accepted")
	}
	send := func(msg string) core.Values {
		out, err := svc.Invoke(ctx, "Send", core.Values{"name": "inbox", "message": msg})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := send("a"); !out.Bool("accepted") || out.Int("size") != 1 {
		t.Errorf("send a: %v", out)
	}
	send("b")
	if out := send("c"); out.Bool("accepted") {
		t.Errorf("overfull send accepted: %v", out)
	}
	recv, err := svc.Invoke(ctx, "Receive", core.Values{"name": "inbox"})
	if err != nil || !recv.Bool("found") || recv.Str("message") != "a" {
		t.Errorf("receive: %v %v", recv, err)
	}
	size, err := svc.Invoke(ctx, "Size", core.Values{"name": "inbox"})
	if err != nil || size.Int("size") != 1 || size.Int("capacity") != 2 {
		t.Errorf("size: %v %v", size, err)
	}
	_, _ = svc.Invoke(ctx, "Receive", core.Values{"name": "inbox"})
	empty, _ := svc.Invoke(ctx, "Receive", core.Values{"name": "inbox"})
	if empty.Bool("found") {
		t.Error("phantom message")
	}
	if _, err := svc.Invoke(ctx, "Send", core.Values{"name": "ghost", "message": "x"}); err == nil {
		t.Error("missing buffer accepted")
	}
	if _, err := svc.Invoke(ctx, "CreateBuffer", core.Values{"name": "bad", "capacity": 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestCreditScoreDeterministic(t *testing.T) {
	svc, err := NewCreditScore()
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.Invoke(ctx, "Score", core.Values{"ssn": "123-45-6789"})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := svc.Invoke(ctx, "Score", core.Values{"ssn": "123-45-6789"})
	if a.Int("score") != b.Int("score") {
		t.Error("score not deterministic")
	}
	if a.Int("score") < 300 || a.Int("score") > 850 {
		t.Errorf("score %d out of range", a.Int("score"))
	}
	if _, err := svc.Invoke(ctx, "Score", core.Values{"ssn": "123456789"}); err == nil {
		t.Error("bad ssn accepted")
	}
}

// findSSN searches for an SSN whose synthetic score satisfies pred —
// tests need both approvable and deniable applicants.
func findSSN(t *testing.T, pred func(int64) bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		ssn := strings.Join([]string{
			padded(i%900+100, 3), padded(i%90+10, 2), padded(i%9000+1000, 4),
		}, "-")
		score, err := CreditScoreOf(ssn)
		if err != nil {
			t.Fatal(err)
		}
		if pred(score) {
			return ssn
		}
	}
	t.Fatal("no SSN found for predicate")
	return ""
}

func padded(n, width int) string {
	s := strings.Repeat("0", width) + itoa(n)
	return s[len(s)-width:]
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestMortgageApprovalFlow(t *testing.T) {
	store, err := xmlstore.Open(t.TempDir()+"/account.xml", "accounts", "account")
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(_ context.Context, ssn string) (int64, error) { return CreditScoreOf(ssn) }
	svc, err := NewMortgage(store, lookup)
	if err != nil {
		t.Fatal(err)
	}
	goodSSN := findSSN(t, func(s int64) bool { return s >= ApprovalThreshold })
	badSSN := findSSN(t, func(s int64) bool { return s < ApprovalThreshold })

	out, err := svc.Invoke(ctx, "Apply", core.Values{
		"name": "Ada", "ssn": goodSSN, "income": 90000.0, "amount": 300000.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Bool("approved") || out.Str("userId") == "" {
		t.Fatalf("approval: %v", out)
	}
	// Persisted to account.xml.
	status, err := svc.Invoke(ctx, "Status", core.Values{"userId": out.Str("userId")})
	if err != nil || status.Str("state") != "approved" || status.Str("name") != "Ada" {
		t.Errorf("status: %v %v", status, err)
	}
	// Same SSN again: denied.
	dup, err := svc.Invoke(ctx, "Apply", core.Values{
		"name": "Ada2", "ssn": goodSSN, "income": 90000.0, "amount": 100000.0,
	})
	if err != nil || dup.Bool("approved") || !strings.Contains(dup.Str("reason"), "already exists") {
		t.Errorf("duplicate: %v %v", dup, err)
	}
	// Low credit: denied with reason.
	denied, err := svc.Invoke(ctx, "Apply", core.Values{
		"name": "Bob", "ssn": badSSN, "income": 90000.0, "amount": 100000.0,
	})
	if err != nil || denied.Bool("approved") || !strings.Contains(denied.Str("reason"), "credit score") {
		t.Errorf("low credit: %v %v", denied, err)
	}
	// Excessive amount: denied.
	tooBig, err := svc.Invoke(ctx, "Apply", core.Values{
		"name": "Eve", "ssn": findSSN(t, func(s int64) bool { return s >= ApprovalThreshold && s != 0 }),
		"income": 50000.0, "amount": 10000000.0,
	})
	if err != nil || tooBig.Bool("approved") || !strings.Contains(tooBig.Str("reason"), "income") {
		t.Errorf("too big: %v %v", tooBig, err)
	}
	// Validation errors.
	if _, err := svc.Invoke(ctx, "Apply", core.Values{"name": "", "ssn": goodSSN, "income": 1.0, "amount": 1.0}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := svc.Invoke(ctx, "Apply", core.Values{"name": "x", "ssn": "nope", "income": 1.0, "amount": 1.0}); err == nil {
		t.Error("bad ssn accepted")
	}
	if _, err := svc.Invoke(ctx, "Status", core.Values{"userId": "U99999"}); err == nil {
		t.Error("missing user accepted")
	}
}

func findService(t *testing.T, cat *Catalog, name string) *core.Service {
	t.Helper()
	for _, svc := range cat.Services {
		if svc.Name == name {
			return svc
		}
	}
	t.Fatalf("catalog missing %s", name)
	return nil
}

func TestCatalogAssembly(t *testing.T) {
	cat, err := NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Services) != 12 {
		t.Errorf("catalog has %d services, want 12", len(cat.Services))
	}
	want := []string{
		"Encryption", "RandomString", "AccessControl", "GuessingGame",
		"DynamicImage", "ImageVerifier", "Caching", "ShoppingCart",
		"MessageBuffer", "CreditScore", "Mortgage", "Compute",
	}
	for _, name := range want {
		findService(t, cat, name)
	}
	if _, err := NewCatalog(""); err == nil {
		t.Error("empty dataDir accepted")
	}
}

func TestCatalogMortgageUsesCreditService(t *testing.T) {
	cat, err := NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mortgage := findService(t, cat, "Mortgage")
	ssn := findSSN(t, func(s int64) bool { return s >= ApprovalThreshold })
	out, err := mortgage.Invoke(ctx, "Apply", core.Values{
		"name": "Composed", "ssn": ssn, "income": 80000.0, "amount": 200000.0,
	})
	if err != nil || !out.Bool("approved") {
		t.Errorf("composed apply: %v %v", out, err)
	}
	wantScore, _ := CreditScoreOf(ssn)
	if out.Int("score") != wantScore {
		t.Errorf("score %d != credit service %d", out.Int("score"), wantScore)
	}
}
