package services

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"regexp"
	"strconv"

	"soc/internal/core"
	"soc/internal/xmlstore"
)

// ssnRE validates the 123-45-6789 form used by the course project.
var ssnRE = regexp.MustCompile(`^\d{3}-\d{2}-\d{4}$`)

// CreditScoreOf is the deterministic synthetic credit bureau: a hash of
// the SSN mapped into [300, 850]. The paper's project calls an external
// credit-score web service; this substitution keeps the same call pattern
// with reproducible outcomes (documented in DESIGN.md).
func CreditScoreOf(ssn string) (int64, error) {
	if !ssnRE.MatchString(ssn) {
		return 0, fmt.Errorf("invalid SSN format")
	}
	sum := sha256.Sum256([]byte("soc-credit:" + ssn))
	v := binary.BigEndian.Uint64(sum[:8])
	return 300 + int64(v%551), nil // 300..850
}

// NewCreditScore builds the credit-score service the mortgage provider
// consumes (the "Credit score Web service" box of Figure 4).
func NewCreditScore() (*core.Service, error) {
	svc, err := core.NewService("CreditScore", NamespacePrefix+"creditscore",
		"synthetic credit bureau: deterministic score per SSN in [300,850]")
	if err != nil {
		return nil, err
	}
	svc.Category = "finance/credit"
	err = svc.AddOperation(core.Operation{
		Name:       "Score",
		Idempotent: true,
		Input:      []core.Param{{Name: "ssn", Type: core.String}},
		Output:     []core.Param{{Name: "score", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			score, err := CreditScoreOf(in.Str("ssn"))
			if err != nil {
				return nil, err
			}
			return core.Values{"score": score}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}

// ScoreLookup abstracts where the mortgage service gets credit scores —
// in-process, or over the wire through a host client.
type ScoreLookup func(ctx context.Context, ssn string) (int64, error)

// ApprovalThreshold is the minimum credit score the Figure 4 flow
// approves.
const ApprovalThreshold = 620

// MaxDebtToIncome caps the loan at this multiple of annual income.
const MaxDebtToIncome = 5.0

// NewMortgage builds the mortgage application/approval service of
// Figure 4: check credit (via the provided lookup), decide, persist
// approved applications to the XML account store, and issue user ids.
func NewMortgage(store *xmlstore.Store, lookup ScoreLookup) (*core.Service, error) {
	if store == nil || lookup == nil {
		return nil, fmt.Errorf("services: mortgage needs store and score lookup")
	}
	svc, err := core.NewService("Mortgage", NamespacePrefix+"mortgage",
		"mortgage application and approval backed by the credit-score service")
	if err != nil {
		return nil, err
	}
	svc.Category = "finance/lending"
	err = svc.AddOperation(core.Operation{
		Name: "Apply",
		Doc:  "submits an application; approved applicants receive a user id",
		Input: []core.Param{
			{Name: "name", Type: core.String},
			{Name: "ssn", Type: core.String},
			{Name: "income", Type: core.Float, Doc: "annual income"},
			{Name: "amount", Type: core.Float, Doc: "requested loan"},
		},
		Output: []core.Param{
			{Name: "approved", Type: core.Bool},
			{Name: "userId", Type: core.String},
			{Name: "reason", Type: core.String},
			{Name: "score", Type: core.Int},
		},
		Handler: func(ctx context.Context, in core.Values) (core.Values, error) {
			if in.Str("name") == "" {
				return nil, fmt.Errorf("name required")
			}
			if in.Float("income") <= 0 || in.Float("amount") <= 0 {
				return nil, fmt.Errorf("income and amount must be positive")
			}
			score, err := lookup(ctx, in.Str("ssn"))
			if err != nil {
				return nil, fmt.Errorf("credit check: %v", err)
			}
			deny := func(reason string) (core.Values, error) {
				return core.Values{"approved": false, "userId": "", "reason": reason, "score": score}, nil
			}
			if score < ApprovalThreshold {
				return deny(fmt.Sprintf("credit score %d below %d", score, ApprovalThreshold))
			}
			if in.Float("amount") > MaxDebtToIncome*in.Float("income") {
				return deny(fmt.Sprintf("amount exceeds %.0fx income", MaxDebtToIncome))
			}
			if existing := store.Find("ssn", in.Str("ssn")); len(existing) > 0 {
				return deny("an application for this SSN already exists")
			}
			userID := fmt.Sprintf("U%05d", store.Len()+1)
			err = store.Insert(xmlstore.Record{
				ID: userID,
				Fields: map[string]string{
					"name":   in.Str("name"),
					"ssn":    in.Str("ssn"),
					"income": strconv.FormatFloat(in.Float("income"), 'f', 2, 64),
					"amount": strconv.FormatFloat(in.Float("amount"), 'f', 2, 64),
					"score":  strconv.FormatInt(score, 10),
					"state":  "approved",
				},
			})
			if err != nil {
				return nil, fmt.Errorf("persisting application: %v", err)
			}
			return core.Values{"approved": true, "userId": userID, "reason": "", "score": score}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	err = svc.AddOperation(core.Operation{
		Name:   "Status",
		Doc:    "reports the stored application state for a user id",
		Input:  []core.Param{{Name: "userId", Type: core.String}},
		Output: []core.Param{{Name: "state", Type: core.String}, {Name: "name", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			rec, err := store.Get(in.Str("userId"))
			if err != nil {
				return nil, err
			}
			return core.Values{"state": rec.Fields["state"], "name": rec.Fields["name"]}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return svc, nil
}
