package soc

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/reliability"
	"soc/internal/workflow"
)

// TestIntegrationPanicContainment proves a panicking service handler is
// contained by the host's recovery middleware: the client sees a 500
// problem document and the server keeps answering.
func TestIntegrationPanicContainment(t *testing.T) {
	svc, err := core.NewService("Fragile", "http://soc.example/fragile", "")
	if err != nil {
		t.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:  "Explode",
		Input: []core.Param{{Name: "really", Type: core.Bool, Optional: true}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			if in.Bool("really") {
				panic("handler bug")
			}
			return core.Values{}, nil
		},
	})
	h := host.New()
	// Cache enabled but inert: Explode is not idempotent, so the panic
	// path is exercised with the cache middleware in place.
	h.UseResponseCache(32, time.Minute)
	h.MustMount(svc)
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)
	ctx := context.Background()

	_, err = client.Call(ctx, "Fragile", "Explode", core.Values{"really": true})
	if err == nil {
		t.Fatal("panic produced a success")
	}
	// The server must survive and keep serving.
	if _, err := client.Call(ctx, "Fragile", "Explode", core.Values{"really": false}); err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
}

// TestIntegrationReliableComposition wraps a workflow's service invoker
// with retry + circuit breaking: a transiently failing provider is masked
// inside the composition — the dependability unit meeting the
// orchestration unit.
func TestIntegrationReliableComposition(t *testing.T) {
	var calls int64
	flaky, err := core.NewService("Flaky", "http://soc.example/flaky", "")
	if err != nil {
		t.Fatal(err)
	}
	flaky.MustAddOperation(core.Operation{
		Name:   "Work",
		Output: []core.Param{{Name: "n", Type: core.Int}},
		Handler: func(context.Context, core.Values) (core.Values, error) {
			// Fails twice, then succeeds (a warming-up dependency).
			if atomic.AddInt64(&calls, 1) <= 2 {
				return nil, errors.New("not ready yet")
			}
			return core.Values{"n": int64(42)}, nil
		},
	})
	h := host.New()
	// Non-idempotent Work must bypass the cache, or the retry loop would
	// be fed the first failure forever.
	h.UseResponseCache(32, time.Minute)
	h.MustMount(flaky)
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)

	breaker, err := reliability.NewBreaker(10, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	policy := reliability.RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	reliableInvoker := workflow.InvokerFunc(func(ctx context.Context, svcName, op string, args map[string]any) (map[string]any, error) {
		var out core.Values
		err := reliability.Retry(ctx, policy, func(ctx context.Context) error {
			return breaker.Do(ctx, func(ctx context.Context) error {
				var callErr error
				out, callErr = client.Call(ctx, svcName, op, core.Values(args))
				return callErr
			})
		})
		return map[string]any(out), err
	})

	wf, err := workflow.New("resilient", &workflow.Invoke{
		Label: "work", Service: "Flaky", Operation: "Work",
		Invoker: reliableInvoker,
		Outputs: map[string]string{"n": "result"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := wf.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("composition failed despite retry: %v", err)
	}
	if out["result"] != float64(42) { // JSON numbers decode as float64
		t.Errorf("result = %v (%T)", out["result"], out["result"])
	}
	if atomic.LoadInt64(&calls) != 3 {
		t.Errorf("provider called %d times, want 3 (2 failures + success)", calls)
	}
	if s, f, _ := breaker.Counters(); s != 1 || f != 2 {
		t.Errorf("breaker counters = %d ok, %d failed", s, f)
	}
}
