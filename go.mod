module soc

go 1.22
