// Command tracedemo walks the unified call plane end to end: it serves
// three replicas of a Quote service — two forced to fail, one failing
// only its first call — drives a single resilient call through retry and
// failover, repeats an idempotent call so the response cache answers it,
// then merges the client's and every host's span rings and prints the
// reassembled trace trees. The output is the same rendering GET
// /tracez?format=tree serves on a live host.
//
//	go run ./examples/tracedemo
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/host"
	"soc/internal/reliability"
	"soc/internal/telemetry"
)

func newQuoteHost(plan faultinject.Plan) (*host.Host, error) {
	svc, err := core.NewService("Quote", "http://soc.example/quote", "trace demo target")
	if err != nil {
		return nil, err
	}
	svc.MustAddOperation(core.Operation{
		Name:       "Price",
		Idempotent: true,
		Input:      []core.Param{{Name: "units", Type: core.Int}},
		Output:     []core.Param{{Name: "total", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"total": in.Int("units") * 7}, nil
		},
	})
	h := host.New()
	inj, err := faultinject.New(plan)
	if err != nil {
		return nil, err
	}
	inj.Tracer = h.Tracer()
	h.Use(inj.Middleware())
	h.MustMount(svc)
	h.UseResponseCache(64, time.Minute)
	return h, nil
}

func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	ctx := context.Background()
	alwaysFail := faultinject.Plan{Rules: map[string]faultinject.Rule{
		"Quote.Price": {ErrorRate: 1},
	}}
	// The burst window forces the negligible base rate to certainty for
	// exactly the first call, so the demo replays the same trace each run.
	failOnce := faultinject.Plan{Rules: map[string]faultinject.Rule{
		"Quote.Price": {ErrorRate: 1e-12, Burst: faultinject.Burst{Every: 1 << 30, Length: 1}},
	}}

	hosts := make([]*host.Host, 0, 3)
	urls := make([]string, 0, 3)
	for _, plan := range []faultinject.Plan{alwaysFail, alwaysFail, failOnce} {
		h, err := newQuoteHost(plan)
		if err != nil {
			return err
		}
		u, stop, err := serve(h)
		if err != nil {
			return err
		}
		defer stop()
		hosts = append(hosts, h)
		urls = append(urls, u)
	}
	fmt.Printf("replicas: A=%s (always faults)  B=%s (always faults)  C=%s (faults once)\n\n", urls[0], urls[1], urls[2])

	tracer := telemetry.NewTracer(256)
	rc, err := host.NewResilientClient(host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
		},
		Tracer: tracer,
	}, urls...)
	if err != nil {
		return err
	}

	// One call, six attempts: A err, B err, C err, retry, A err, B err, C ok.
	out, err := rc.Call(ctx, "Quote", "Price", core.Values{"units": 6})
	if err != nil {
		return fmt.Errorf("resilient call: %w", err)
	}
	fmt.Printf("resilient call survived the fault storm: total=%v\n", out["total"])

	// Repeat the now-warm idempotent call: the cache answers it, which
	// the trace shows as a zero-duration cached span.
	if _, err := rc.Call(ctx, "Quote", "Price", core.Values{"units": 6}); err != nil {
		return fmt.Errorf("cached call: %w", err)
	}
	fmt.Printf("repeat answered from the idempotent-response cache\n\n")

	spans := tracer.Snapshot()
	for _, h := range hosts {
		spans = append(spans, h.Tracer().Snapshot()...)
	}
	fmt.Println(telemetry.FormatTraces(telemetry.BuildTraces(spans)))
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracedemo:", err)
		os.Exit(1)
	}
}
