// Mazerobot: the CSE101 web robotics environment (Figure 1/2) driven
// entirely through the Robot-as-a-Service API — create a maze, inspect it,
// run a student-style drop-down command program, then compare the
// navigation algorithms on the same maze.
package main

import (
	"context"
	"fmt"
	"log"

	"soc/internal/core"
	"soc/internal/maze"
	"soc/internal/nav"
	"soc/internal/robot"
)

const program = `# student program: right-hand wall follower
WHILE NOT_GOAL
  IF RIGHT_OPEN
    RIGHT
    FORWARD
  ELSE
    IF FRONT_OPEN
      FORWARD
    ELSE
      LEFT
    END
  END
END`

func main() {
	ctx := context.Background()
	svc, err := robot.NewService(robot.NewSessions())
	if err != nil {
		log.Fatal(err)
	}

	// Everything below happens through service operations, exactly as
	// the web environment's drop-down UI would call them.
	out, err := svc.Invoke(ctx, "CreateMaze", core.Values{
		"width": 11, "height": 11, "algorithm": "dfs", "seed": 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	session := out.Int("session")

	render, err := svc.Invoke(ctx, "Render", core.Values{"session": session})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(render.Str("maze"))

	sense, err := svc.Invoke(ctx, "Sense", core.Values{"session": session})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors: front=%d left=%d right=%d\n\n",
		sense.Int("front"), sense.Int("left"), sense.Int("right"))

	run, err := svc.Invoke(ctx, "RunProgram", core.Values{
		"session": session, "program": program,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program result: atGoal=%v steps=%d\n\n", run.Bool("atGoal"), run.Int("steps"))

	// Now compare algorithms on fresh copies of the same maze.
	fmt.Println("algorithm comparison on the same maze:")
	for _, alg := range nav.Algorithms() {
		m, err := maze.Generate(11, 11, maze.DFS, 42)
		if err != nil {
			log.Fatal(err)
		}
		r, err := robot.New(m)
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := nav.New(alg, 1)
		if err != nil {
			log.Fatal(err)
		}
		ep, err := nav.Run(ctx, ctrl, r, 50000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s solved=%-5v steps=%4d (optimal %d)\n",
			ep.Algorithm, ep.Solved, ep.Steps, ep.Optimal)
	}
}
