// Mortgage: drives the Figure 4 web application end-to-end as a real HTTP
// client — subscribe, get denied or approved by the credit-score service,
// create a password, and log in.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"os"
	"time"

	"soc/internal/mortgageapp"
	"soc/internal/services"
)

func main() {
	dataDir, err := os.MkdirTemp("", "mortgage-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	app, err := mortgageapp.New(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(app)
	defer server.Close()
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar, Timeout: 30 * time.Second}
	fmt.Println("provider:", server.URL)

	// Find an SSN the synthetic bureau approves.
	ssn := ""
	for a := 100; a < 1000 && ssn == ""; a++ {
		candidate := fmt.Sprintf("%03d-%02d-%04d", a, a%90+10, a*7%9000+1000)
		if score, err := services.CreditScoreOf(candidate); err == nil && score >= services.ApprovalThreshold {
			ssn = candidate
		}
	}

	post := func(path string, form url.Values) map[string]any {
		resp, err := client.PostForm(server.URL+path, form)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var body map[string]any
		_ = json.Unmarshal(data, &body)
		fmt.Printf("POST %-12s -> %d %v\n", path, resp.StatusCode, body)
		return body
	}

	body := post("/subscribe", url.Values{
		"name": {"Ada Lovelace"}, "ssn": {ssn}, "address": {"1 Analytical Way"},
		"dob": {"1985-12-10"}, "income": {"120000"}, "amount": {"400000"},
	})
	userID, _ := body["userId"].(string)
	if userID == "" {
		log.Fatal("application not approved")
	}
	post("/password", url.Values{
		"userId": {userID}, "password": {"Engine1842!"}, "retype": {"Engine1842!"},
	})
	post("/login", url.Values{"userId": {userID}, "password": {"Engine1842!"}})

	resp, err := client.Get(server.URL + "/account/" + userID)
	if err != nil {
		log.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET  /account/%s -> %d %s\n", userID, resp.StatusCode, data)
	fmt.Printf("\naccount.xml lives in %s\n", dataDir)
}
