// Quickstart: the full SOA triangle in one file — define a service,
// host it over SOAP and REST, publish it to a registry, discover it by
// keyword, and consume it through both bindings.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/registry"
)

func main() {
	// 1. Define a service: typed operations with handlers.
	svc, err := core.NewService("Greeter", "http://example.org/greeter", "says hello")
	if err != nil {
		log.Fatal(err)
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Greet",
		Doc:    "greets a person, optionally loudly",
		Input:  []core.Param{{Name: "name", Type: core.String}, {Name: "loud", Type: core.Bool, Optional: true}},
		Output: []core.Param{{Name: "greeting", Type: core.String}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			g := "hello, " + in.Str("name")
			if in.Bool("loud") {
				g = "HELLO, " + in.Str("name") + "!!"
			}
			return core.Values{"greeting": g}, nil
		},
	})

	// 2. Host it: one mount exposes SOAP, REST, and a generated WSDL.
	h := host.New()
	h.MustMount(svc)
	server := httptest.NewServer(h)
	defer server.Close()
	h.BaseURL = server.URL
	fmt.Println("provider:", server.URL)

	// 3. Publish to the broker (service registry).
	reg := registry.New()
	if err := reg.Publish(registry.Entry{
		Name: "Greeter", Namespace: svc.Namespace, Doc: svc.Doc,
		Endpoint: server.URL + "/services/Greeter",
		Bindings: []string{"soap", "rest"}, Operations: []string{"Greet"},
		Provider: "quickstart",
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Discover it like a client that only knows a keyword.
	matches, err := reg.Search("hello greeter", 1)
	if err != nil || len(matches) == 0 {
		log.Fatalf("discovery failed: %v %v", matches, err)
	}
	fmt.Printf("discovered: %s at %s\n", matches[0].Entry.Name, matches[0].Entry.Endpoint)

	// 5. Consume over REST...
	ctx := context.Background()
	client := host.NewClient(server.URL)
	out, err := client.Call(ctx, "Greeter", "Greet", core.Values{"name": "ada"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rest :", out.Str("greeting"))

	// ...and over SOAP.
	soapOut, err := client.CallSOAP(ctx, "Greeter", "Greet", svc.Namespace,
		core.Values{"name": "grace", "loud": true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("soap :", soapOut["greeting"])

	// 6. And read its contract.
	desc, err := client.Describe(ctx, "Greeter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wsdl : service %s with %d operation(s), endpoint %s\n",
		desc.Name, len(desc.Ops), desc.Endpoint)
}
