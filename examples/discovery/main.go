// Discovery: three ways to find a service in the broker — keyword search
// (TF-IDF), quality-weighted search (the consumer-centric answer to the
// paper's complaint that free public services are slow and flaky), and
// semantic matchmaking over an ontology (find by capability, not name).
package main

import (
	"fmt"
	"log"
	"time"

	"soc/internal/ontology"
	"soc/internal/registry"
)

func main() {
	base := registry.New()
	publish := func(name, doc, category string) {
		if err := base.Publish(registry.Entry{
			Name: name, Doc: doc, Category: category,
			Endpoint: "http://venus.example/" + name,
		}); err != nil {
			log.Fatal(err)
		}
	}
	publish("FastLoans", "instant loan quotes with credit check", "finance/lending")
	publish("SlowLoans", "loan quotes with credit check", "finance/lending")
	publish("WeatherNow", "city weather forecasts", "data/weather")

	// 1. Keyword search: pure relevance.
	fmt.Println("keyword search for 'loan credit':")
	matches, err := base.Search("loan credit", 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  %-10s relevance=%.3f\n", m.Entry.Name, m.Score)
	}

	// 2. QoS-weighted search: observed uptime and latency re-rank equally
	// relevant candidates.
	qos := registry.NewQoS(base)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(qos.ReportQoS("FastLoans", registry.QoS{Uptime: 0.99, MeanRTT: 30 * time.Millisecond, Samples: 100}))
	must(qos.ReportQoS("SlowLoans", registry.QoS{Uptime: 0.70, MeanRTT: 900 * time.Millisecond, Samples: 100}))
	fmt.Println("\nQoS-weighted search for 'loan credit':")
	weighted, err := qos.SearchQoS("loan credit", 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range weighted {
		fmt.Printf("  %-10s relevance=%.3f quality=%.2f score=%.3f\n",
			m.Entry.Name, m.Relevance, m.Quality, m.Score)
	}
	fmt.Println("\ndependable (>90% uptime):")
	for _, d := range qos.Dependable(0.9) {
		fmt.Printf("  %s\n", d.Entry.Name)
	}

	// 3. Semantic discovery: ask by capability over a concept hierarchy.
	onto := ontology.NewStore()
	must(onto.Add("LoanQuote", ontology.SubClassOf, "FinancialProduct"))
	must(onto.Add("Forecast", ontology.SubClassOf, "Prediction"))
	sem := registry.NewSemantic(base, onto)
	must(sem.Annotate("FastLoans", []string{"CreditScore"}, []string{"LoanQuote"}))
	must(sem.Annotate("SlowLoans", []string{"CreditScore"}, []string{"LoanQuote"}))
	must(sem.Annotate("WeatherNow", []string{"City"}, []string{"Forecast"}))

	fmt.Println("\nsemantic discovery: 'given a CreditScore, produce any FinancialProduct':")
	found, err := sem.Discover([]string{"CreditScore"}, []string{"FinancialProduct"})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range found {
		fmt.Printf("  %-10s degree=%s\n", m.Entry.Name, m.Degree)
	}
}
