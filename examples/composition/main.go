// Composition: orchestrates repository services with the workflow engine —
// the CSE446 "software integration" exercise. The workflow generates a
// strong password with one service, encrypts it with another, caches the
// ciphertext with a third, and verifies the round trip, with a fault
// handler demonstrating BPEL-style scopes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"soc/internal/core"
	"soc/internal/host"
	"soc/internal/services"
	"soc/internal/workflow"
)

func main() {
	dataDir, err := os.MkdirTemp("", "composition-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	catalog, err := services.NewCatalog(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	h := host.New()
	if err := catalog.MountAll(h); err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)

	// The workflow engine invokes services over their public REST
	// binding — real distributed composition, not function calls.
	invoker := workflow.InvokerFunc(func(ctx context.Context, svc, op string, args map[string]any) (map[string]any, error) {
		out, err := client.Call(ctx, svc, op, core.Values(args))
		return map[string]any(out), err
	})

	wf, err := workflow.New("secure-secret", &workflow.Scope{
		Label: "pipeline",
		Body: &workflow.Sequence{Label: "steps", Steps: []workflow.Activity{
			&workflow.Invoke{
				Label: "generate", Service: "RandomString", Operation: "StrongPassword",
				Invoker: invoker,
				Inputs:  map[string]string{"length": "pwLen"},
				Outputs: map[string]string{"password": "secret"},
			},
			&workflow.Invoke{
				Label: "encrypt", Service: "Encryption", Operation: "Encrypt",
				Invoker: invoker,
				Inputs:  map[string]string{"passphrase": "key", "plaintext": "secret"},
				Outputs: map[string]string{"ciphertext": "sealed"},
			},
			&workflow.Invoke{
				Label: "cache", Service: "Caching", Operation: "Put",
				Invoker: invoker,
				Inputs:  map[string]string{"key": "cacheKey", "value": "sealed"},
			},
			&workflow.Invoke{
				Label: "decrypt", Service: "Encryption", Operation: "Decrypt",
				Invoker: invoker,
				Inputs:  map[string]string{"passphrase": "key", "ciphertext": "sealed"},
				Outputs: map[string]string{"plaintext": "roundTrip"},
			},
			&workflow.Task{Label: "verify", Fn: func(_ context.Context, v *workflow.Vars) error {
				if v.GetString("roundTrip") != v.GetString("secret") {
					return fmt.Errorf("round trip mismatch")
				}
				return nil
			}},
		}},
		OnFault: &workflow.Task{Label: "report", Fn: func(_ context.Context, v *workflow.Vars) error {
			fmt.Println("fault handled:", v.GetString("fault.pipeline"))
			return nil
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	out, trace, err := wf.Run(context.Background(), map[string]any{
		"pwLen": 16, "key": "orchestration-demo-key", "cacheKey": "secret:1",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow trace:")
	for _, name := range trace.Names() {
		fmt.Println("  ", name)
	}
	fmt.Printf("\nsecret round-tripped through 4 service calls: %q\n", out["roundTrip"])

	// Prove the cache service saw it too.
	cached, err := client.Call(context.Background(), "Caching", "Get", core.Values{"key": "secret:1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached ciphertext present: %v\n", cached.Bool("found"))
}
