// Manycore: the CSE445 multithreading unit's performance study — validate
// the Collatz conjecture sequentially, with static partitioning, and with
// TBB-style dynamic scheduling, then project the scaling to 32 cores with
// the virtual-time executor (the paper's Figure 3).
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"soc/internal/collatz"
	"soc/internal/perf"
	"soc/internal/vtime"
)

func main() {
	const lo, hi = 1, 500_001
	fmt.Printf("validating Collatz for [%d, %d) on %d host cores\n\n", lo, hi, runtime.GOMAXPROCS(0))

	seq, err := collatz.ValidateSeq(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d numbers verified, longest trajectory %d steps (at %d)\n\n",
		seq.Verified, seq.MaxSteps, seq.MaxAt)

	// Static vs dynamic scheduling: the irregular trajectory lengths are
	// why dynamic chunking wins.
	workers := runtime.GOMAXPROCS(0)
	measure := func(name string, fn func() (collatz.Result, error)) time.Duration {
		stats, err := perf.Measure(3, func() {
			r, err := fn()
			if err != nil || r.TotalSteps != seq.TotalSteps {
				log.Fatalf("%s: %v", name, err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %v\n", name, stats.Min)
		return stats.Min
	}
	t1 := measure("1-core", func() (collatz.Result, error) { return collatz.ValidateSeq(lo, hi) })
	measure("static", func() (collatz.Result, error) { return collatz.ValidateStatic(lo, hi, workers) })
	td := measure("dynamic", func() (collatz.Result, error) { return collatz.ValidateDynamic(lo, hi, workers) })
	s, _ := perf.Speedup(t1, td)
	e, _ := perf.Efficiency(t1, td, workers)
	fmt.Printf("\ndynamic on %d cores: speedup %.2fx, efficiency %.0f%%\n\n", workers, s, e*100)

	// Virtual-time projection to the paper's 32 cores.
	tasks, err := collatz.Tasks(lo, hi, 64)
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, t := range tasks {
		total += t.Cost
	}
	ex, err := vtime.NewExecutor(vtime.Config{
		DispatchOverhead: 6, CoreStartup: 2000,
		SerialWork: int64(0.025 * float64(total)),
	})
	if err != nil {
		log.Fatal(err)
	}
	points, err := ex.Scaling(tasks, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("virtual-time projection (Figure 3 shape):")
	fmt.Printf("%6s %9s %11s\n", "cores", "speedup", "efficiency")
	for _, pt := range points {
		fmt.Printf("%6d %9.2f %10.1f%%\n", pt.Cores, pt.Speedup, pt.Efficiency*100)
	}
}
