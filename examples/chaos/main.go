// Command chaos demonstrates the dependability stack end to end over
// real HTTP: it serves three replicas of a service — two wrapped in a
// seeded fault injector (30% errors, latency spikes, a little payload
// corruption), one fully down — then compares a naive host.Client
// hammering a single faulty replica against a host.ResilientClient
// with retries, per-replica breakers, a bulkhead, and health-aware
// failover across all three.
//
//	go run ./examples/chaos [-calls 200] [-seed 445]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"soc/internal/core"
	"soc/internal/faultinject"
	"soc/internal/host"
	"soc/internal/reliability"
)

func newTargetHost(seed int64) (*host.Host, *faultinject.Injector, error) {
	svc, err := core.NewService("Target", "http://soc.example/target", "chaos demo target")
	if err != nil {
		return nil, nil, err
	}
	svc.MustAddOperation(core.Operation{
		Name:   "Work",
		Input:  []core.Param{{Name: "x", Type: core.Int}},
		Output: []core.Param{{Name: "y", Type: core.Int}},
		Handler: func(_ context.Context, in core.Values) (core.Values, error) {
			return core.Values{"y": in.Int("x") * 2}, nil
		},
	})
	inj, err := faultinject.New(faultinject.Plan{
		Seed: seed,
		Rules: map[string]faultinject.Rule{
			"Target.Work": {
				ErrorRate:     0.30,
				LatencyRate:   0.20,
				Latency:       5 * time.Millisecond,
				LatencyJitter: 5 * time.Millisecond,
				CorruptRate:   0.05,
			},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	h := host.New()
	h.Use(inj.Middleware())
	h.MustMount(svc)
	return h, inj, nil
}

// serve binds a handler to an ephemeral localhost port and returns its
// base URL plus a stopper.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// deadURL reserves a port, closes it, and returns the now-refusing URL.
func deadURL() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	url := "http://" + ln.Addr().String()
	_ = ln.Close()
	return url, nil
}

func run() error {
	calls := flag.Int("calls", 200, "calls per client")
	seed := flag.Int64("seed", 445, "fault-injection seed (same seed, same faults)")
	flag.Parse()
	ctx := context.Background()

	hostA, injA, err := newTargetHost(*seed)
	if err != nil {
		return err
	}
	urlA, stopA, err := serve(hostA)
	if err != nil {
		return err
	}
	defer stopA()
	hostC, injC, err := newTargetHost(*seed + 1)
	if err != nil {
		return err
	}
	urlC, stopC, err := serve(hostC)
	if err != nil {
		return err
	}
	defer stopC()
	urlB, err := deadURL()
	if err != nil {
		return err
	}
	fmt.Printf("replicas: A=%s (faulty)  B=%s (down)  C=%s (faulty)\n\n", urlA, urlB, urlC)

	// --- Naive baseline: bare client, single faulty replica. ---
	naive := host.NewClient(urlA)
	naiveFail := 0
	for i := 0; i < *calls; i++ {
		if _, err := naive.Call(ctx, "Target", "Work", core.Values{"x": i}); err != nil {
			naiveFail++
		}
	}
	fmt.Printf("naive client     : %3d/%d calls failed (%.0f%%)  [injected on A: %s]\n",
		naiveFail, *calls, 100*float64(naiveFail)/float64(*calls), injA)

	// --- Resilient client across all three replicas. ---
	rc, err := host.NewResilientClient(host.Policy{
		Timeout: 2 * time.Second,
		Retry: reliability.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
		},
		BreakerThreshold: 8,
		BreakerCooldown:  50 * time.Millisecond,
		MaxConcurrent:    32,
	}, urlA, urlB, urlC)
	if err != nil {
		return err
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	if err := rc.StartHealth(hctx, reliability.HealthCheckerConfig{Interval: 50 * time.Millisecond}); err != nil {
		return err
	}
	defer rc.StopHealth()
	rc.Health().CheckNow(ctx) // classify the dead replica before traffic

	okCount, wrong := 0, 0
	for i := 0; i < *calls; i++ {
		out, err := rc.Call(ctx, "Target", "Work", core.Values{"x": i})
		if err != nil {
			continue
		}
		if out["y"] != float64(2*i) {
			wrong++
			continue
		}
		okCount++
	}
	attempts, failovers, skipped, _ := rc.Counters()
	probes, demotions, promotions := rc.Health().Counters()
	fmt.Printf("resilient client : %3d/%d calls succeeded (%.0f%%), %d wrong answers  [injected on C: %s]\n",
		okCount, *calls, 100*float64(okCount)/float64(*calls), wrong, injC)
	fmt.Printf("  reliability    : attempts=%d failovers=%d unhealthy-skips=%d\n", attempts, failovers, skipped)
	fmt.Printf("  health         : probes=%d demotions=%d promotions=%d healthy=%v\n",
		probes, demotions, promotions, rc.Health().Healthy())

	// The health view the checker sees: every host.Host serves /healthz.
	resp, err := http.Get(urlA + "/healthz")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	fmt.Printf("\nGET %s/healthz -> %d\n%s\n", urlA, resp.StatusCode, body)
	return nil
}

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}
