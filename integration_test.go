package soc

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"soc/internal/core"
	"soc/internal/crawler"
	"soc/internal/host"
	"soc/internal/registry"
	"soc/internal/robot"
	"soc/internal/services"
	"soc/internal/workflow"
)

// TestIntegrationFullRepository stands up the entire ASU-repository stack
// — catalog + host + registry + registry API — and exercises the complete
// SOA triangle over real HTTP: publish, discover, describe, consume.
func TestIntegrationFullRepository(t *testing.T) {
	ctx := context.Background()
	catalog, err := services.NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	if err := catalog.MountAll(h); err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	mux := http.NewServeMux()
	mux.Handle("/services", h)
	mux.Handle("/services/", h)
	mux.Handle("/registry/", registry.NewAPI(reg))
	server := httptest.NewServer(mux)
	defer server.Close()
	h.BaseURL = server.URL
	if err := catalog.PublishAll(reg, server.URL, "integration"); err != nil {
		t.Fatal(err)
	}

	// 1. A client discovers the encryption service purely by keyword,
	// through the remote registry API.
	regClient := registry.NewClient(server.URL)
	matches, err := regClient.Search(ctx, "encryption", 3)
	if err != nil || len(matches) == 0 {
		t.Fatalf("search: %v %v", matches, err)
	}
	if matches[0].Entry.Name != "Encryption" {
		t.Fatalf("top match = %s", matches[0].Entry.Name)
	}

	// 2. It reads the WSDL contract for the discovered service.
	svcClient := host.NewClient(server.URL)
	desc, err := svcClient.Describe(ctx, matches[0].Entry.Name)
	if err != nil {
		t.Fatal(err)
	}
	opNames := map[string]bool{}
	for _, op := range desc.Ops {
		opNames[op.Name] = true
	}
	if !opNames["Encrypt"] || !opNames["Decrypt"] {
		t.Fatalf("wsdl ops = %v", desc.Ops)
	}

	// 3. REST and SOAP bindings return consistent results.
	restOut, err := svcClient.Call(ctx, "Encryption", "Encrypt",
		core.Values{"passphrase": "k", "plaintext": "integration"})
	if err != nil {
		t.Fatal(err)
	}
	soapBack, err := svcClient.CallSOAP(ctx, "Encryption", "Decrypt", desc.Namespace,
		core.Values{"passphrase": "k", "ciphertext": restOut.Str("ciphertext")})
	if err != nil {
		t.Fatal(err)
	}
	if soapBack["plaintext"] != "integration" {
		t.Fatalf("cross-binding round trip = %q", soapBack["plaintext"])
	}

	// 4. All twelve catalog services are listed by the host.
	list, err := svcClient.List(ctx)
	if err != nil || len(list) != 12 {
		t.Fatalf("host list = %d services, %v", len(list), err)
	}
}

// TestIntegrationWorkflowOverHTTP composes three hosted services through
// the workflow engine calling their public REST endpoints.
func TestIntegrationWorkflowOverHTTP(t *testing.T) {
	catalog, err := services.NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	if err := catalog.MountAll(h); err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)

	invoker := workflow.InvokerFunc(func(ctx context.Context, svc, op string, args map[string]any) (map[string]any, error) {
		out, err := client.Call(ctx, svc, op, core.Values(args))
		return map[string]any(out), err
	})
	wf, err := workflow.New("seal", &workflow.Sequence{Label: "steps", Steps: []workflow.Activity{
		&workflow.Invoke{Label: "gen", Service: "RandomString", Operation: "Generate",
			Invoker: invoker,
			Inputs:  map[string]string{"length": "n"},
			Outputs: map[string]string{"value": "secret"}},
		&workflow.Invoke{Label: "enc", Service: "Encryption", Operation: "Encrypt",
			Invoker: invoker,
			Inputs:  map[string]string{"passphrase": "key", "plaintext": "secret"},
			Outputs: map[string]string{"ciphertext": "sealed"}},
		&workflow.Invoke{Label: "dec", Service: "Encryption", Operation: "Decrypt",
			Invoker: invoker,
			Inputs:  map[string]string{"passphrase": "key", "ciphertext": "sealed"},
			Outputs: map[string]string{"plaintext": "back"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, trace, err := wf.Run(context.Background(), map[string]any{"n": 24, "key": "wfkey"})
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := out["secret"].(string)
	back, _ := out["back"].(string)
	if secret == "" || secret != back {
		t.Fatalf("round trip: %q vs %q", secret, back)
	}
	if len(trace.Names()) != 4 { // 3 invokes + sequence
		t.Errorf("trace = %v", trace.Names())
	}
}

// TestIntegrationRobotOverHTTP drives the maze robot entirely through the
// host's REST binding — the Figure 1 web environment with the network in
// the loop.
func TestIntegrationRobotOverHTTP(t *testing.T) {
	svc, err := robot.NewService(robot.NewSessions())
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	if err := h.Mount(svc); err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(h)
	defer server.Close()
	client := host.NewClient(server.URL)
	ctx := context.Background()

	out, err := client.Call(ctx, "Robot", "CreateMaze", core.Values{
		"width": 9, "height": 9, "algorithm": "prim", "seed": 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	session := out.Float("session") // JSON numbers arrive as float64
	run, err := client.Call(ctx, "Robot", "RunProgram", core.Values{
		"session": session,
		"program": "WHILE NOT_GOAL\nIF RIGHT_OPEN\nRIGHT\nFORWARD\nELSE\nIF FRONT_OPEN\nFORWARD\nELSE\nLEFT\nEND\nEND\nEND",
	})
	if err != nil {
		t.Fatal(err)
	}
	if run["atGoal"] != true {
		t.Fatalf("run = %v", run)
	}
	state, err := client.Call(ctx, "Robot", "State", core.Values{"session": session})
	if err != nil || state["atGoal"] != true {
		t.Fatalf("state = %v %v", state, err)
	}
}

// TestIntegrationCrawlerFindsHostedCatalog points the crawler at a
// directory page listing the live repository and checks it discovers and
// indexes the services.
func TestIntegrationCrawlerFindsHostedCatalog(t *testing.T) {
	catalog, err := services.NewCatalog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := host.New()
	if err := catalog.MountAll(h); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	var server *httptest.Server
	mux.HandleFunc("/directory.html", func(w http.ResponseWriter, r *http.Request) {
		var links strings.Builder
		for _, svc := range catalog.Services {
			fmt.Fprintf(&links, `<a href="%s/services/%s">%s</a> `, server.URL, svc.Name, svc.Name)
		}
		fmt.Fprintf(w, "<html><body>%s</body></html>", links.String())
	})
	mux.Handle("/services/", h)
	server = httptest.NewServer(mux)
	defer server.Close()

	found, err := crawler.Crawl(context.Background(), []string{server.URL + "/directory.html"},
		crawler.Config{SameHostOnly: true, MaxPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != len(catalog.Services) {
		t.Fatalf("discovered %d of %d services", len(found), len(catalog.Services))
	}
	reg := registry.New()
	if _, err := crawler.Feed(reg, "it-crawler", found); err != nil {
		t.Fatal(err)
	}
	matches, err := reg.Search("mortgage credit", 1)
	if err != nil || len(matches) == 0 || matches[0].Entry.Name != "Mortgage" {
		t.Fatalf("post-crawl search: %v %v", matches, err)
	}
}
