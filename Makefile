GO ?= go

.PHONY: ci build vet lint lint-ci soclint soclint-json contracts test race chaos short bench bench-compare bench-wal bench-wal-compare trace-demo sim crash

## ci: the full gate — build, lint (vet + soclint in machine-readable
## mode), race-enabled tests, the deterministic simulation corpus, the
## exhaustive WAL crash-point corpus, and the benchmark regression gates
## (message plane + WAL)
ci: build lint-ci race sim crash bench-compare bench-wal-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the static-analysis gate — go vet plus the repo's own soclint
## analyzers (contract drift, context propagation, body closing, lock
## discipline and ordering, goroutine-leak and atomic-access discipline,
## client timeouts, error discards, pool reset discipline). Test files
## are analyzed too; soclint prints its wall-clock cost on stderr.
lint: vet soclint

## lint-ci: the same gate with soclint emitting one JSON object per
## finding (suppressed findings included, carrying their ignore reason)
## for machine consumption
lint-ci: vet soclint-json

soclint:
	$(GO) run ./cmd/soclint ./...

soclint-json:
	$(GO) run ./cmd/soclint -json ./...

## contracts: regenerate the golden WSDL contracts that contractcheck
## verifies registrations against; run after changing any service
## signature and commit the result
contracts:
	$(GO) run ./cmd/contractgen -out contracts

## test: tier-1 suite (fast; chaos suite included unless -short)
test:
	$(GO) test ./...

## short: tier-1 only — the chaos suite honors -short and skips itself
short:
	$(GO) test -short ./...

## race: everything under the race detector
race:
	$(GO) test -race ./...

## chaos: just the fault-injection chaos suite, verbosely
chaos:
	$(GO) test -race -v -run TestIntegrationChaos .

# Seed corpus for the simulation gate. Override to widen the sweep
# (SIM_SEEDS=500) or shift it (SIM_FIRST=1000) without editing this file.
SIM_SEEDS ?= 50
SIM_FIRST ?= 1
SIM_STEPS ?= 250

## sim: deterministic simulation corpus — every seed runs twice and the
## event-log hashes must match; invariants are checked after every step.
## A failing seed prints its shrunk schedule and the exact replay
## command (go run ./cmd/socsim -seed N ...) verbatim.
sim:
	$(GO) run ./cmd/socsim -seeds $(SIM_SEEDS) -first $(SIM_FIRST) -steps $(SIM_STEPS)

# Crash corpus size: records per corpus file in the every-byte-offset
# truncation and bit-flip sweeps. Raise (WAL_CRASH_RECORDS=64) for a
# deeper nightly sweep.
WAL_CRASH_RECORDS ?= 24

## crash: the WAL crash-point corpus — cut the log at every byte offset
## and flip every byte, then prove recovery salvages exactly the acked
## prefix and stays deterministic
crash:
	WAL_CRASH_RECORDS=$(WAL_CRASH_RECORDS) $(GO) test -count 1 -run 'TestCrash' ./internal/wal

## trace-demo: drive one resilient call through injected faults, retry,
## failover and the response cache, then print the reassembled trace
## trees (the same rendering GET /tracez?format=tree serves)
trace-demo:
	$(GO) run ./examples/tracedemo

# Stable settings for the gated message-plane benchmarks: fixed iteration
# count (comparable ns/op and deterministic allocs/op) and three runs so
# benchdiff can take medians.
BENCHFLAGS := -run '^$$' -bench BenchmarkMessagePlane -benchmem -benchtime 1000x -count 3

## bench: run the hot-path message-plane benchmarks and record them as
## the committed baseline artifact BENCH_messageplane.json
bench:
	$(GO) test $(BENCHFLAGS) . | tee bench.out
	$(GO) run ./cmd/benchdiff -new bench.out -gate none -json BENCH_messageplane.json

## bench-compare: rerun the message-plane benchmarks and fail if
## allocs/op regressed >10% against the recorded baseline (time is
## reported but not gated: CI machines are noisy, allocation counts
## are deterministic)
bench-compare:
	$(GO) test $(BENCHFLAGS) . | tee bench.out
	$(GO) run ./cmd/benchdiff -against BENCH_messageplane.json -new bench.out -gate allocs -threshold 10

WAL_BENCHFLAGS := -run '^$$' -bench BenchmarkWAL -benchmem -benchtime 1000x -count 3

## bench-wal: run the WAL append/recover benchmarks (over the
## deterministic in-memory disk, so allocation counts are exact) and
## record them as the committed baseline artifact BENCH_wal.json
bench-wal:
	$(GO) test $(WAL_BENCHFLAGS) ./internal/wal | tee bench-wal.out
	$(GO) run ./cmd/benchdiff -new bench-wal.out -gate none -json BENCH_wal.json

## bench-wal-compare: rerun the WAL benchmarks and fail if allocs/op
## regressed >10% against the recorded baseline — the append path is
## zero-allocation and must stay that way
bench-wal-compare:
	$(GO) test $(WAL_BENCHFLAGS) ./internal/wal | tee bench-wal.out
	$(GO) run ./cmd/benchdiff -against BENCH_wal.json -new bench-wal.out -gate allocs -threshold 10
