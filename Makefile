GO ?= go

.PHONY: ci build vet lint soclint contracts test race chaos short

## ci: the full gate — build, lint (vet + soclint), race-enabled tests
ci: build lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the static-analysis gate — go vet plus the repo's own soclint
## analyzers (contract drift, context propagation, body closing, lock
## discipline, client timeouts, error discards)
lint: vet soclint

soclint:
	$(GO) run ./cmd/soclint ./...

## contracts: regenerate the golden WSDL contracts that contractcheck
## verifies registrations against; run after changing any service
## signature and commit the result
contracts:
	$(GO) run ./cmd/contractgen -out contracts

## test: tier-1 suite (fast; chaos suite included unless -short)
test:
	$(GO) test ./...

## short: tier-1 only — the chaos suite honors -short and skips itself
short:
	$(GO) test -short ./...

## race: everything under the race detector
race:
	$(GO) test -race ./...

## chaos: just the fault-injection chaos suite, verbosely
chaos:
	$(GO) test -race -v -run TestIntegrationChaos .
