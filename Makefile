GO ?= go

.PHONY: ci build vet lint lint-ci soclint soclint-json contracts test race chaos short bench bench-compare bench-wal bench-wal-compare bench-workflow bench-workflow-compare bench-contention bench-contention-record load-smoke cluster-smoke workflow-smoke trace-demo sim crash

## ci: the full gate — build, lint (vet + soclint in machine-readable
## mode), race-enabled tests, the deterministic simulation corpus, the
## exhaustive WAL + workflow-journal crash-point corpora, the benchmark
## regression gates (message plane + WAL + workflow + contention), the
## open-loop load smoke, and the cluster + workflow orchestration smokes
ci: build lint-ci race sim crash bench-compare bench-wal-compare bench-workflow-compare bench-contention load-smoke cluster-smoke workflow-smoke

# Raw benchmark output lands outside the tree: committed artifacts are
# the BENCH_*.json baselines, never the text dumps.
BENCH_OUT_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)/soc-bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the static-analysis gate — go vet plus the repo's own soclint
## analyzers (contract drift, context propagation, body closing, lock
## discipline and ordering, goroutine-leak and atomic-access discipline,
## client timeouts, error discards, pool reset discipline). Test files
## are analyzed too; soclint prints its wall-clock cost on stderr.
lint: vet soclint

## lint-ci: the same gate with soclint emitting one JSON object per
## finding (suppressed findings included, carrying their ignore reason)
## for machine consumption
lint-ci: vet soclint-json

soclint:
	$(GO) run ./cmd/soclint ./...

soclint-json:
	$(GO) run ./cmd/soclint -json ./...

## contracts: regenerate the golden WSDL contracts that contractcheck
## verifies registrations against; run after changing any service
## signature and commit the result
contracts:
	$(GO) run ./cmd/contractgen -out contracts

## test: tier-1 suite (fast; chaos suite included unless -short)
test:
	$(GO) test ./...

## short: tier-1 only — the chaos suite honors -short and skips itself
short:
	$(GO) test -short ./...

## race: everything under the race detector
race:
	$(GO) test -race ./...

## chaos: just the fault-injection chaos suite, verbosely
chaos:
	$(GO) test -race -v -run TestIntegrationChaos .

# Seed corpus for the simulation gate. Override to widen the sweep
# (SIM_SEEDS=500) or shift it (SIM_FIRST=1000) without editing this file.
SIM_SEEDS ?= 50
SIM_FIRST ?= 1
SIM_STEPS ?= 250

## sim: deterministic simulation corpus — every seed runs twice and the
## event-log hashes must match; invariants are checked after every step.
## A failing seed prints its shrunk schedule and the exact replay
## command (go run ./cmd/socsim -seed N ...) verbatim.
sim:
	$(GO) run ./cmd/socsim -seeds $(SIM_SEEDS) -first $(SIM_FIRST) -steps $(SIM_STEPS)

# Crash corpus size: records per corpus file in the every-byte-offset
# truncation and bit-flip sweeps. Raise (WAL_CRASH_RECORDS=64) for a
# deeper nightly sweep.
WAL_CRASH_RECORDS ?= 24

## crash: the crash-point corpora — cut the WAL at every byte offset and
## flip every byte, then prove recovery salvages exactly the acked
## prefix and stays deterministic; the same sweep runs over a workflow
## journal image, where each damaged prefix must recover to a replayable
## instance or a clean compensation with no duplicated side effect
crash:
	WAL_CRASH_RECORDS=$(WAL_CRASH_RECORDS) $(GO) test -count 1 -run 'TestCrash' ./internal/wal
	WORKFLOW_CRASH_STRIDE=1 $(GO) test -count 1 -run 'TestCrash' ./internal/workflow

## trace-demo: drive one resilient call through injected faults, retry,
## failover and the response cache, then print the reassembled trace
## trees (the same rendering GET /tracez?format=tree serves)
trace-demo:
	$(GO) run ./examples/tracedemo

# Stable settings for the gated message-plane benchmarks: fixed iteration
# count (comparable ns/op and deterministic allocs/op) and three runs so
# benchdiff can take medians.
BENCHFLAGS := -run '^$$' -bench BenchmarkMessagePlane -benchmem -benchtime 1000x -count 3

## bench: run the hot-path message-plane benchmarks and record them as
## the committed baseline artifact BENCH_messageplane.json
bench:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(BENCHFLAGS) . | tee $(BENCH_OUT_DIR)/bench.out
	$(GO) run ./cmd/benchdiff -new $(BENCH_OUT_DIR)/bench.out -gate none -json BENCH_messageplane.json

## bench-compare: rerun the message-plane benchmarks and fail if
## allocs/op regressed >10% against the recorded baseline (time is
## reported but not gated: CI machines are noisy, allocation counts
## are deterministic)
bench-compare:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(BENCHFLAGS) . | tee $(BENCH_OUT_DIR)/bench.out
	$(GO) run ./cmd/benchdiff -against BENCH_messageplane.json -new $(BENCH_OUT_DIR)/bench.out -gate allocs -threshold 10

WAL_BENCHFLAGS := -run '^$$' -bench BenchmarkWAL -benchmem -benchtime 1000x -count 3

## bench-wal: run the WAL append/recover benchmarks (over the
## deterministic in-memory disk, so allocation counts are exact) and
## record them as the committed baseline artifact BENCH_wal.json
bench-wal:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(WAL_BENCHFLAGS) ./internal/wal | tee $(BENCH_OUT_DIR)/bench-wal.out
	$(GO) run ./cmd/benchdiff -new $(BENCH_OUT_DIR)/bench-wal.out -gate none -json BENCH_wal.json

## bench-wal-compare: rerun the WAL benchmarks and fail if allocs/op
## regressed >10% against the recorded baseline — the append path is
## zero-allocation and must stay that way
bench-wal-compare:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(WAL_BENCHFLAGS) ./internal/wal | tee $(BENCH_OUT_DIR)/bench-wal.out
	$(GO) run ./cmd/benchdiff -against BENCH_wal.json -new $(BENCH_OUT_DIR)/bench-wal.out -gate allocs -threshold 10

WF_BENCHFLAGS := -run '^$$' -bench BenchmarkWorkflow -benchmem -benchtime 1000x -count 3

## bench-workflow: run the workflow journal-append and instance-complete
## benchmarks (over the deterministic in-memory disk, so allocation
## counts are exact) and record them as the committed baseline artifact
## BENCH_workflow.json
bench-workflow:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(WF_BENCHFLAGS) ./internal/workflow | tee $(BENCH_OUT_DIR)/bench-workflow.out
	$(GO) run ./cmd/benchdiff -new $(BENCH_OUT_DIR)/bench-workflow.out -gate none -json BENCH_workflow.json

## bench-workflow-compare: rerun the workflow benchmarks and fail if
## allocs/op regressed >10% against the recorded baseline — the journal
## append rides the orchestrator's hottest path
bench-workflow-compare:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(WF_BENCHFLAGS) ./internal/workflow | tee $(BENCH_OUT_DIR)/bench-workflow.out
	$(GO) run ./cmd/benchdiff -against BENCH_workflow.json -new $(BENCH_OUT_DIR)/bench-workflow.out -gate allocs -threshold 10

# Contention suite settings: fixed iteration count for deterministic
# allocs/op, three runs for medians. 50 iterations keeps the saturated
# variants (NumCPU x 128 goroutines, each running b.N times) inside a
# CI-friendly wall clock.
CONTENTION_BENCHFLAGS := -run '^$$' -bench BenchmarkContention -benchmem -benchtime 50x -count 3

## bench-contention: rerun the low/high-concurrency contention suite and
## gate against the committed BENCH_contention.json baseline — allocs/op
## per benchmark at 10%, plus each family's parallel-contention ratio
## (parallel ns / serial ns), the dimension that catches a reintroduced
## global lock without flaking on oversubscribed wall-time noise
bench-contention:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(CONTENTION_BENCHFLAGS) . | tee $(BENCH_OUT_DIR)/bench-contention.out
	$(GO) run ./cmd/benchdiff -against BENCH_contention.json -new $(BENCH_OUT_DIR)/bench-contention.out -gate contention -threshold 10

## bench-contention-record: re-record the contention baseline artifact
## (run on a quiet machine; commit the result)
bench-contention-record:
	@mkdir -p $(BENCH_OUT_DIR)
	$(GO) test $(CONTENTION_BENCHFLAGS) . | tee $(BENCH_OUT_DIR)/bench-contention.out
	$(GO) run ./cmd/benchdiff -new $(BENCH_OUT_DIR)/bench-contention.out -gate none -json BENCH_contention.json

## load-smoke: deterministic open-loop load check — a virtual-clock
## socload run with an injected 100ms server stall must still offer the
## full arrival schedule (the stall lands in the latency tail, never in
## the request count: the coordinated-omission guarantee, gated in CI)
load-smoke:
	$(GO) run ./cmd/socload -virtual -rate 2000 -duration 2s -stall 100ms -assert-open-loop

## cluster-smoke: the deterministic elastic-cluster gate — a
## virtual-clock schedule ramps load up and down through the front door
## with replica kills mid-ramp, and the run must close its ledger
## (every admitted request completes or fails with an injected fault —
## scale-down never drops one), keep the pool inside policy bounds,
## never pick an expired replica, and replay to the identical hash
cluster-smoke:
	$(GO) test -count 1 -run 'TestClusterSmoke' ./internal/simtest

## workflow-smoke: the deterministic durable-workflow gate — a
## workflow-heavy simtest schedule starts hundreds of instances with
## power cuts armed mid-Parallel and mid-ForEach, kills and resumes;
## every instance must settle exactly once (complete or compensate, per
## the journal audit), the run must replay to the identical hash, and
## each journal mutation hook must trip the invariant
workflow-smoke:
	$(GO) test -count 1 -run 'TestWorkflowSmoke|TestWorkflowMutationsTrip' ./internal/simtest
