GO ?= go

.PHONY: ci build vet test race chaos short

## ci: the full gate — build, vet, race-enabled tests (chaos included)
ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: tier-1 suite (fast; chaos suite included unless -short)
test:
	$(GO) test ./...

## short: tier-1 only — the chaos suite honors -short and skips itself
short:
	$(GO) test -short ./...

## race: everything under the race detector
race:
	$(GO) test -race ./...

## chaos: just the fault-injection chaos suite, verbosely
chaos:
	$(GO) test -race -v -run TestIntegrationChaos .
